//! The mutually-dependent policy case (§2.3 / §5.1.2): a label whose
//! policy is *itself* a faceted Boolean over that same label, so the
//! print sink must hand the choice to the constraint solver. Showing
//! the secret would require the policy facet that says "don't show" —
//! the only consistent assignment hides it.
//!
//! Run with `cargo run --example policy_sat`.

use lambdajdb::{parse_statement, Interp};

/// Entry point.
pub fn main() {
    let program = parse_statement(
        "(letstmt secret
           (label k (let a (restrict k (lam v (facet k false true))) k))
           (print (file u) (facet secret \"shown\" \"hidden\")))",
    )
    .unwrap();
    let out = Interp::new().run(&program).unwrap();
    println!("channel {} received: {}", out[0].channel, out[0].rendered);
    assert_eq!(
        out[0].rendered, "hidden",
        "the self-denying policy must resolve to the public facet"
    );
}
