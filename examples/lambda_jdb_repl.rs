//! A tiny REPL for the λJDB core language: type s-expressions, watch
//! faceted evaluation happen. Useful for exploring the semantics of
//! §4 interactively.
//!
//! Run with `cargo run --example lambda_jdb_repl`, then try:
//!
//! ```text
//! (label k (facet k 1 2))
//! (label k (concat "x=" (facet k "secret" "public")))
//! (select 0 1 (join (row "a") (row "a")))
//! (letstmt s (label k (let a (restrict k (lam v (== v (file boss)))) k))
//!   (print (file boss) (facet s "top secret" "nothing here")))
//! ```

use std::io::{BufRead, Write};

use lambdajdb::{parse_expr, parse_statement, Interp};

/// Runs the read-eval-print loop over arbitrary line-based I/O (the
/// smoke test drives this with canned input).
pub fn run(input: impl BufRead, mut output: impl Write) -> std::io::Result<()> {
    let mut interp = Interp::new();
    writeln!(
        output,
        "λJDB repl — expressions or (print …)/(letstmt …)/(seq …) statements; ctrl-d exits"
    )?;
    write!(output, "λ> ")?;
    output.flush()?;
    for line in input.lines() {
        let Ok(line) = line else { break };
        let line = line.trim();
        if line.is_empty() {
            write!(output, "λ> ")?;
            output.flush()?;
            continue;
        }
        if line.starts_with("(print") || line.starts_with("(letstmt") || line.starts_with("(seq") {
            match parse_statement(line) {
                Ok(stmt) => match interp.run(&stmt) {
                    Ok(outputs) => {
                        for o in outputs {
                            writeln!(output, "[{}] {}", o.channel, o.rendered)?;
                        }
                    }
                    Err(e) => writeln!(output, "error: {e}")?,
                },
                Err(e) => writeln!(output, "parse error: {e}")?,
            }
        } else {
            match parse_expr(line) {
                Ok(expr) => match interp.eval(&expr) {
                    Ok(v) => writeln!(output, "{v}")?,
                    Err(e) => writeln!(output, "error: {e}")?,
                },
                Err(e) => writeln!(output, "parse error: {e}")?,
            }
        }
        write!(output, "λ> ")?;
        output.flush()?;
    }
    writeln!(output)?;
    Ok(())
}

/// Entry point: REPL over stdin/stdout.
pub fn main() {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    run(stdin.lock(), stdout.lock()).expect("stdout closed");
}
