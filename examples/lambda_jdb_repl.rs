//! A tiny REPL for the λJDB core language: type s-expressions, watch
//! faceted evaluation happen. Useful for exploring the semantics of
//! §4 interactively.
//!
//! Run with `cargo run --example lambda_jdb_repl`, then try:
//!
//! ```text
//! (label k (facet k 1 2))
//! (label k (concat "x=" (facet k "secret" "public")))
//! (select 0 1 (join (row "a") (row "a")))
//! (letstmt s (label k (let a (restrict k (lam v (== v (file boss)))) k))
//!   (print (file boss) (facet s "top secret" "nothing here")))
//! ```

use std::io::{BufRead, Write};

use lambdajdb::{parse_expr, parse_statement, Interp};

fn main() {
    let stdin = std::io::stdin();
    let mut interp = Interp::new();
    println!("λJDB repl — expressions or (print …)/(letstmt …)/(seq …) statements; ctrl-d exits");
    print!("λ> ");
    std::io::stdout().flush().ok();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        let line = line.trim();
        if line.is_empty() {
            print!("λ> ");
            std::io::stdout().flush().ok();
            continue;
        }
        if line.starts_with("(print") || line.starts_with("(letstmt") || line.starts_with("(seq") {
            match parse_statement(line) {
                Ok(stmt) => match interp.run(&stmt) {
                    Ok(outputs) => {
                        for o in outputs {
                            println!("[{}] {}", o.channel, o.rendered);
                        }
                    }
                    Err(e) => println!("error: {e}"),
                },
                Err(e) => println!("parse error: {e}"),
            }
        } else {
            match parse_expr(line) {
                Ok(expr) => match interp.eval(&expr) {
                    Ok(v) => println!("{v}"),
                    Err(e) => println!("error: {e}"),
                },
                Err(e) => println!("parse error: {e}"),
            }
        }
        print!("λ> ");
        std::io::stdout().flush().ok();
    }
    println!();
}
