//! The course manager case study (§6.1), demonstrating the Early
//! Pruning optimization of §3.2 / Table 5: the all-courses page is
//! rendered twice — through the pruned session path (linear) and as a
//! single faceted value (facet count doubles per course).
//!
//! Run with `cargo run --release --example course_manager`.

use apps::{courses, workload};
use jacqueline::Viewer;
use std::time::Instant;

pub fn main() {
    for n in [4usize, 8, 12] {
        let w = workload::courses(n);
        let app = w.app;
        let viewer = Viewer::User(w.student);

        let t0 = Instant::now();
        let fast = courses::all_courses(&app, &viewer);
        let fast_t = t0.elapsed();

        let t1 = Instant::now();
        let slow = courses::all_courses_no_pruning(&app, &viewer);
        let slow_t = t1.elapsed();

        assert_eq!(fast, slow, "both paths must render the same page");
        println!(
            "{n:>3} courses: with pruning {fast_t:>10.2?}   without {slow_t:>10.2?}   (same page, {} lines)",
            fast.lines().count() - 1,
        );
    }
    println!("\nThe unpruned page doubles its facet count per course — the");
    println!("blowup of Table 5. The pruned session resolves each policy");
    println!("once and stays linear (run `experiments --table5` for the sweep).");

    // Show one page for flavor.
    let w = workload::courses(4);
    let app = w.app;
    println!("\n{}", courses::all_courses(&app, &Viewer::User(w.student)));
}
