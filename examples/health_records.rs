//! The HIPAA-style health record case study (§6.1): role- and
//! state-dependent disclosure, including waivers granted after the
//! record was created.
//!
//! Run with `cargo run --example health_records`.

use apps::health;
use jacqueline::{App, Viewer};
use microdb::Value;

pub fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut app = App::new();
    health::register(&mut app)?;

    let patient = app.create(
        "individual",
        vec![Value::from("pat"), Value::from("patient")],
    )?;
    let doctor = app.create(
        "individual",
        vec![Value::from("dr. dee"), Value::from("doctor")],
    )?;
    let insurer = app.create(
        "individual",
        vec![Value::from("insco"), Value::from("insurer")],
    )?;

    let record = app.create(
        "health_record",
        vec![
            Value::Int(patient),
            Value::Int(doctor),
            Value::Int(insurer),
            Value::from("seasonal flu"),
            Value::from("rest and fluids"),
        ],
    )?;

    println!("-- before any waiver --");
    for (who, v) in [
        ("patient", Viewer::User(patient)),
        ("doctor", Viewer::User(doctor)),
        ("insurer", Viewer::User(insurer)),
    ] {
        println!("{who}: {}", health::single_record(&app, &v, record));
    }

    // The patient signs a waiver for the insurer — policies consult
    // the waiver table at *output* time, so the same record object now
    // renders differently.
    health::set_waiver(&app, record, insurer, true)?;
    println!("-- after the waiver --");
    println!(
        "insurer: {}",
        health::single_record(&app, &Viewer::User(insurer), record)
    );

    println!("-- records summary as the doctor --");
    println!(
        "{}",
        health::all_records_summary(&app, &Viewer::User(doctor))
    );

    Ok(())
}
