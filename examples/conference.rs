//! The conference management system case study (§6.1), driven through
//! the MVC router: registration, submission, reviewing, phases.
//!
//! Run with `cargo run --example conference`.

use apps::conf;
use jacqueline::{App, Request, Viewer};
use microdb::Value;

pub fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut app = App::new();
    conf::register(&mut app)?;
    conf::set_phase(&app, conf::PHASE_REVIEW)?;

    let chair = app.create(
        "user_profile",
        vec![
            Value::from("carol chair"),
            Value::from("chair"),
            Value::from("CMU"),
            Value::from("carol@cmu.edu"),
        ],
    )?;
    let pc = app.create(
        "user_profile",
        vec![
            Value::from("pat pc"),
            Value::from("pc"),
            Value::from("UW"),
            Value::from("pat@uw.edu"),
        ],
    )?;
    let author = app.create(
        "user_profile",
        vec![
            Value::from("alice author"),
            Value::from("normal"),
            Value::from("MIT"),
            Value::from("alice@mit.edu"),
        ],
    )?;

    let paper = conf::submit_paper(&app, &Viewer::User(author), "Faceted Databases")?;
    conf::submit_review(
        &app,
        &Viewer::User(pc),
        paper,
        2,
        "accept: novel FORM design",
    )?;
    // The PC member is conflicted with a second paper.
    let other = conf::submit_paper(&app, &Viewer::User(chair), "Conflicted Work")?;
    app.create("paper_pc_conflict", vec![Value::Int(other), Value::Int(pc)])?;

    let router = conf::router();
    for (who, viewer) in [
        ("chair", Viewer::User(chair)),
        ("pc", Viewer::User(pc)),
        ("author", Viewer::User(author)),
        ("anonymous", Viewer::Anonymous),
    ] {
        let resp = router.handle(&app, &Request::new("papers/all", viewer.clone()));
        println!("--- papers/all as {who} ---\n{}", resp.body);
    }

    // Phase change: the same pages now reveal more, with zero changes
    // to view code.
    conf::set_phase(&app, conf::PHASE_FINAL)?;
    let resp = router.handle(&app, &Request::new("papers/all", Viewer::Anonymous));
    println!(
        "--- papers/all as anonymous, final phase ---\n{}",
        resp.body
    );

    let resp = router.handle(
        &app,
        &Request::new("papers/one", Viewer::User(author)).with_param("id", &paper.to_string()),
    );
    println!(
        "--- the author's own paper page (final phase) ---\n{}",
        resp.body
    );

    Ok(())
}
