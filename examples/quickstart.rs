//! Quickstart: the paper's §2 social-calendar example, end to end.
//!
//! Alice and Bob plan a surprise party for Carol. The event's name
//! and location are sensitive: guests see the real values, everyone
//! else (including Carol) sees "Private event" at an undisclosed
//! location. The policy is written ONCE, on the model — the rest of
//! the program is policy-agnostic.
//!
//! Run with `cargo run --example quickstart`.

use faceted::Faceted;
use form::faceted_count;
use jacqueline::{label_for, App, ModelDef, Viewer};
use microdb::{ColumnDef, ColumnType, Value};

pub fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut app = App::new();

    app.register_model(ModelDef::public(
        "user_profile",
        vec![ColumnDef::new("name", ColumnType::Str)],
    ))?;
    app.register_model(ModelDef::public(
        "event_guest",
        vec![
            ColumnDef::new("event", ColumnType::Int),
            ColumnDef::new("guest", ColumnType::Int),
        ],
    ))?;

    // The Event model: the policy is attached to the schema, exactly
    // like the paper's Figure 2 — a `label_for('name', 'location')`
    // that queries the EventGuest table *at output time*.
    app.register_model(
        ModelDef::public(
            "event",
            vec![
                ColumnDef::new("name", ColumnType::Str),
                ColumnDef::new("location", ColumnType::Str),
            ],
        )
        .with_policy(label_for(
            "restrict_event",
            vec![0, 1],
            |_row| {
                vec![
                    Value::from("Private event"),
                    Value::from("Undisclosed location"),
                ]
            },
            |args| {
                let Some(viewer) = args.viewer.user_jid() else {
                    return Faceted::leaf(false);
                };
                let guests = args
                    .db
                    .filter_eq("event_guest", "event", Value::Int(args.jid))
                    .unwrap_or_default()
                    .filter_rows(|g| g.fields[1] == Value::Int(viewer));
                faceted_count(&guests).map(&mut |n| *n > 0)
            },
        )),
    )?;

    // --- Everything below is policy-agnostic application code. -----
    let alice = app.create("user_profile", vec![Value::from("alice")])?;
    let bob = app.create("user_profile", vec![Value::from("bob")])?;
    let carol = app.create("user_profile", vec![Value::from("carol")])?;

    let party = app.create(
        "event",
        vec![
            Value::from("Carol's surprise party"),
            Value::from("Schloss Dagstuhl"),
        ],
    )?;
    for guest in [alice, bob] {
        app.create("event_guest", vec![Value::Int(party), Value::Int(guest)])?;
    }

    println!(
        "physical rows for the event: {}",
        app.db.physical_rows("event")?
    );

    // The same render call, three viewers, three outcomes.
    for (name, viewer) in [
        ("alice", Viewer::User(alice)),
        ("bob", Viewer::User(bob)),
        ("carol", Viewer::User(carol)),
    ] {
        let obj = app.get("event", party)?;
        let row = app.show_object(&viewer, &obj).expect("event exists");
        println!(
            "{name} sees: {} @ {}",
            row[0].as_str().unwrap(),
            row[1].as_str().unwrap()
        );
    }

    // Faceted queries: filtering on the sensitive location leaks
    // nothing to non-guests.
    let matches = app.filter_eq("event", "location", Value::from("Schloss Dagstuhl"))?;
    println!(
        "alice's location query finds {} event(s)",
        app.show_rows(&Viewer::User(alice), &matches).len()
    );
    println!(
        "carol's location query finds {} event(s)",
        app.show_rows(&Viewer::User(carol), &matches).len()
    );

    Ok(())
}
