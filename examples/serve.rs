//! Serving a Jacqueline application over real HTTP.
//!
//! Default mode runs a self-contained demo: it binds the conference
//! app to an ephemeral port, drives a scripted client session against
//! it over TCP (login → list → submit → policy-denied request), and
//! prints the transcript — so `cargo run --example serve` always
//! shows the full round-trip and exits cleanly.
//!
//! To keep a server running for manual curl sessions:
//!
//! ```text
//! cargo run --release --example serve -- --forever --port 8099
//! curl http://127.0.0.1:8099/papers/all
//! TOKEN=$(curl -s -X POST 'http://127.0.0.1:8099/login' -d user=2)
//! curl -b "session=$TOKEN" http://127.0.0.1:8099/papers/all
//! ```

use std::io::{BufReader, Write};
use std::net::TcpStream;

use apps::{serve, workload};
use jacqueline::wire::{read_response, WireResponse};
use jacqueline::{Server, ServerConfig};

fn request(addr: std::net::SocketAddr, raw: &str) -> WireResponse {
    let mut stream = TcpStream::connect(addr).expect("connect to own server");
    stream.write_all(raw.as_bytes()).expect("send request");
    read_response(&mut BufReader::new(stream)).expect("read response")
}

/// Entry point (public so the examples smoke test can drive it).
pub fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let forever = args.iter().any(|a| a == "--forever");
    let port: u16 = args
        .iter()
        .position(|a| a == "--port")
        .and_then(|i| args.get(i + 1))
        .and_then(|p| p.parse().ok())
        .unwrap_or(0);

    let site = serve::conference_site(workload::conference(16, 12).app);
    let server = Server::bind(site, ("127.0.0.1", port), ServerConfig::default())
        .expect("bind the HTTP server");
    let addr = server.addr();
    println!("== conference app serving on http://{addr} ==");
    println!("routes: {:?}", server.site().router.paths());

    if forever {
        println!("(press ctrl-c to stop)");
        loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        }
    }

    // Scripted session over real TCP.
    println!("\n-- anonymous page (public facets only) --");
    let page = request(
        addr,
        &format!("GET /papers/all HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"),
    );
    println!("GET /papers/all -> {}", page.status);
    for line in page.text().lines().take(3) {
        println!("  {line}");
    }

    println!("\n-- login as user 2 --");
    let body = "user=2";
    let login = request(
        addr,
        &format!(
            "POST /login HTTP/1.1\r\nHost: {addr}\r\n\
             Content-Type: application/x-www-form-urlencoded\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        ),
    );
    println!("POST /login -> {} (token {})", login.status, login.text());
    let token = login.text();

    println!("\n-- the same page with the session cookie --");
    let page = request(
        addr,
        &format!(
            "GET /papers/all HTTP/1.1\r\nHost: {addr}\r\nCookie: session={token}\r\n\
             Connection: close\r\n\r\n"
        ),
    );
    println!(
        "GET /papers/all -> {} (queue {}us, service {}us)",
        page.status,
        page.header("x-queue-us").unwrap_or("?"),
        page.header("x-service-us").unwrap_or("?"),
    );
    for line in page.text().lines().take(3) {
        println!("  {line}");
    }

    println!("\n-- submit a paper over the wire --");
    let body = "title=Served+over+HTTP".to_owned();
    let submit = request(
        addr,
        &format!(
            "POST /papers/submit HTTP/1.1\r\nHost: {addr}\r\nCookie: session={token}\r\n\
             Content-Type: application/x-www-form-urlencoded\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        ),
    );
    println!(
        "POST /papers/submit -> {} (jid {})",
        submit.status,
        submit.text()
    );

    println!("\n-- policy-denied: anonymous submit --");
    let body = "title=sneaky";
    let denied = request(
        addr,
        &format!(
            "POST /papers/submit HTTP/1.1\r\nHost: {addr}\r\n\
             Content-Type: application/x-www-form-urlencoded\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        ),
    );
    println!(
        "POST /papers/submit (no session) -> {} ({})",
        denied.status,
        denied.text()
    );
    assert_eq!(denied.status, 403);

    println!("\n-- forged session token --");
    let forged = request(
        addr,
        &format!(
            "GET /papers/all HTTP/1.1\r\nHost: {addr}\r\nCookie: session=forged\r\n\
             Connection: close\r\n\r\n"
        ),
    );
    println!("GET /papers/all (bad token) -> {}", forged.status);
    assert_eq!(forged.status, 403);

    server.shutdown();
    println!("\nserver shut down cleanly");
}
