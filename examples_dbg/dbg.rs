use lambdajdb::{parse_statement, Interp};
fn main() {
    let program = parse_statement(
        "(letstmt secret
           (label k (let a (restrict k (lam v (facet k false true))) k))
           (print (file u) (facet secret \"shown\" \"hidden\")))",
    ).unwrap();
    let out = Interp::new().run(&program).unwrap();
    println!("{:?}", out);
}
