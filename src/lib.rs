//! `jacqueline-repro` — facade crate for the Rust reproduction of
//! *Precise, Dynamic Information Flow for Database-Backed
//! Applications* (Yang et al., PLDI 2016).
//!
//! This crate re-exports the workspace members under one roof, hosts
//! the runnable examples (`examples/`) and the cross-crate
//! integration tests (`tests/`). The interesting code lives in:
//!
//! * [`faceted`] — faceted values, labels, views;
//! * [`microdb`] — the in-memory relational engine substrate;
//! * [`labelsat`] — the DPLL solver for policy constraints;
//! * [`lambdajdb`] — the λJDB core language, executable;
//! * [`form`] — the faceted object-relational mapping;
//! * [`jacqueline`] — the policy-agnostic web framework;
//! * [`apps`] — the three case studies (×2 implementations each).
//!
//! See README.md for the tour and the paper-section mapping.

#![forbid(unsafe_code)]

pub use apps;
pub use faceted;
pub use form;
pub use jacqueline;
pub use labelsat;
pub use lambdajdb;
pub use microdb;
