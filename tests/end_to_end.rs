//! Cross-crate integration tests: the whole stack, from faceted
//! values through the FORM and the framework to rendered pages, plus
//! the λJDB ↔ framework correspondence.

use faceted::{Faceted, View};
use jacqueline::{simple_policy, App, ModelDef, Session, Viewer};
use microdb::{ColumnDef, ColumnType, Value};

fn notes_app() -> App {
    let mut app = App::new();
    app.register_model(
        ModelDef::public(
            "note",
            vec![
                ColumnDef::new("owner", ColumnType::Int),
                ColumnDef::new("text", ColumnType::Str),
            ],
        )
        .with_policy(simple_policy(
            "owner_only",
            vec![1],
            |_| vec![Value::from("[private]")],
            |args| args.viewer.user_jid() == args.row[0].as_int(),
        )),
    )
    .unwrap();
    app
}

#[test]
fn stack_round_trip_physical_to_rendered() {
    let app = notes_app();
    let jid = app
        .create("note", vec![Value::Int(1), Value::from("hello")])
        .unwrap();
    // Physical layer: two facet rows with jid/jvars meta-data.
    assert_eq!(app.db.physical_rows("note").unwrap(), 2);
    // FORM layer: reconstruction yields a faceted object.
    let obj = app.get("note", jid).unwrap();
    assert!(obj.root_label().is_some());
    // Framework layer: sinks resolve per viewer.
    assert_eq!(
        app.show_object(&Viewer::User(1), &obj).unwrap()[1],
        Value::from("hello")
    );
    assert_eq!(
        app.show_object(&Viewer::User(2), &obj).unwrap()[1],
        Value::from("[private]")
    );
}

#[test]
fn session_and_sink_paths_agree_across_the_stack() {
    let app = notes_app();
    for i in 0..6 {
        app.create("note", vec![Value::Int(i), Value::from(format!("n{i}"))])
            .unwrap();
    }
    let rows = app.all("note").unwrap();
    for viewer in [
        Viewer::Anonymous,
        Viewer::User(0),
        Viewer::User(3),
        Viewer::User(99),
    ] {
        let full: Vec<_> = app.show_rows(&viewer, &rows);
        let mut session = Session::new(viewer.clone());
        let pruned: Vec<_> = session
            .view_rows(&app, &rows)
            .into_iter()
            .cloned()
            .collect();
        assert_eq!(full, pruned, "viewer {viewer}");
    }
}

#[test]
fn lambdajdb_and_framework_agree_on_the_calendar_example() {
    // The same policy scenario expressed in the core language and in
    // the framework must agree: a guest sees the secret facet, a
    // non-guest the public one.
    use lambdajdb::{parse_statement, Interp};

    let program = parse_statement(
        "(letstmt party
            (label k (let a (restrict k (lam v (== v (file alice)))) k))
            (seq
              (print (file alice) (facet party \"Carol's surprise party\" \"Private event\"))
              (print (file carol) (facet party \"Carol's surprise party\" \"Private event\"))))",
    )
    .unwrap();
    let out = Interp::new().run(&program).unwrap();

    let mut app = App::new();
    app.register_model(
        ModelDef::public("event", vec![ColumnDef::new("name", ColumnType::Str)]).with_policy(
            simple_policy(
                "guests_only",
                vec![0],
                |_| vec![Value::from("Private event")],
                |args| args.viewer.user_jid() == Some(1), // alice
            ),
        ),
    )
    .unwrap();
    let jid = app
        .create("event", vec![Value::from("Carol's surprise party")])
        .unwrap();
    let obj = app.get("event", jid).unwrap();
    let alice_sees = app.show_object(&Viewer::User(1), &obj).unwrap()[0]
        .as_str()
        .unwrap()
        .to_owned();
    let carol_sees = app.show_object(&Viewer::User(2), &obj).unwrap()[0]
        .as_str()
        .unwrap()
        .to_owned();

    assert_eq!(out[0].rendered, alice_sees);
    assert_eq!(out[1].rendered, carol_sees);
}

#[test]
fn faceted_values_survive_database_round_trip_verbatim() {
    // A nested faceted value written through the FORM and read back
    // projects identically under every view — the projection-fidelity
    // contract between `faceted` and `form`.
    let mut db = form::FormDb::new();
    db.create_table("t", vec![ColumnDef::new("v", ColumnType::Int)])
        .unwrap();
    let (a, b) = (db.fresh_label("a"), db.fresh_label("b"));
    let obj = Faceted::split(
        a,
        Faceted::split(
            b,
            Faceted::leaf(Some(vec![Value::Int(1)])),
            Faceted::leaf(Some(vec![Value::Int(2)])),
        ),
        Faceted::leaf(Some(vec![Value::Int(3)])),
    );
    let jid = db.insert("t", &obj).unwrap();
    let read = db.get("t", jid).unwrap();
    for bits in 0..4u32 {
        let mut view = View::empty();
        if bits & 1 != 0 {
            view.insert(a);
        }
        if bits & 2 != 0 {
            view.insert(b);
        }
        assert_eq!(read.project(&view), obj.project(&view));
    }
}

#[test]
fn writes_in_guarded_branches_do_not_leak() {
    // The §2.2 implicit-flow scenario at the framework level: update
    // an object under a path condition derived from a sensitive value.
    let app = notes_app();
    let jid = app
        .create("note", vec![Value::Int(1), Value::from("original")])
        .unwrap();
    let obj = app.get("note", jid).unwrap();
    let label = obj.root_label().unwrap();
    // "If the secret text is visible, rewrite it" — the write carries
    // the branch as its path condition.
    let pc = faceted::Branches::new().with(faceted::Branch::pos(label));
    app.update_fields("note", jid, &[(1, Value::from("rewritten"))], &pc)
        .unwrap();
    let after = app.get("note", jid).unwrap();
    assert_eq!(
        app.show_object(&Viewer::User(1), &after).unwrap()[1],
        Value::from("rewritten")
    );
    assert_eq!(
        app.show_object(&Viewer::User(2), &after).unwrap()[1],
        Value::from("[private]"),
        "unauthorized viewers still see the public facet"
    );
}

#[test]
fn solver_backs_circular_policies_across_the_stack() {
    // A label whose policy consults data it itself guards (§2.3):
    // resolution goes through labelsat and must prefer showing.
    use labelsat::{Formula, PolicySet};
    let k = faceted::Label::from_index(0);
    let mut ps = PolicySet::new();
    ps.restrict(k, Formula::var(k));
    assert_eq!(ps.resolve([k]).unwrap().get(k), Some(true));

    // And the hiding direction: k ⇒ ¬k forces false.
    let mut ps = PolicySet::new();
    ps.restrict(k, Formula::var(k).not());
    assert_eq!(ps.resolve([k]).unwrap().get(k), Some(false));
}
