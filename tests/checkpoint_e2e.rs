//! Checkpoint/restore end-to-end: a served application is
//! checkpointed **under live concurrent writers** via the
//! `admin/checkpoint` route, killed, and booted from the checkpoint
//! directory in fresh process state — and every page of the
//! all-pages × all-viewers differential grid must come back
//! byte-identical over a real TCP round-trip, with the interner's
//! facet-DAG sharing (node count) preserved across the round trip.

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::Duration;

use apps::{serve, workload};
use jacqueline::checkpoint::{CHECKPOINT_FILE, WAL_FILE};
use jacqueline::wire::{read_response, WireResponse};
use jacqueline::{Server, ServerConfig, Site, Viewer};

fn start(site: Site) -> Server {
    Server::bind(
        site,
        "127.0.0.1:0",
        ServerConfig {
            conn_threads: 4,
            executor_threads: 4,
            read_timeout: Duration::from_millis(500),
            ..ServerConfig::default()
        },
    )
    .expect("bind an ephemeral port")
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("jacq_e2e_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A keep-alive HTTP client over one connection.
struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
    token: Option<String>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        Client {
            stream,
            reader,
            token: None,
        }
    }

    fn session_header(&self) -> String {
        self.token
            .as_ref()
            .map_or_else(String::new, |t| format!("Cookie: session={t}\r\n"))
    }

    fn get(&mut self, path_and_query: &str) -> WireResponse {
        let raw = format!(
            "GET /{path_and_query} HTTP/1.1\r\nHost: e2e\r\n{}\r\n",
            self.session_header()
        );
        self.stream.write_all(raw.as_bytes()).unwrap();
        read_response(&mut self.reader).expect("response")
    }

    fn post(&mut self, path: &str, form: &str) -> WireResponse {
        let raw = format!(
            "POST /{path} HTTP/1.1\r\nHost: e2e\r\n{}\
             Content-Type: application/x-www-form-urlencoded\r\n\
             Content-Length: {}\r\n\r\n{form}",
            self.session_header(),
            form.len()
        );
        self.stream.write_all(raw.as_bytes()).unwrap();
        read_response(&mut self.reader).expect("response")
    }

    fn login(&mut self, user: i64) {
        let response = self.post("login", &format!("user={user}"));
        assert_eq!(response.status, 200, "login failed: {}", response.text());
        self.token = Some(response.text());
    }
}

/// The conference grid pages for `n_users` users and `n_papers`
/// papers.
fn grid_pages(n_users: i64, n_papers: i64) -> Vec<String> {
    let mut pages = vec!["papers/all".to_owned(), "users/all".to_owned()];
    pages.extend((1..=n_papers).map(|p| format!("papers/one?id={p}")));
    pages.extend((1..=n_users).map(|u| format!("users/one?id={u}")));
    pages
}

/// Captures `(status, body)` of every page for every viewer
/// (anonymous + users `1..=n_users`), each viewer logging in over the
/// wire.
fn capture_grid(addr: SocketAddr, n_users: i64, pages: &[String]) -> Vec<(u16, String)> {
    let viewers: Vec<Viewer> = std::iter::once(Viewer::Anonymous)
        .chain((1..=n_users).map(Viewer::User))
        .collect();
    let mut out = Vec::with_capacity(viewers.len() * pages.len());
    for viewer in &viewers {
        let mut client = Client::connect(addr);
        if let Viewer::User(jid) = viewer {
            client.login(*jid);
        }
        for page in pages {
            let response = client.get(page);
            out.push((response.status, response.text()));
        }
    }
    out
}

/// Parses a counter out of the `admin/checkpoint` response body
/// (`checkpoint: … facet_nodes=N …`).
fn stat(body: &str, key: &str) -> u64 {
    body.split_whitespace()
        .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
        .and_then(|v| v.split("->").next())
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("no {key} in {body:?}"))
}

/// The headline test: serve → write under load → checkpoint under
/// load → keep writing → kill → restore → byte-identical grid.
#[test]
fn served_app_survives_kill_and_restore_byte_identically() {
    let dir = temp_dir("conference");
    let (users, papers) = (8i64, 6i64);
    let site = serve::conference_site_persistent(
        workload::conference(users as usize, papers as usize).app,
        &dir,
    )
    .expect("persistent site");
    let server = start(site);
    let addr = server.addr();

    // Concurrent keep-alive writers race the checkpoint: half their
    // writes land before it (captured by the snapshot), half after
    // (captured by the logs). Every one must survive the restore.
    let writers = 3i64;
    let writes_per_writer = 6;
    std::thread::scope(|scope| {
        for w in 0..writers {
            scope.spawn(move || {
                let mut client = Client::connect(addr);
                client.login(2 + w);
                for i in 0..writes_per_writer {
                    let response =
                        client.post("papers/submit", &format!("title=durable+paper+{w}-{i}"));
                    assert_eq!(response.status, 200, "{}", response.text());
                }
            });
        }
        scope.spawn(move || {
            let mut client = Client::connect(addr);
            client.login(1);
            let response = client.post("admin/checkpoint", "");
            assert_eq!(response.status, 200, "{}", response.text());
            assert!(response.text().starts_with("checkpoint:"));
        });
    });

    // A final checkpoint so the snapshot covers the complete state —
    // and so both processes' facet-node counts are comparable.
    let mut admin = Client::connect(addr);
    admin.login(1);
    let final_checkpoint = admin.post("admin/checkpoint", "");
    assert_eq!(final_checkpoint.status, 200);
    let nodes_before = stat(&final_checkpoint.text(), "facet_nodes");
    let objects_before = stat(&final_checkpoint.text(), "objects");
    assert_eq!(
        objects_before as i64,
        // users + papers + seeded reviews + conf_state + new papers
        users + papers + papers + 1 + writers * writes_per_writer,
        "every concurrent write is in the checkpoint"
    );

    let pages = grid_pages(users, papers);
    let before = capture_grid(addr, users, &pages);
    server.shutdown(); // the "kill": all process state below is fresh

    let restored_site = serve::conference_site_restored(&dir).expect("boot from checkpoint");
    let restored = start(restored_site);
    let after = capture_grid(restored.addr(), users, &pages);
    assert_eq!(before.len(), after.len());
    for (i, (b, a)) in before.iter().zip(&after).enumerate() {
        assert_eq!(b, a, "grid cell {i} (page {:?})", pages[i % pages.len()]);
    }

    // Sharing across the round trip: re-checkpointing the restored
    // app exports a node table of exactly the same size.
    let mut admin = Client::connect(restored.addr());
    admin.login(1);
    let again = admin.post("admin/checkpoint", "");
    assert_eq!(again.status, 200, "{}", again.text());
    assert_eq!(
        stat(&again.text(), "facet_nodes"),
        nodes_before,
        "facet-DAG sharing preserved across kill/restore"
    );
    assert_eq!(stat(&again.text(), "objects"), objects_before);
    restored.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Writes that happen *after* the last checkpoint live only in the
/// write log + meta journal; a restore must replay them — including
/// across a torn (crash-truncated) final log line.
#[test]
fn post_checkpoint_writes_survive_via_log_replay() {
    let dir = temp_dir("logs");
    let site = serve::conference_site_persistent(workload::conference(4, 2).app, &dir)
        .expect("persistent site");
    let server = start(site);
    let mut client = Client::connect(server.addr());
    client.login(1);
    assert_eq!(client.post("admin/checkpoint", "").status, 200);
    // This paper exists only in the logs.
    let response = client.post("papers/submit", "title=log-only+paper");
    assert_eq!(response.status, 200, "{}", response.text());
    let page = client.get("papers/all");
    server.shutdown();

    // Simulate a crash mid-append: garbage with no trailing newline.
    use std::io::Write as _;
    let mut wal = std::fs::OpenOptions::new()
        .append(true)
        .open(dir.join(WAL_FILE))
        .unwrap();
    wal.write_all(b"ins paper 99 i9").unwrap();
    drop(wal);

    let restored = start(serve::conference_site_restored(&dir).expect("restore"));
    let mut client = Client::connect(restored.addr());
    client.login(1);
    let after = client.get("papers/all");
    assert_eq!(page.text(), after.text(), "log-only write survived");
    assert!(after.text().contains("log-only paper"), "{}", after.text());
    restored.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The admin route's wire contract: anonymous sessions cannot
/// checkpoint (the initial boot checkpoint stays untouched by the
/// 403'd request); GET is refused (write route); an authenticated
/// POST rewrites the checkpoint with the new state.
#[test]
fn admin_checkpoint_route_is_gated() {
    let dir = temp_dir("gated");
    let site = serve::conference_site_persistent(workload::conference(3, 2).app, &dir)
        .expect("persistent site");
    let server = start(site);
    let addr = server.addr();
    // persistent_site writes the initial (boot) checkpoint.
    let boot_checkpoint = std::fs::read(dir.join(CHECKPOINT_FILE)).expect("initial checkpoint");

    let mut user = Client::connect(addr);
    user.login(1);
    let submitted = user.post("papers/submit", "title=post-boot");
    assert_eq!(submitted.status, 200, "{}", submitted.text());

    let mut anon = Client::connect(addr);
    assert_eq!(anon.post("admin/checkpoint", "").status, 403);
    assert_eq!(
        std::fs::read(dir.join(CHECKPOINT_FILE)).unwrap(),
        boot_checkpoint,
        "an anonymous request must not rewrite the checkpoint"
    );

    assert_eq!(user.get("admin/checkpoint").status, 405, "GET refused");
    assert_eq!(user.post("admin/checkpoint", "").status, 200);
    assert_ne!(
        std::fs::read(dir.join(CHECKPOINT_FILE)).unwrap(),
        boot_checkpoint,
        "the authenticated checkpoint captured the new paper"
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
