//! Smoke tests: every runnable example in `examples/` is compiled
//! into this test binary (via `#[path]` modules) and executed, so an
//! API drift that breaks an example fails `cargo test`, not just a
//! manual `cargo run --example`.

#[path = "../examples/conference.rs"]
mod conference;
#[path = "../examples/course_manager.rs"]
mod course_manager;
#[path = "../examples/health_records.rs"]
mod health_records;
#[path = "../examples/lambda_jdb_repl.rs"]
mod lambda_jdb_repl;
#[path = "../examples/policy_sat.rs"]
mod policy_sat;
#[path = "../examples/quickstart.rs"]
mod quickstart;
#[path = "../examples/serve.rs"]
mod serve;

#[test]
fn quickstart_example_runs() {
    quickstart::main().expect("quickstart example must run clean");
}

#[test]
fn conference_example_runs() {
    conference::main().expect("conference example must run clean");
}

#[test]
fn course_manager_example_runs() {
    course_manager::main();
}

#[test]
fn health_records_example_runs() {
    health_records::main().expect("health_records example must run clean");
}

#[test]
fn policy_sat_example_runs() {
    policy_sat::main();
}

/// The serve example's default mode binds an ephemeral port, drives a
/// scripted HTTP session against itself, and shuts down — so the
/// whole socket stack is exercised here too.
#[test]
fn serve_example_runs() {
    serve::main();
}

/// Drives the REPL with the exact sample session from its module
/// docs and checks the interesting outputs.
#[test]
fn lambda_jdb_repl_example_runs() {
    let input = "\
(label k (facet k 1 2))
(label k (concat \"x=\" (facet k \"secret\" \"public\")))
(select 0 1 (join (row \"a\") (row \"a\")))
(letstmt s (label k (let a (restrict k (lam v (== v (file boss)))) k)) (print (file boss) (facet s \"top secret\" \"nothing here\")))
(this is not valid
";
    // The interactive entry point is only exercised manually; keep it
    // referenced so the test build stays warning-free.
    let _ = lambda_jdb_repl::main;
    let mut output = Vec::new();
    lambda_jdb_repl::run(input.as_bytes(), &mut output).expect("repl I/O cannot fail on a Vec");
    let output = String::from_utf8(output).expect("repl output is UTF-8");
    assert!(
        output.contains("[boss] top secret"),
        "policy-allowed channel must see the secret facet:\n{output}"
    );
    assert!(
        output.contains("parse error"),
        "malformed input must be reported, not crash:\n{output}"
    );
    // One prompt per line plus the initial one.
    assert!(output.matches("λ> ").count() >= 5, "{output}");
}
