//! Live-socket end-to-end tests: every page of every case-study app,
//! served over a **real TCP round-trip** (parse → authenticate →
//! executor job queue → serialize), must render **byte-identical**
//! bodies to in-process `Router::handle` dispatch — across the same
//! all-pages × all-viewers grid the differential suite pins against
//! the hand-coded baselines. Plus: concurrent keep-alive clients
//! reading while writers mutate, and the login/403 paths.

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use apps::{serve, workload};
use jacqueline::wire::{read_response, WireResponse};
use jacqueline::{Request, Response, Server, ServerConfig, Site, Viewer};

fn start(site: Site) -> Server {
    Server::bind(
        site,
        "127.0.0.1:0",
        ServerConfig {
            conn_threads: 4,
            executor_threads: 4,
            read_timeout: Duration::from_millis(500),
            ..ServerConfig::default()
        },
    )
    .expect("bind an ephemeral port")
}

/// A keep-alive HTTP client over one connection.
struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
    token: Option<String>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        Client {
            stream,
            reader,
            token: None,
        }
    }

    fn session_header(&self) -> String {
        self.token
            .as_ref()
            .map_or_else(String::new, |t| format!("Cookie: session={t}\r\n"))
    }

    fn get(&mut self, path_and_query: &str) -> WireResponse {
        let raw = format!(
            "GET /{path_and_query} HTTP/1.1\r\nHost: e2e\r\n{}\r\n",
            self.session_header()
        );
        self.stream.write_all(raw.as_bytes()).unwrap();
        read_response(&mut self.reader).expect("response")
    }

    fn post(&mut self, path: &str, form: &str) -> WireResponse {
        let raw = format!(
            "POST /{path} HTTP/1.1\r\nHost: e2e\r\n{}\
             Content-Type: application/x-www-form-urlencoded\r\n\
             Content-Length: {}\r\n\r\n{form}",
            self.session_header(),
            form.len()
        );
        self.stream.write_all(raw.as_bytes()).unwrap();
        read_response(&mut self.reader).expect("response")
    }

    /// Logs in as `user`, keeping the minted token for every later
    /// request on this client.
    fn login(&mut self, user: i64) {
        let response = self.post("login", &format!("user={user}"));
        assert_eq!(response.status, 200, "login failed: {}", response.text());
        self.token = Some(response.text());
    }
}

/// One (path, params…) page request both ways: over the socket with
/// this client's session, and in-process with the matching viewer.
fn assert_page_identical(client: &mut Client, server: &Server, viewer: &Viewer, page: &str) {
    let served = client.get(page);
    let request = match page.split_once('?') {
        None => Request::new(page, viewer.clone()),
        Some((path, query)) => {
            let mut r = Request::new(path, viewer.clone());
            for pair in query.split('&') {
                let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
                r = r.with_param(k, v);
            }
            r
        }
    };
    let site = server.site();
    let in_process: Response = site.router.handle(&site.app, &request);
    assert_eq!(
        served.status, in_process.status,
        "status for {viewer} on {page}"
    );
    assert_eq!(
        served.text(),
        in_process.body,
        "body bytes for {viewer} on {page}"
    );
}

/// The grid driver: for every viewer (anonymous + users 1..=n), log
/// in over the wire and compare every page.
fn assert_grid_identical(server: &Server, n_users: i64, pages: &[String]) {
    let addr = server.addr();
    let viewers: Vec<Viewer> = std::iter::once(Viewer::Anonymous)
        .chain((1..=n_users).map(Viewer::User))
        .collect();
    for viewer in &viewers {
        let mut client = Client::connect(addr);
        if let Viewer::User(jid) = viewer {
            client.login(*jid);
        }
        for page in pages {
            assert_page_identical(&mut client, server, viewer, page);
        }
    }
}

#[test]
fn conference_grid_is_byte_identical_over_the_socket() {
    let server = start(serve::conference_site(workload::conference(10, 8).app));
    let mut pages = vec!["papers/all".to_owned(), "users/all".to_owned()];
    pages.extend((1..=8).map(|p| format!("papers/one?id={p}")));
    pages.extend((1..=10).map(|u| format!("users/one?id={u}")));
    assert_grid_identical(&server, 10, &pages);
    server.shutdown();
}

#[test]
fn courses_grid_is_byte_identical_over_the_socket() {
    let w = workload::courses(6);
    // Seed a few submissions so the stateful grade policy has both
    // states on the grid.
    for a in 1..=3 {
        apps::courses::submit_answer(&w.app, &Viewer::User(w.student), a, "mine").unwrap();
    }
    apps::courses::grade_submission(&w.app, 1, 88).unwrap();
    let server = start(serve::courses_site(w.app));
    let mut pages = vec!["courses/all".to_owned(), "courses/all_unpruned".to_owned()];
    pages.extend((1..=3).map(|s| format!("submissions/one?id={s}")));
    assert_grid_identical(&server, 1 + 6, &pages);
    server.shutdown();
}

#[test]
fn health_grid_is_byte_identical_over_the_socket() {
    let server = start(serve::health_site(workload::health(12).app));
    let n_records = {
        let site = server.site();
        site.app.all("health_record").unwrap().len() as i64
    };
    let mut pages = vec!["records/all".to_owned()];
    pages.extend((1..=n_records).map(|r| format!("records/one?id={r}")));
    assert_grid_identical(&server, 12, &pages);
    server.shutdown();
}

/// Concurrent keep-alive clients keep reading while writers submit
/// papers through the same socket: every response is well-formed, and
/// the post-write state matches in-process dispatch byte for byte.
#[test]
fn concurrent_keepalive_clients_survive_writes() {
    let server = start(serve::conference_site(workload::conference(8, 6).app));
    let addr = server.addr();
    let readers = 3;
    let writes_per_writer = 8;
    std::thread::scope(|scope| {
        for r in 0..readers {
            scope.spawn(move || {
                let mut client = Client::connect(addr);
                client.login(1 + r);
                for _ in 0..12 {
                    let page = client.get("papers/all");
                    assert_eq!(page.status, 200);
                    assert!(page.text().starts_with("== Papers =="), "{}", page.text());
                    let users = client.get("users/all");
                    assert_eq!(users.status, 200);
                }
            });
        }
        for w in 0..2i64 {
            scope.spawn(move || {
                let mut client = Client::connect(addr);
                client.login(4 + w);
                for i in 0..writes_per_writer {
                    let response =
                        client.post("papers/submit", &format!("title=wire+paper+{w}-{i}"));
                    assert_eq!(response.status, 200, "{}", response.text());
                }
            });
        }
    });
    // After the dust settles: the served page equals in-process
    // dispatch, and every write landed exactly once.
    let mut client = Client::connect(addr);
    client.login(4);
    assert_page_identical(&mut client, &server, &Viewer::User(4), "papers/all");
    let site = server.site();
    let papers = site.app.all("paper").unwrap();
    let wire_papers = papers
        .iter()
        .filter(|(_, row)| {
            row.fields[0]
                .as_str()
                .is_some_and(|t| t.starts_with("wire paper"))
        })
        .map(|(_, row)| row.jid)
        .collect::<std::collections::BTreeSet<_>>();
    assert_eq!(wire_papers.len(), 2 * writes_per_writer as usize);
    server.shutdown();
}

/// The auth boundary: anonymous reads pass, anonymous writes are 403,
/// forged tokens are 403 before any controller runs, and a logged-in
/// session unlocks exactly its own viewer's facets.
#[test]
fn auth_gates_the_wire_path() {
    let server = start(serve::conference_site(workload::conference(6, 4).app));
    let addr = server.addr();
    let mut anon = Client::connect(addr);
    let page = anon.get("papers/all");
    assert_eq!(page.status, 200);
    assert!(
        page.text().contains("(title hidden)"),
        "anonymous sees public facets: {}",
        page.text()
    );
    let denied = anon.post("papers/submit", "title=sneaky");
    assert_eq!(denied.status, 403, "anonymous writes are policy-denied");

    let mut forged = Client::connect(addr);
    forged.token = Some("s0-forged".to_owned());
    let rejected = forged.get("papers/all");
    assert_eq!(
        rejected.status, 403,
        "forged tokens never reach a controller"
    );

    let mut user = Client::connect(addr);
    user.login(1); // user 1 is the chair in the workload
    let chaired = user.get("papers/all");
    assert!(
        !chaired.text().contains("(title hidden)"),
        "the chair sees every title: {}",
        chaired.text()
    );
    let queue_us: u64 = chaired.header("x-queue-us").unwrap().parse().unwrap();
    let service_us: u64 = chaired.header("x-service-us").unwrap().parse().unwrap();
    assert!(queue_us < 60_000_000 && service_us < 60_000_000);
    server.shutdown();
}

/// The render-cache diagnostic header over a live socket: a cold page
/// is a `miss`, the repeat is a `hit` with byte-identical body, a
/// write route reports `bypass`, and a read after the write is a
/// `repair` — `papers/all` registers a fragment renderer, so the
/// stale entry is spliced back together from the write journal
/// instead of discarded, byte-identical to a full render. Cached
/// responses still carry *fresh* `X-Queue-Us`/`X-Service-Us` timings —
/// the server appends them after the executor round-trip, and only
/// header-less responses are ever stored, so there are no stale
/// timing headers to replay. `admin/health` publishes the counters
/// behind all of this.
#[test]
fn render_cache_header_reports_hit_miss_repair_bypass_over_the_socket() {
    let server = start(serve::conference_site(workload::conference(6, 4).app));
    let mut client = Client::connect(server.addr());
    client.login(2);
    let first = client.get("papers/all");
    assert_eq!(first.status, 200);
    assert_eq!(first.header("x-render-cache"), Some("miss"));
    let second = client.get("papers/all");
    assert_eq!(second.header("x-render-cache"), Some("hit"));
    assert_eq!(
        second.text(),
        first.text(),
        "a hit replays the rendered bytes exactly"
    );
    // Fresh per-request timings on the hit, exactly one value each.
    for header in ["x-queue-us", "x-service-us"] {
        let micros: u64 = second.header(header).unwrap().parse().unwrap();
        assert!(micros < 60_000_000, "{header} is a live measurement");
    }
    // Another viewer never borrows this session's bytes: their first
    // request is its own miss.
    let mut other = Client::connect(server.addr());
    other.login(3);
    let others_page = other.get("papers/all");
    assert_eq!(others_page.header("x-render-cache"), Some("miss"));

    let write = client.post("papers/submit", "title=fresh+paper");
    assert_eq!(write.status, 200, "{}", write.text());
    assert_eq!(
        write.header("x-render-cache"),
        Some("bypass"),
        "write routes never touch the cache"
    );
    let after = client.get("papers/all");
    assert_eq!(
        after.header("x-render-cache"),
        Some("repair"),
        "the write moved the paper table's generation; the fragment \
         renderer splices the new row in from the journal"
    );
    assert!(after.text().contains("fresh paper"), "{}", after.text());
    // The repaired bytes equal a from-scratch faceted render.
    {
        let site = server.site();
        let full = site
            .router
            .handle(&site.app, &Request::new("papers/all", Viewer::User(2)));
        assert_eq!(after.text(), full.body, "repair is byte-identical");
    }
    let warm = client.get("papers/all");
    assert_eq!(
        warm.header("x-render-cache"),
        Some("hit"),
        "a repaired entry is restamped, not re-rendered"
    );
    assert_eq!(warm.text(), after.text());
    // The counters behind the header are wire-visible on admin/health.
    let health = client.get("admin/health");
    assert_eq!(health.status, 200);
    assert!(
        health.text().contains("render_cache hits=") && health.text().contains(" repairs=1 "),
        "admin/health publishes the cache counters: {}",
        health.text()
    );
    server.shutdown();
}

#[test]
fn get_on_a_write_route_is_405_with_allow_post() {
    let server = start(serve::conference_site(workload::conference(4, 2).app));
    let mut user = Client::connect(server.addr());
    user.login(2);
    let refused = user.get("papers/submit?title=crawled");
    assert_eq!(refused.status, 405, "write routes only answer POST");
    assert_eq!(
        refused.header("allow"),
        Some("POST"),
        "RFC 9110: 405 names the allowed methods on the wire"
    );
    server.shutdown();
}
