//! An offline, API-compatible subset of the `criterion` crate.
//!
//! The real `criterion` is unavailable in this build environment (no
//! registry access). This stand-in implements the surface the
//! workspace's benches use — groups, `bench_with_input`,
//! `Bencher::iter`, `criterion_group!`/`criterion_main!` — with a
//! simple median-of-samples wall-clock timer and plain-text output.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::Instant;

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Applies a substring filter from the command line
    /// (`cargo bench -- <filter>`), ignoring harness flags.
    pub fn configure_from_args(mut self) -> Criterion {
        self.filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "bench");
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 100,
        }
    }

    /// Benchmarks a single routine.
    pub fn bench_function(
        &mut self,
        name: &str,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Criterion {
        if self.matches(name) {
            run_one(name, 100, &mut f);
        }
        self
    }

    fn matches(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` with `input`, labelled by `id`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.0);
        if self.criterion.matches(&full) {
            run_one(&full, self.sample_size, &mut |b| f(b, input));
        }
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A benchmark identifier: function name plus parameter.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }
}

/// Passed to the benchmark closure; times the routine.
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, recording `sample_size` samples.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up.
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed().as_secs_f64());
        }
    }
}

fn run_one(id: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{id:<50} (no samples)");
        return;
    }
    b.samples.sort_by(f64::total_cmp);
    let median = b.samples[b.samples.len() / 2];
    let (lo, hi) = (b.samples[0], b.samples[b.samples.len() - 1]);
    println!(
        "{id:<50} median {}  (min {}, max {}, n={})",
        fmt_time(median),
        fmt_time(lo),
        fmt_time(hi),
        b.samples.len(),
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:>8.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:>8.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:>8.2} ms", secs * 1e3)
    } else {
        format!("{secs:>8.2} s ")
    }
}

/// Declares a group function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($group(&mut c);)+
        }
    };
}
