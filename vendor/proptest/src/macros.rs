//! The user-facing macros: `proptest!`, `prop_oneof!`, and the
//! `prop_assert*` / `prop_assume!` family.

/// Declares property tests. Each `fn name(arg in strategy, ...)` body
/// runs `ProptestConfig::cases` times with freshly generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::test_runner::run_cases(&__config, |__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                let __outcome: $crate::test_runner::TestCaseResult = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                __outcome
            });
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Weighted (`w => strategy`) or uniform choice between strategies
/// producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(::std::vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(::std::vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Like `assert!`, but fails the current case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: {}", ::core::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: {}: {}",
                    ::core::stringify!($cond),
                    ::std::format_args!($($fmt)+),
                ),
            ));
        }
    };
}

/// Like `assert_eq!`, but fails the current case instead of panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        if !(*__left == *__right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
                    __left, __right,
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__left, __right) = (&$left, &$right);
        if !(*__left == *__right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `left == right`\n  left: {:?}\n right: {:?}\n{}",
                    __left, __right, ::std::format_args!($($fmt)+),
                ),
            ));
        }
    }};
}

/// Like `assert_ne!`, but fails the current case instead of panicking.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        if *__left == *__right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `left != right`\n  both: {:?}",
                    __left,
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__left, __right) = (&$left, &$right);
        if *__left == *__right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `left != right`\n  both: {:?}\n{}",
                    __left, ::std::format_args!($($fmt)+),
                ),
            ));
        }
    }};
}

/// Discards the current case (with fresh inputs drawn instead) when
/// the generated inputs do not satisfy `cond`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                ::core::stringify!($cond),
            ));
        }
    };
}
