//! The `Strategy` trait and core combinators.

use std::ops::Range;
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating values of type `Self::Value`.
///
/// Unlike real proptest there is no shrinking: a strategy is just a
/// sampling function over a deterministic RNG.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `recurse` receives a strategy for
    /// the smaller cases and returns the strategy for a composite
    /// case. `depth` bounds the recursion; the remaining two size
    /// parameters are accepted for API compatibility and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let base = self.boxed();
        let mut level = base.clone();
        for _ in 0..depth {
            let composite = recurse(level).boxed();
            let leaf = base.clone();
            level = BoxedStrategy::new(move |rng| {
                // Lean toward recursion so deep trees actually occur;
                // `depth` still caps the height.
                if rng.ratio(1, 3) {
                    leaf.generate(rng)
                } else {
                    composite.generate(rng)
                }
            });
        }
        level
    }

    /// Type-erases this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy::new(move |rng| self.generate(rng))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T> {
    sample: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> BoxedStrategy<T> {
    /// Wraps a sampling function.
    pub fn new(f: impl Fn(&mut TestRng) -> T + 'static) -> BoxedStrategy<T> {
        BoxedStrategy { sample: Rc::new(f) }
    }
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> BoxedStrategy<T> {
        BoxedStrategy {
            sample: Rc::clone(&self.sample),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.sample)(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted choice between type-erased alternatives; the engine behind
/// `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Builds a union from `(weight, strategy)` arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty or all weights are zero.
    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! needs at least one weighted arm");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights covered the whole range")
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
