//! An offline, API-compatible subset of the `proptest` crate.
//!
//! The real `proptest` is unavailable in this build environment (no
//! registry access), so this vendored stand-in implements the exact
//! surface the workspace's property tests use. Generation is purely
//! random (no shrinking); every case runs with a deterministic seed
//! derived from the case index, so failures reproduce across runs.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

mod macros;

/// Everything a property test normally imports.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}
