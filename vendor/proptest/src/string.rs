//! Regex-pattern string strategies: `"[a-c]{1,3}"` as a
//! `Strategy<Value = String>`, like real proptest's `&str` instance.
//!
//! Supports the subset used in this workspace: literal characters,
//! character classes `[abc]` / `[a-c]` (including mixed singles and
//! ranges), and the quantifiers `{n}`, `{m,n}`, `?`, `*`, `+`
//! (unbounded repetition is capped at 8).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

const UNBOUNDED_CAP: u32 = 8;

#[derive(Clone, Debug)]
struct Atom {
    /// The characters this position may produce.
    choices: Vec<char>,
    min: u32,
    max: u32,
}

fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let mut chars = pattern.chars().peekable();
    let mut atoms = Vec::new();
    while let Some(c) = chars.next() {
        let choices = match c {
            '[' => {
                let mut set = Vec::new();
                let mut class: Vec<char> = Vec::new();
                for d in chars.by_ref() {
                    if d == ']' {
                        break;
                    }
                    class.push(d);
                }
                let mut i = 0;
                while i < class.len() {
                    if i + 2 < class.len() && class[i + 1] == '-' {
                        let (lo, hi) = (class[i], class[i + 2]);
                        assert!(lo <= hi, "bad character range in pattern {pattern:?}");
                        for ch in lo..=hi {
                            set.push(ch);
                        }
                        i += 3;
                    } else {
                        set.push(class[i]);
                        i += 1;
                    }
                }
                assert!(
                    !set.is_empty(),
                    "empty character class in pattern {pattern:?}"
                );
                set
            }
            '\\' => vec![chars.next().expect("dangling escape in pattern")],
            other => vec![other],
        };
        let (min, max) = match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for d in chars.by_ref() {
                    if d == '}' {
                        break;
                    }
                    spec.push(d);
                }
                match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad {m,n} quantifier"),
                        hi.trim().parse().expect("bad {m,n} quantifier"),
                    ),
                    None => {
                        let n: u32 = spec.trim().parse().expect("bad {n} quantifier");
                        (n, n)
                    }
                }
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('*') => {
                chars.next();
                (0, UNBOUNDED_CAP)
            }
            Some('+') => {
                chars.next();
                (1, UNBOUNDED_CAP)
            }
            _ => (1, 1),
        };
        assert!(min <= max, "bad quantifier in pattern {pattern:?}");
        atoms.push(Atom { choices, min, max });
    }
    atoms
}

impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let reps = if atom.min == atom.max {
                atom.min
            } else {
                atom.min + rng.below(u64::from(atom.max - atom.min + 1)) as u32
            };
            for _ in 0..reps {
                out.push(atom.choices[rng.usize_in(0, atom.choices.len())]);
            }
        }
        out
    }
}
