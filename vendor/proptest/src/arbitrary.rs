//! `any::<T>()` and the `Arbitrary` trait.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary {
    /// Draws an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.bool()
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Any<T> {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy over the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
