//! Deterministic test runner: config, RNG, case loop.

use std::fmt;

/// A deterministic pseudo-random generator (splitmix64 core).
///
/// Each test case gets its own generator seeded from the case index,
/// so a failing case reproduces on every run.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo < hi);
        lo + self.below((hi - lo) as u64) as usize
    }

    /// Fair coin.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Returns `true` with probability `num / denom`.
    pub fn ratio(&mut self, num: u64, denom: u64) -> bool {
        self.below(denom) < num
    }
}

/// Runner configuration; only `cases` is meaningful in this subset.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single test case did not pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TestCaseError {
    /// The property does not hold; the test fails.
    Fail(String),
    /// The generated inputs do not satisfy a `prop_assume!`; the case
    /// is discarded, not failed.
    Reject(String),
}

impl TestCaseError {
    /// A failed case with the given message.
    pub fn fail(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(reason.into())
    }

    /// A rejected (discarded) case with the given message.
    pub fn reject(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "{r}"),
            TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
        }
    }
}

/// Result of one test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runs `body` for each case, panicking (like `assert!`) on the first
/// failing case. Rejected cases are retried with fresh inputs, up to a
/// bounded number of attempts.
pub fn run_cases(config: &ProptestConfig, mut body: impl FnMut(&mut TestRng) -> TestCaseResult) {
    let max_rejects = u64::from(config.cases) * 16 + 256;
    let mut rejects: u64 = 0;
    let mut attempt: u64 = 0;
    let mut passed: u32 = 0;
    while passed < config.cases {
        let mut rng = TestRng::from_seed(attempt.wrapping_mul(0xa076_1d64_78bd_642f));
        attempt += 1;
        match body(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejects += 1;
                assert!(
                    rejects <= max_rejects,
                    "too many rejected cases ({rejects}); weaken prop_assume! conditions"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest case #{attempt} (seed {}) failed: {msg}",
                    attempt - 1
                )
            }
        }
    }
}
