//! Collection strategies: `vec` and `btree_set`.

use std::collections::BTreeSet;
use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A target size (range) for a generated collection.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive.
    hi: usize,
}

impl SizeRange {
    fn pick(self, rng: &mut TestRng) -> usize {
        if self.lo + 1 >= self.hi {
            self.lo
        } else {
            rng.usize_in(self.lo, self.hi)
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Generates a `Vec` of values from `element`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for a `Vec` whose length falls in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Generates a `BTreeSet` of values from `element`.
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.pick(rng);
        let mut out = BTreeSet::new();
        // Duplicates shrink the set; bound the attempts in case the
        // element domain is smaller than the target size.
        for _ in 0..target.saturating_mul(8) {
            if out.len() >= target {
                break;
            }
            out.insert(self.element.generate(rng));
        }
        out
    }
}

/// Strategy for a `BTreeSet` with roughly `size` elements (fewer when
/// the element domain is too small).
pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}
