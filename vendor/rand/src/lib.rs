//! An offline, API-compatible subset of the `rand` crate.
//!
//! Implements only what the workspace uses: a seedable deterministic
//! generator (`rngs::StdRng`, splitmix64 — *not* the real StdRng
//! algorithm, which is fine since all in-tree uses are seeded and only
//! need reproducibility within this codebase), plus `Rng::gen_range`
//! over integer ranges and `Rng::gen_bool`.

#![forbid(unsafe_code)]

use std::ops::Range;

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;
}

/// Types constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling helpers over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from an integer range.
    fn gen_range<T: SampleRange>(&mut self, range: T) -> T::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 random bits → uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

/// Ranges that can be sampled uniformly.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one value.
    fn sample<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;

            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seeded generator (splitmix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}
