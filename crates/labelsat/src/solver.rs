//! High-level policy resolution.
//!
//! [`max_true_assignment`] finds the satisfying assignment that shows
//! as much as possible (lexicographically greatest, `true` preferred);
//! [`PolicySet`] stores per-label policy constraints and implements
//! the `closeK` transitive closure and the `F-PRINT` resolution step.

use std::collections::{BTreeMap, BTreeSet};

use faceted::Label;

use crate::assignment::Assignment;
use crate::cnf::Cnf;
use crate::dpll::{solve, SatResult};
use crate::formula::Formula;

/// Finds the satisfying assignment of `formula` that is
/// lexicographically greatest under the label order with
/// `true > false` — i.e. labels are shown unless the constraints
/// force hiding. Returns `None` when the formula is unsatisfiable.
///
/// # Examples
///
/// ```
/// use faceted::Label;
/// use labelsat::{max_true_assignment, Formula};
///
/// let k = Label::from_index(0);
/// // k ⇒ false forces hiding.
/// let a = max_true_assignment(&Formula::var(k).implies(Formula::constant(false))).unwrap();
/// assert_eq!(a.get(k), Some(false));
/// ```
#[must_use]
pub fn max_true_assignment(formula: &Formula) -> Option<Assignment> {
    let cnf = Cnf::from_formula(formula);
    match solve(&cnf) {
        SatResult::Sat(model) => {
            let mut a = cnf.model_to_assignment(&model);
            // Variables the formula never mentions default to shown.
            for l in formula.vars() {
                if !a.is_assigned(l) {
                    a.set(l, true);
                }
            }
            Some(a)
        }
        SatResult::Unsat => None,
    }
}

/// Reference implementation: enumerate all assignments. Exponential;
/// used by tests to validate the DPLL path.
#[must_use]
pub fn brute_force_max_true(formula: &Formula) -> Option<Assignment> {
    let vars: Vec<Label> = formula.vars().into_iter().collect();
    let n = vars.len();
    assert!(n <= 20, "brute force limited to 20 variables");
    // Descending lexicographic order with true=1: start from all-true.
    for bits in (0..(1u64 << n)).rev() {
        let a: Assignment = vars
            .iter()
            .enumerate()
            .map(|(i, l)| (*l, bits & (1 << (n - 1 - i)) != 0))
            .collect();
        if formula.eval(&a) == Some(true) {
            return Some(a);
        }
    }
    None
}

/// A set of label policies: `label ⇒ formula` constraints.
///
/// Mirrors the store's label component in λ<sub>JDB</sub>: `restrict`
/// conjoins (policies only become more restrictive, rule
/// `F-RESTRICT`), and resolution picks a maximal-true satisfying
/// assignment over the `closeK` transitive closure of relevant labels
/// (rule `F-PRINT`).
///
/// # Examples
///
/// ```
/// use faceted::Label;
/// use labelsat::{Formula, PolicySet};
///
/// let k = Label::from_index(0);
/// let mut ps = PolicySet::new();
/// ps.restrict(k, Formula::constant(false));
/// let a = ps.resolve([k]).expect("all-false is always valid");
/// assert_eq!(a.get(k), Some(false));
/// ```
#[derive(Clone, Debug, Default)]
pub struct PolicySet {
    policies: BTreeMap<Label, Formula>,
}

impl PolicySet {
    /// Creates an empty set (every label defaults to policy `true`,
    /// matching `F-LABEL`'s `λx.true`).
    #[must_use]
    pub fn new() -> PolicySet {
        PolicySet::default()
    }

    /// Conjoins `policy` onto the label's current policy
    /// (`F-RESTRICT`).
    pub fn restrict(&mut self, label: Label, policy: Formula) {
        let cur = self.policies.remove(&label).unwrap_or(Formula::Const(true));
        self.policies.insert(label, cur.and(policy));
    }

    /// The current policy formula for `label` (default `true`).
    #[must_use]
    pub fn policy(&self, label: Label) -> Formula {
        self.policies
            .get(&label)
            .cloned()
            .unwrap_or(Formula::Const(true))
    }

    /// Labels with a registered (non-default) policy.
    pub fn labels(&self) -> impl Iterator<Item = Label> + '_ {
        self.policies.keys().copied()
    }

    /// The paper's `closeK`: starting from `seed`, repeatedly add
    /// every label mentioned by the policies of labels already in the
    /// set, to fixpoint.
    #[must_use]
    pub fn close_k<I: IntoIterator<Item = Label>>(&self, seed: I) -> BTreeSet<Label> {
        let mut set: BTreeSet<Label> = seed.into_iter().collect();
        loop {
            let mut grew = false;
            let current: Vec<Label> = set.iter().copied().collect();
            for l in current {
                for dep in self.policy(l).vars() {
                    grew |= set.insert(dep);
                }
            }
            if !grew {
                return set;
            }
        }
    }

    /// Builds the sink constraint for the given labels:
    /// `⋀_k (k ⇒ policy(k))` over `closeK(seed)`.
    #[must_use]
    pub fn constraint<I: IntoIterator<Item = Label>>(&self, seed: I) -> Formula {
        Formula::all(
            self.close_k(seed)
                .into_iter()
                .map(|l| Formula::var(l).implies(self.policy(l))),
        )
    }

    /// Resolves the labels reachable from `seed` to a maximal-true
    /// assignment satisfying every policy constraint.
    ///
    /// Always succeeds when constraints have the guarded form
    /// `k ⇒ φ` (the all-false assignment is valid, §2.3); returns
    /// `None` only if an ill-formed policy makes even that
    /// unsatisfiable.
    #[must_use]
    pub fn resolve<I: IntoIterator<Item = Label>>(&self, seed: I) -> Option<Assignment> {
        let relevant = self.close_k(seed);
        let constraint = self.constraint(relevant.iter().copied());
        let mut a = max_true_assignment(&constraint)?;
        // Labels without constraints resolve to "shown".
        for l in relevant {
            if !a.is_assigned(l) {
                a.set(l, true);
            }
        }
        Some(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(i: u32) -> Label {
        Label::from_index(i)
    }

    #[test]
    fn unconstrained_labels_are_shown() {
        let ps = PolicySet::new();
        let a = ps.resolve([k(0), k(1)]).unwrap();
        assert_eq!(a.get(k(0)), Some(true));
        assert_eq!(a.get(k(1)), Some(true));
    }

    #[test]
    fn denying_policy_hides() {
        let mut ps = PolicySet::new();
        ps.restrict(k(0), Formula::constant(false));
        let a = ps.resolve([k(0)]).unwrap();
        assert_eq!(a.get(k(0)), Some(false));
    }

    #[test]
    fn restrict_only_tightens() {
        let mut ps = PolicySet::new();
        ps.restrict(k(0), Formula::constant(true));
        ps.restrict(k(0), Formula::constant(false));
        ps.restrict(k(0), Formula::constant(true));
        let a = ps.resolve([k(0)]).unwrap();
        assert_eq!(
            a.get(k(0)),
            Some(false),
            "policies must only become more restrictive"
        );
    }

    #[test]
    fn close_k_follows_dependencies() {
        let mut ps = PolicySet::new();
        ps.restrict(k(0), Formula::var(k(1)));
        ps.restrict(k(1), Formula::var(k(2)));
        let closed = ps.close_k([k(0)]);
        assert_eq!(
            closed.into_iter().collect::<Vec<_>>(),
            vec![k(0), k(1), k(2)]
        );
    }

    #[test]
    fn mutual_dependency_self_referential_policy() {
        // The paper's circular case (§2.3): the policy for the guest
        // list depends on the guest list itself — the guard k's policy
        // mentions k. Both "show" and "hide" are consistent; the
        // solver must pick "show".
        let mut ps = PolicySet::new();
        ps.restrict(k(0), Formula::var(k(0)));
        let a = ps.resolve([k(0)]).unwrap();
        assert_eq!(
            a.get(k(0)),
            Some(true),
            "Jacqueline always attempts to show values"
        );
    }

    #[test]
    fn mutual_dependency_forced_hide() {
        // k's policy says ¬k: only the all-false outcome is consistent.
        let mut ps = PolicySet::new();
        ps.restrict(k(0), Formula::var(k(0)).not());
        let a = ps.resolve([k(0)]).unwrap();
        assert_eq!(a.get(k(0)), Some(false));
    }

    #[test]
    fn chained_policies_resolve_transitively() {
        // k0 visible only if k1 visible; k1's policy denies.
        let mut ps = PolicySet::new();
        ps.restrict(k(0), Formula::var(k(1)));
        ps.restrict(k(1), Formula::constant(false));
        let a = ps.resolve([k(0)]).unwrap();
        assert_eq!(a.get(k(0)), Some(false));
        assert_eq!(a.get(k(1)), Some(false));
    }

    #[test]
    fn dpll_matches_brute_force_on_examples() {
        let cases = [
            Formula::var(k(0)).or(Formula::var(k(1))),
            Formula::var(k(0)).implies(Formula::var(k(1)).not()),
            Formula::var(k(0))
                .and(Formula::var(k(1)).or(Formula::var(k(2)).not()))
                .and(Formula::var(k(2)).implies(Formula::var(k(0)))),
            Formula::constant(false),
            Formula::var(k(0)).and(Formula::var(k(0)).not()),
        ];
        for f in cases {
            assert_eq!(
                max_true_assignment(&f),
                brute_force_max_true(&f),
                "formula {f}"
            );
        }
    }
}
