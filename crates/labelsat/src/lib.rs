//! `labelsat` — Boolean constraint solving for information-flow labels.
//!
//! At a computation sink, the Jacqueline runtime must pick Boolean
//! values for every relevant label such that all attached policies are
//! satisfied (rule `F-PRINT` of Yang et al., PLDI 2016). When policies
//! and sensitive values depend on each other the choice is a genuine
//! constraint problem; the paper solves it with "the SAT subset of the
//! Z3 SMT solver" (§5.1.2). This crate substitutes a from-scratch
//! solver:
//!
//! * [`Formula`] — Boolean formulas over [`faceted::Label`]s, with a
//!   conversion from faceted Booleans;
//! * [`Assignment`] — (partial) label valuations;
//! * [`Cnf`] / [`Lit`] — Tseitin CNF;
//! * [`solve`] — DPLL with unit propagation and *true-first*
//!   branching, so the first model shows as much as policies allow;
//! * [`PolicySet`] — per-label policies with `restrict` semantics, the
//!   `closeK` transitive closure, and one-call [`PolicySet::resolve`].
//!
//! # Example
//!
//! ```
//! use faceted::Label;
//! use labelsat::{Formula, PolicySet};
//!
//! let k = Label::from_index(0);
//! let mut policies = PolicySet::new();
//! // Self-referential policy (the paper's circular guest-list case):
//! // k may be shown only if k is shown. Both outcomes are consistent;
//! // the solver prefers showing.
//! policies.restrict(k, Formula::var(k));
//! assert_eq!(policies.resolve([k]).unwrap().get(k), Some(true));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assignment;
mod cnf;
mod dpll;
mod formula;
mod solver;

pub use assignment::Assignment;
pub use cnf::{Cnf, Lit};
pub use dpll::{solve, SatResult};
pub use formula::Formula;
pub use solver::{brute_force_max_true, max_true_assignment, PolicySet};
