//! Boolean formulas over information-flow labels.

use std::collections::BTreeSet;
use std::fmt;

use faceted::{Faceted, Label, View};

use crate::assignment::Assignment;

/// A Boolean formula whose variables are labels.
///
/// Produced by evaluating policies at a computation sink: the
/// `F-PRINT` rule builds the conjunction of all (transitively)
/// relevant policies and asks for a satisfying label assignment.
///
/// # Examples
///
/// ```
/// use faceted::Label;
/// use labelsat::{Assignment, Formula};
///
/// let k = Label::from_index(0);
/// let f = Formula::var(k).implies(Formula::constant(false));
/// let a = Assignment::new().with(k, false);
/// assert_eq!(f.eval(&a), Some(true));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Formula {
    /// A constant.
    Const(bool),
    /// A label variable.
    Var(Label),
    /// Negation.
    Not(Box<Formula>),
    /// N-ary conjunction (empty = true).
    And(Vec<Formula>),
    /// N-ary disjunction (empty = false).
    Or(Vec<Formula>),
}

impl Formula {
    /// The constant formula.
    #[must_use]
    pub fn constant(b: bool) -> Formula {
        Formula::Const(b)
    }

    /// A variable.
    #[must_use]
    pub fn var(label: Label) -> Formula {
        Formula::Var(label)
    }

    /// `¬self`.
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Formula {
        match self {
            Formula::Const(b) => Formula::Const(!b),
            Formula::Not(f) => *f,
            f => Formula::Not(Box::new(f)),
        }
    }

    /// `self ∧ other`, flattening nested conjunctions.
    #[must_use]
    pub fn and(self, other: Formula) -> Formula {
        match (self, other) {
            (Formula::Const(false), _) | (_, Formula::Const(false)) => Formula::Const(false),
            (Formula::Const(true), f) | (f, Formula::Const(true)) => f,
            (Formula::And(mut a), Formula::And(b)) => {
                a.extend(b);
                Formula::And(a)
            }
            (Formula::And(mut a), f) => {
                a.push(f);
                Formula::And(a)
            }
            (f, Formula::And(mut b)) => {
                b.insert(0, f);
                Formula::And(b)
            }
            (a, b) => Formula::And(vec![a, b]),
        }
    }

    /// `self ∨ other`, flattening nested disjunctions.
    #[must_use]
    pub fn or(self, other: Formula) -> Formula {
        match (self, other) {
            (Formula::Const(true), _) | (_, Formula::Const(true)) => Formula::Const(true),
            (Formula::Const(false), f) | (f, Formula::Const(false)) => f,
            (Formula::Or(mut a), Formula::Or(b)) => {
                a.extend(b);
                Formula::Or(a)
            }
            (Formula::Or(mut a), f) => {
                a.push(f);
                Formula::Or(a)
            }
            (f, Formula::Or(mut b)) => {
                b.insert(0, f);
                Formula::Or(b)
            }
            (a, b) => Formula::Or(vec![a, b]),
        }
    }

    /// `self ⇒ other` (used for policy constraints `k ⇒ policy(k)`).
    #[must_use]
    pub fn implies(self, other: Formula) -> Formula {
        self.not().or(other)
    }

    /// Conjunction of an iterator of formulas.
    pub fn all<I: IntoIterator<Item = Formula>>(iter: I) -> Formula {
        iter.into_iter().fold(Formula::Const(true), Formula::and)
    }

    /// Disjunction of an iterator of formulas.
    pub fn any<I: IntoIterator<Item = Formula>>(iter: I) -> Formula {
        iter.into_iter().fold(Formula::Const(false), Formula::or)
    }

    /// The formula "view satisfies this faceted Boolean": true exactly
    /// for assignments under which `v` projects to `true`.
    ///
    /// This is how the runtime turns an evaluated (possibly faceted)
    /// policy check into a constraint for the solver.
    #[must_use]
    pub fn from_faceted_bool(v: &Faceted<bool>) -> Formula {
        Formula::any(
            v.leaves()
                .into_iter()
                .filter(|(_, leaf)| **leaf)
                .map(|(guard, _)| {
                    Formula::all(guard.iter().map(|b| {
                        if b.is_positive() {
                            Formula::var(b.label())
                        } else {
                            Formula::var(b.label()).not()
                        }
                    }))
                }),
        )
    }

    /// Evaluates under a (possibly partial) assignment. Returns `None`
    /// when the result depends on an unassigned variable.
    #[must_use]
    pub fn eval(&self, a: &Assignment) -> Option<bool> {
        match self {
            Formula::Const(b) => Some(*b),
            Formula::Var(l) => a.get(*l),
            Formula::Not(f) => f.eval(a).map(|b| !b),
            Formula::And(fs) => {
                let mut unknown = false;
                for f in fs {
                    match f.eval(a) {
                        Some(false) => return Some(false),
                        Some(true) => {}
                        None => unknown = true,
                    }
                }
                if unknown {
                    None
                } else {
                    Some(true)
                }
            }
            Formula::Or(fs) => {
                let mut unknown = false;
                for f in fs {
                    match f.eval(a) {
                        Some(true) => return Some(true),
                        Some(false) => {}
                        None => unknown = true,
                    }
                }
                if unknown {
                    None
                } else {
                    Some(false)
                }
            }
        }
    }

    /// Evaluates under a total view (labels in the view are true).
    #[must_use]
    pub fn holds_in(&self, view: &View) -> bool {
        match self {
            Formula::Const(b) => *b,
            Formula::Var(l) => view.sees(*l),
            Formula::Not(f) => !f.holds_in(view),
            Formula::And(fs) => fs.iter().all(|f| f.holds_in(view)),
            Formula::Or(fs) => fs.iter().any(|f| f.holds_in(view)),
        }
    }

    /// Partially evaluates: fixes `label := value` and simplifies.
    #[must_use]
    pub fn assume(&self, label: Label, value: bool) -> Formula {
        match self {
            Formula::Const(_) => self.clone(),
            Formula::Var(l) => {
                if *l == label {
                    Formula::Const(value)
                } else {
                    self.clone()
                }
            }
            Formula::Not(f) => f.assume(label, value).not(),
            Formula::And(fs) => Formula::all(fs.iter().map(|f| f.assume(label, value))),
            Formula::Or(fs) => Formula::any(fs.iter().map(|f| f.assume(label, value))),
        }
    }

    /// The set of variables occurring in the formula.
    #[must_use]
    pub fn vars(&self) -> BTreeSet<Label> {
        fn walk(f: &Formula, out: &mut BTreeSet<Label>) {
            match f {
                Formula::Const(_) => {}
                Formula::Var(l) => {
                    out.insert(*l);
                }
                Formula::Not(g) => walk(g, out),
                Formula::And(fs) | Formula::Or(fs) => {
                    for g in fs {
                        walk(g, out);
                    }
                }
            }
        }
        let mut out = BTreeSet::new();
        walk(self, &mut out);
        out
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::Const(b) => write!(f, "{b}"),
            Formula::Var(l) => write!(f, "{l}"),
            Formula::Not(g) => write!(f, "¬{g}"),
            Formula::And(fs) => {
                write!(f, "(")?;
                for (i, g) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∧ ")?;
                    }
                    write!(f, "{g}")?;
                }
                write!(f, ")")
            }
            Formula::Or(fs) => {
                write!(f, "(")?;
                for (i, g) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∨ ")?;
                    }
                    write!(f, "{g}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(i: u32) -> Label {
        Label::from_index(i)
    }

    #[test]
    fn constant_folding() {
        assert_eq!(
            Formula::constant(true).and(Formula::var(k(0))),
            Formula::var(k(0))
        );
        assert_eq!(
            Formula::constant(false).and(Formula::var(k(0))),
            Formula::constant(false)
        );
        assert_eq!(
            Formula::constant(false).or(Formula::var(k(0))),
            Formula::var(k(0))
        );
        assert_eq!(Formula::constant(true).not(), Formula::constant(false));
        assert_eq!(Formula::var(k(0)).not().not(), Formula::var(k(0)));
    }

    #[test]
    fn eval_partial_and_total() {
        let f = Formula::var(k(0)).and(Formula::var(k(1)));
        let partial = Assignment::new().with(k(0), true);
        assert_eq!(f.eval(&partial), None);
        assert_eq!(f.eval(&partial.with(k(1), false)), Some(false));
        // Short-circuit: k0=false decides the conjunction.
        let decided = Assignment::new().with(k(0), false);
        assert_eq!(f.eval(&decided), Some(false));
    }

    #[test]
    fn implies_semantics() {
        let f = Formula::var(k(0)).implies(Formula::var(k(1)));
        let tt = Assignment::new().with(k(0), true).with(k(1), true);
        let tf = Assignment::new().with(k(0), true).with(k(1), false);
        let ft = Assignment::new().with(k(0), false).with(k(1), false);
        assert_eq!(f.eval(&tt), Some(true));
        assert_eq!(f.eval(&tf), Some(false));
        assert_eq!(f.eval(&ft), Some(true));
    }

    #[test]
    fn from_faceted_bool_matches_projection() {
        // ⟨k0 ? true : ⟨k1 ? false : true⟩⟩
        let v = Faceted::split(
            k(0),
            Faceted::leaf(true),
            Faceted::split(k(1), Faceted::leaf(false), Faceted::leaf(true)),
        );
        let f = Formula::from_faceted_bool(&v);
        for bits in 0..4u32 {
            let view = View::from_labels(
                (0..2)
                    .filter(|i| bits & (1 << i) != 0)
                    .map(Label::from_index),
            );
            assert_eq!(f.holds_in(&view), *v.project(&view), "view {view:?}");
        }
    }

    #[test]
    fn assume_fixes_variable() {
        let f = Formula::var(k(0)).or(Formula::var(k(1)));
        assert_eq!(f.assume(k(0), true), Formula::constant(true));
        assert_eq!(f.assume(k(0), false), Formula::var(k(1)));
    }

    #[test]
    fn vars_collects() {
        let f = Formula::var(k(2)).and(Formula::var(k(0)).not());
        let vs: Vec<Label> = f.vars().into_iter().collect();
        assert_eq!(vs, vec![k(0), k(2)]);
    }

    #[test]
    fn display_is_readable() {
        let f = Formula::var(k(0)).and(Formula::var(k(1)).not());
        assert_eq!(f.to_string(), "(k0 ∧ ¬k1)");
    }
}
