//! Conjunctive normal form and the Tseitin transformation.

use faceted::Label;

use crate::assignment::Assignment;
use crate::formula::Formula;

/// A literal: a variable index with polarity. Variables `0..n_orig`
/// are original labels; variables `≥ n_orig` are Tseitin auxiliaries.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct Lit {
    /// Variable index in the CNF's variable space.
    pub var: usize,
    /// `true` for the positive literal.
    pub positive: bool,
}

impl Lit {
    /// Builds a literal.
    #[must_use]
    pub fn new(var: usize, positive: bool) -> Lit {
        Lit { var, positive }
    }

    /// The complementary literal.
    #[must_use]
    pub fn negate(self) -> Lit {
        Lit {
            var: self.var,
            positive: !self.positive,
        }
    }
}

/// A CNF instance: clauses over original + auxiliary variables.
#[derive(Clone, Debug, Default)]
pub struct Cnf {
    /// The original labels, in variable order (`var i` ↔ `labels[i]`).
    pub labels: Vec<Label>,
    /// Total number of variables (originals first, then auxiliaries).
    pub n_vars: usize,
    /// The clauses; each clause is a disjunction of literals.
    pub clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// Tseitin-transforms `formula` into an equisatisfiable CNF whose
    /// first variables are exactly the formula's labels (in label
    /// order), so solutions restrict directly to label assignments.
    #[must_use]
    pub fn from_formula(formula: &Formula) -> Cnf {
        let labels: Vec<Label> = formula.vars().into_iter().collect();
        let mut cnf = Cnf {
            n_vars: labels.len(),
            labels,
            clauses: Vec::new(),
        };
        let root = cnf.encode(formula);
        match root {
            Enc::Const(true) => {}
            Enc::Const(false) => cnf.clauses.push(vec![]), // unsatisfiable
            Enc::Lit(l) => cnf.clauses.push(vec![l]),
        }
        cnf
    }

    fn fresh(&mut self) -> usize {
        let v = self.n_vars;
        self.n_vars += 1;
        v
    }

    fn var_of(&self, label: Label) -> usize {
        self.labels
            .iter()
            .position(|l| *l == label)
            .expect("label collected by vars()")
    }

    fn encode(&mut self, f: &Formula) -> Enc {
        match f {
            Formula::Const(b) => Enc::Const(*b),
            Formula::Var(l) => Enc::Lit(Lit::new(self.var_of(*l), true)),
            Formula::Not(g) => match self.encode(g) {
                Enc::Const(b) => Enc::Const(!b),
                Enc::Lit(l) => Enc::Lit(l.negate()),
            },
            Formula::And(fs) => {
                let mut lits = Vec::new();
                for g in fs {
                    match self.encode(g) {
                        Enc::Const(false) => return Enc::Const(false),
                        Enc::Const(true) => {}
                        Enc::Lit(l) => lits.push(l),
                    }
                }
                match lits.len() {
                    0 => Enc::Const(true),
                    1 => Enc::Lit(lits[0]),
                    _ => {
                        // y ↔ l1 ∧ ... ∧ ln
                        let y = Lit::new(self.fresh(), true);
                        for &l in &lits {
                            self.clauses.push(vec![y.negate(), l]);
                        }
                        let mut big: Vec<Lit> = lits.iter().map(|l| l.negate()).collect();
                        big.push(y);
                        self.clauses.push(big);
                        Enc::Lit(y)
                    }
                }
            }
            Formula::Or(fs) => {
                let mut lits = Vec::new();
                for g in fs {
                    match self.encode(g) {
                        Enc::Const(true) => return Enc::Const(true),
                        Enc::Const(false) => {}
                        Enc::Lit(l) => lits.push(l),
                    }
                }
                match lits.len() {
                    0 => Enc::Const(false),
                    1 => Enc::Lit(lits[0]),
                    _ => {
                        // y ↔ l1 ∨ ... ∨ ln
                        let y = Lit::new(self.fresh(), true);
                        for &l in &lits {
                            self.clauses.push(vec![y, l.negate()]);
                        }
                        let mut big = lits;
                        big.push(y.negate());
                        self.clauses.push(big);
                        Enc::Lit(y)
                    }
                }
            }
        }
    }

    /// Restricts a full CNF model (over all variables) to the original
    /// labels.
    #[must_use]
    pub fn model_to_assignment(&self, model: &[bool]) -> Assignment {
        self.labels
            .iter()
            .enumerate()
            .map(|(i, l)| (*l, model[i]))
            .collect()
    }
}

enum Enc {
    Const(bool),
    Lit(Lit),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(i: u32) -> Label {
        Label::from_index(i)
    }

    #[test]
    fn constants_produce_trivial_cnfs() {
        let t = Cnf::from_formula(&Formula::constant(true));
        assert!(t.clauses.is_empty());
        let f = Cnf::from_formula(&Formula::constant(false));
        assert!(f.clauses.iter().any(Vec::is_empty));
    }

    #[test]
    fn single_var_is_a_unit_clause() {
        let cnf = Cnf::from_formula(&Formula::var(k(0)));
        assert_eq!(cnf.n_vars, 1);
        assert_eq!(cnf.clauses, vec![vec![Lit::new(0, true)]]);
    }

    #[test]
    fn tseitin_preserves_models() {
        // (k0 ∨ ¬k1) ∧ (k1 ∨ k2): check all 8 label assignments agree
        // with CNF satisfiability-under-fixed-labels.
        let f = Formula::var(k(0))
            .or(Formula::var(k(1)).not())
            .and(Formula::var(k(1)).or(Formula::var(k(2))));
        let cnf = Cnf::from_formula(&f);
        for bits in 0..8u32 {
            let a: Assignment = (0..3).map(|i| (k(i), bits & (1 << i) != 0)).collect();
            let expected = f.eval(&a) == Some(true);
            // Brute-force the auxiliaries.
            let n_aux = cnf.n_vars - cnf.labels.len();
            let mut sat = false;
            for aux in 0..(1u32 << n_aux) {
                let mut model = vec![false; cnf.n_vars];
                for (i, l) in cnf.labels.iter().enumerate() {
                    model[i] = a.get(*l).unwrap();
                }
                for j in 0..n_aux {
                    model[cnf.labels.len() + j] = aux & (1 << j) != 0;
                }
                if cnf
                    .clauses
                    .iter()
                    .all(|c| c.iter().any(|l| model[l.var] == l.positive))
                {
                    sat = true;
                    break;
                }
            }
            assert_eq!(sat, expected, "assignment {a}");
        }
    }
}
