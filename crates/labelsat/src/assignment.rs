//! Label assignments: candidate solutions of the policy constraints.

use std::collections::BTreeMap;
use std::fmt;

use faceted::{Label, View};

/// A (possibly partial) mapping from labels to Booleans.
///
/// A *total* satisfying assignment chosen at a computation sink plays
/// the role of the paper's "pick pc such that ..." in `F-PRINT`: it
/// determines which facet of every value the observer receives.
///
/// # Examples
///
/// ```
/// use faceted::Label;
/// use labelsat::Assignment;
///
/// let k = Label::from_index(0);
/// let a = Assignment::new().with(k, true);
/// assert_eq!(a.get(k), Some(true));
/// assert!(a.to_view().sees(k));
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Assignment(BTreeMap<Label, bool>);

impl Assignment {
    /// The empty assignment.
    #[must_use]
    pub fn new() -> Assignment {
        Assignment::default()
    }

    /// Builds an assignment mapping every given label to `false` —
    /// the always-valid fallback the paper guarantees (§2.3).
    pub fn all_false<I: IntoIterator<Item = Label>>(labels: I) -> Assignment {
        Assignment(labels.into_iter().map(|l| (l, false)).collect())
    }

    /// Functional update.
    #[must_use]
    pub fn with(&self, label: Label, value: bool) -> Assignment {
        let mut m = self.0.clone();
        m.insert(label, value);
        Assignment(m)
    }

    /// In-place update.
    pub fn set(&mut self, label: Label, value: bool) {
        self.0.insert(label, value);
    }

    /// Removes a binding (backtracking).
    pub fn unset(&mut self, label: Label) {
        self.0.remove(&label);
    }

    /// The value assigned to `label`, if any.
    #[must_use]
    pub fn get(&self, label: Label) -> Option<bool> {
        self.0.get(&label).copied()
    }

    /// Whether `label` is assigned.
    #[must_use]
    pub fn is_assigned(&self, label: Label) -> bool {
        self.0.contains_key(&label)
    }

    /// Number of assigned labels.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether no label is assigned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Number of labels assigned `true` (the quantity the solver
    /// maximizes so values are shown whenever policies allow).
    #[must_use]
    pub fn count_true(&self) -> usize {
        self.0.values().filter(|v| **v).count()
    }

    /// Iterates over `(label, value)` pairs in label order.
    pub fn iter(&self) -> impl Iterator<Item = (Label, bool)> + '_ {
        self.0.iter().map(|(l, v)| (*l, *v))
    }

    /// Converts to a [`View`]: exactly the labels assigned `true`.
    #[must_use]
    pub fn to_view(&self) -> View {
        View::from_labels(self.0.iter().filter(|(_, v)| **v).map(|(l, _)| *l))
    }
}

impl FromIterator<(Label, bool)> for Assignment {
    fn from_iter<I: IntoIterator<Item = (Label, bool)>>(iter: I) -> Assignment {
        Assignment(iter.into_iter().collect())
    }
}

impl fmt::Display for Assignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (l, v)) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{l}={v}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(i: u32) -> Label {
        Label::from_index(i)
    }

    #[test]
    fn all_false_fallback() {
        let a = Assignment::all_false([k(0), k(1)]);
        assert_eq!(a.get(k(0)), Some(false));
        assert_eq!(a.count_true(), 0);
        assert!(a.to_view().is_empty());
    }

    #[test]
    fn set_unset_roundtrip() {
        let mut a = Assignment::new();
        a.set(k(0), true);
        assert!(a.is_assigned(k(0)));
        a.unset(k(0));
        assert!(!a.is_assigned(k(0)));
        assert!(a.is_empty());
    }

    #[test]
    fn to_view_keeps_only_true() {
        let a = Assignment::new().with(k(0), true).with(k(1), false);
        let v = a.to_view();
        assert!(v.sees(k(0)));
        assert!(!v.sees(k(1)));
        assert_eq!(a.count_true(), 1);
    }

    #[test]
    fn display_lists_bindings() {
        let a = Assignment::new().with(k(0), true);
        assert_eq!(a.to_string(), "{k0=true}");
    }
}
