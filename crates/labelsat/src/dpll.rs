//! A DPLL SAT solver with unit propagation and true-first branching.
//!
//! The paper resolves mutually-dependent policies with "the SAT subset
//! of the Z3 SMT solver" over "an ordering over Boolean label
//! assignments" (§5.1.2). This solver reproduces that role: it
//! branches on the original label variables first, trying `true`
//! before `false`, so the first model found is the *lexicographically
//! greatest* label assignment — Jacqueline "always attempts to show
//! values unless policies require otherwise" (§2.3).

use crate::cnf::{Cnf, Lit};

/// Outcome of a DPLL run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SatResult {
    /// A model, indexed by variable.
    Sat(Vec<bool>),
    /// No model exists.
    Unsat,
}

/// Solves a CNF instance.
///
/// Branching order: variable 0, 1, 2, … with `true` tried first.
/// Because [`Cnf::from_formula`] places original labels before Tseitin
/// auxiliaries, the first model maximizes labels lexicographically.
#[must_use]
pub fn solve(cnf: &Cnf) -> SatResult {
    let mut assign: Vec<Option<bool>> = vec![None; cnf.n_vars];
    if dpll(cnf, &mut assign) {
        SatResult::Sat(assign.into_iter().map(|v| v.unwrap_or(false)).collect())
    } else {
        SatResult::Unsat
    }
}

fn dpll(cnf: &Cnf, assign: &mut Vec<Option<bool>>) -> bool {
    // Unit propagation to fixpoint; record the trail for backtracking.
    let mut trail: Vec<usize> = Vec::new();
    loop {
        match propagate_once(cnf, assign) {
            Propagation::Conflict => {
                for v in trail {
                    assign[v] = None;
                }
                return false;
            }
            Propagation::Assigned(v) => trail.push(v),
            Propagation::Fixpoint => break,
        }
    }

    // Pick the lowest unassigned variable (label order, true first).
    let var = (0..cnf.n_vars).find(|&v| assign[v].is_none());
    let Some(var) = var else {
        // Full assignment with no conflict: a model.
        return true;
    };
    for value in [true, false] {
        assign[var] = Some(value);
        if dpll(cnf, assign) {
            return true;
        }
        assign[var] = None;
    }
    for v in trail {
        assign[v] = None;
    }
    false
}

enum Propagation {
    /// A unit clause forced this variable.
    Assigned(usize),
    /// An empty (all-false) clause was found.
    Conflict,
    /// Nothing left to propagate.
    Fixpoint,
}

fn propagate_once(cnf: &Cnf, assign: &mut [Option<bool>]) -> Propagation {
    for clause in &cnf.clauses {
        let mut unassigned: Option<Lit> = None;
        let mut satisfied = false;
        let mut n_unassigned = 0;
        for &lit in clause {
            match assign[lit.var] {
                Some(v) if v == lit.positive => {
                    satisfied = true;
                    break;
                }
                Some(_) => {}
                None => {
                    n_unassigned += 1;
                    unassigned = Some(lit);
                }
            }
        }
        if satisfied {
            continue;
        }
        match n_unassigned {
            0 => return Propagation::Conflict,
            1 => {
                let lit = unassigned.expect("counted one unassigned literal");
                assign[lit.var] = Some(lit.positive);
                return Propagation::Assigned(lit.var);
            }
            _ => {}
        }
    }
    Propagation::Fixpoint
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::Formula;
    use faceted::Label;

    fn k(i: u32) -> Label {
        Label::from_index(i)
    }

    fn solve_formula(f: &Formula) -> SatResult {
        solve(&Cnf::from_formula(f))
    }

    #[test]
    fn trivial_sat_and_unsat() {
        assert!(matches!(
            solve_formula(&Formula::constant(true)),
            SatResult::Sat(_)
        ));
        assert_eq!(solve_formula(&Formula::constant(false)), SatResult::Unsat);
    }

    #[test]
    fn contradiction_is_unsat() {
        let f = Formula::var(k(0)).and(Formula::var(k(0)).not());
        assert_eq!(solve_formula(&f), SatResult::Unsat);
    }

    #[test]
    fn prefers_true() {
        // k0 ∨ k1 is satisfied by k0=true,k1=true first.
        let f = Formula::var(k(0)).or(Formula::var(k(1)));
        let cnf = Cnf::from_formula(&f);
        match solve(&cnf) {
            SatResult::Sat(m) => {
                assert!(
                    m[0] && m[1],
                    "true-first branching should keep both labels true"
                );
            }
            SatResult::Unsat => panic!("satisfiable"),
        }
    }

    #[test]
    fn unit_propagation_forces_chain() {
        // k0 ∧ (k0 ⇒ k1) ∧ (k1 ⇒ ¬k2)
        let f = Formula::var(k(0))
            .and(Formula::var(k(0)).implies(Formula::var(k(1))))
            .and(Formula::var(k(1)).implies(Formula::var(k(2)).not()));
        let cnf = Cnf::from_formula(&f);
        match solve(&cnf) {
            SatResult::Sat(m) => {
                let a = cnf.model_to_assignment(&m);
                assert_eq!(a.get(k(0)), Some(true));
                assert_eq!(a.get(k(1)), Some(true));
                assert_eq!(a.get(k(2)), Some(false));
            }
            SatResult::Unsat => panic!("satisfiable"),
        }
    }

    #[test]
    fn pigeonhole_two_holes_three_vars_unsat() {
        // (a ∨ b) ∧ (¬a ∨ ¬b) ∧ (a ∨ ¬b) ∧ (¬a ∨ b) is unsat.
        let a = Formula::var(k(0));
        let b = Formula::var(k(1));
        let f = a
            .clone()
            .or(b.clone())
            .and(a.clone().not().or(b.clone().not()))
            .and(a.clone().or(b.clone().not()))
            .and(a.not().or(b));
        assert_eq!(solve_formula(&f), SatResult::Unsat);
    }
}
