//! Property tests: the DPLL path agrees with brute force, and policy
//! resolution laws.

use faceted::{Faceted, Label, View};
use labelsat::{brute_force_max_true, max_true_assignment, Formula, PolicySet};
use proptest::prelude::*;

const LABELS: u32 = 4;

fn arb_label() -> impl Strategy<Value = Label> {
    (0..LABELS).prop_map(Label::from_index)
}

fn arb_formula(depth: u32) -> impl Strategy<Value = Formula> {
    let leaf = prop_oneof![
        any::<bool>().prop_map(Formula::constant),
        arb_label().prop_map(Formula::var),
    ];
    leaf.prop_recursive(depth, 64, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(Formula::not),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            (inner.clone(), inner).prop_map(|(a, b)| a.implies(b)),
        ]
    })
}

fn arb_faceted_bool(depth: u32) -> impl Strategy<Value = Faceted<bool>> {
    let leaf = any::<bool>().prop_map(Faceted::leaf);
    leaf.prop_recursive(depth, 32, 2, |inner| {
        (arb_label(), inner.clone(), inner).prop_map(|(l, h, w)| Faceted::split(l, h, w))
    })
}

proptest! {
    /// The DPLL solver and exhaustive enumeration find the same
    /// maximal-true assignment (or both report UNSAT).
    #[test]
    fn dpll_matches_brute_force(f in arb_formula(4)) {
        prop_assert_eq!(max_true_assignment(&f), brute_force_max_true(&f));
    }

    /// A found assignment actually satisfies the formula.
    #[test]
    fn solutions_satisfy(f in arb_formula(4)) {
        if let Some(a) = max_true_assignment(&f) {
            prop_assert_eq!(f.eval(&a), Some(true));
        }
    }

    /// from_faceted_bool is the view semantics of the faceted Boolean.
    #[test]
    fn formula_of_faceted_bool_matches(v in arb_faceted_bool(4)) {
        let f = Formula::from_faceted_bool(&v);
        for bits in 0..(1u32 << LABELS) {
            let view = View::from_labels(
                (0..LABELS).filter(|i| bits & (1 << i) != 0).map(Label::from_index),
            );
            prop_assert_eq!(f.holds_in(&view), *v.project(&view));
        }
    }

    /// Policy resolution always succeeds on guarded constraints and
    /// satisfies every policy: for each label shown, its policy holds
    /// under the chosen assignment.
    #[test]
    fn resolve_satisfies_policies(
        policies in proptest::collection::vec((arb_label(), arb_formula(3)), 0..4)
    ) {
        let mut ps = PolicySet::new();
        for (l, f) in &policies {
            ps.restrict(*l, f.clone());
        }
        let seed: Vec<Label> = (0..LABELS).map(Label::from_index).collect();
        let a = ps.resolve(seed.clone()).expect("guarded constraints are satisfiable");
        for l in seed {
            if a.get(l) == Some(true) {
                prop_assert_eq!(
                    ps.policy(l).eval(&a),
                    Some(true),
                    "label {} shown but its policy fails", l
                );
            }
        }
    }

    /// The all-false assignment always satisfies the constraint set
    /// (the paper's fallback guarantee).
    #[test]
    fn all_false_is_always_consistent(
        policies in proptest::collection::vec((arb_label(), arb_formula(3)), 0..4)
    ) {
        let mut ps = PolicySet::new();
        for (l, f) in &policies {
            ps.restrict(*l, f.clone());
        }
        let labels: Vec<Label> = (0..LABELS).map(Label::from_index).collect();
        let constraint = ps.constraint(labels.clone());
        let all_false = labelsat::Assignment::all_false(labels);
        prop_assert_eq!(constraint.eval(&all_false), Some(true));
    }
}
