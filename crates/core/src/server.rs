//! A socket-facing HTTP/1.1 server over the faceted executor: a
//! blocking `TcpListener`, a fixed connection worker pool with
//! keep-alive, and a clean-shutdown signal — no external dependencies.
//!
//! The paper's evaluation (§6) serves its case-study applications
//! through a real web stack; this module is that front-end for the
//! Rust reproduction. The flow per connection:
//!
//! 1. the **accept thread** hands sockets to a fixed pool of
//!    connection workers (no thread-per-connection explosion);
//! 2. a worker parses one request at a time off the socket
//!    ([`wire::read_request`](crate::wire::read_request)), answers
//!    malformed input with the wire layer's status, and resolves the
//!    viewer through the [`Authenticator`] — an invalid session token
//!    is a `403` before any controller runs;
//! 3. the authenticated request is **submitted to the executor's job
//!    queue** ([`ExecutorService`]), which dispatches it under the
//!    route's footprint locks on the shared [`App`] and reports how
//!    long it queued vs. executed (`X-Queue-Us` / `X-Service-Us`
//!    response headers — the open-loop load harness reads these);
//! 4. the response is serialized back; the connection stays open for
//!    the next request unless the peer (or HTTP/1.0) asked to close.
//!
//! [`Server::shutdown`] stops accepting, unblocks parked readers by
//! shutting their sockets down, drains the executor queue, and joins
//! every thread — tests and the bench harness start and stop servers
//! dozens of times per process.

use std::collections::{HashMap, VecDeque};
use std::io::{BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use crate::app::App;
use crate::auth::{AuthOutcome, Authenticator};
use crate::executor::ExecutorService;
use crate::http::{Request, Response, Router};
use crate::wire::{self, WireError, WireRequest};

/// Everything one served application needs: the shared [`App`], its
/// [`Router`], and the [`Authenticator`] holding its sessions.
///
/// The pieces are `Arc`s so the login route (which must mint tokens)
/// can capture the same authenticator the server resolves them with.
#[derive(Clone)]
pub struct Site {
    /// The shared application.
    pub app: Arc<App>,
    /// The routing table.
    pub router: Arc<Router>,
    /// The session store requests authenticate against.
    pub auth: Arc<Authenticator>,
}

impl Site {
    /// Wraps an app and router with a fresh authenticator.
    #[must_use]
    pub fn new(app: App, router: Router) -> Site {
        Site {
            app: Arc::new(app),
            router: Arc::new(router),
            auth: Arc::new(Authenticator::new()),
        }
    }
}

/// Server tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Connection-handler pool size (how many sockets are read
    /// concurrently).
    pub conn_threads: usize,
    /// Executor worker-pool size (how many requests execute
    /// concurrently).
    pub executor_threads: usize,
    /// Socket read timeout. Doubles as the **keep-alive idle
    /// window**: a connection with no next request inside this
    /// window is closed, so silent peers release their connection
    /// worker instead of pinning the fixed pool.
    pub read_timeout: Duration,
    /// Socket **write** timeout: a peer that stops draining its
    /// receive window (a stalled or malicious reader) blocks the
    /// response `write_all` at most this long before the connection
    /// is dropped — without it, one dead reader pins a connection
    /// worker forever.
    pub write_timeout: Duration,
    /// The executor job-queue bound (see
    /// [`ExecutorService::start_bounded`]): submissions past this
    /// depth are shed with `503 Retry-After: 1` instead of queueing.
    pub queue_depth: usize,
    /// Automatic checkpoint policy (see
    /// [`crate::CheckpointPolicy`]). The default is disabled: no
    /// scheduled checkpoints unless the operator opts in. Only
    /// takes effect once `App::enable_persistence` has run.
    pub checkpoint: crate::CheckpointPolicy,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            conn_threads: 4,
            executor_threads: 4,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            queue_depth: crate::executor::DEFAULT_QUEUE_DEPTH,
            checkpoint: crate::CheckpointPolicy::default(),
        }
    }
}

struct ServerShared {
    site: Site,
    service: ExecutorService,
    config: ServerConfig,
    conns: Mutex<VecDeque<TcpStream>>,
    conn_ready: Condvar,
    shutdown: AtomicBool,
    /// Clones of every open connection, so shutdown can unblock
    /// parked readers immediately instead of waiting out a timeout.
    open: Mutex<HashMap<u64, TcpStream>>,
    next_conn: AtomicU64,
}

/// A running HTTP server. Dropping the handle **without** calling
/// [`Server::shutdown`] leaves the threads serving until process
/// exit (what the `serve` example's `--forever` mode wants).
pub struct Server {
    addr: SocketAddr,
    shared: Arc<ServerShared>,
    accept: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port `0` for an ephemeral port — the bound
    /// address is [`Server::addr`]) and starts serving `site`.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from `bind`.
    pub fn bind(
        site: Site,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let service = ExecutorService::start_scheduled(
            Arc::clone(&site.app),
            Arc::clone(&site.router),
            config.executor_threads,
            config.queue_depth,
            config.checkpoint,
        );
        let shared = Arc::new(ServerShared {
            site,
            service,
            config,
            conns: Mutex::new(VecDeque::new()),
            conn_ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
            open: Mutex::new(HashMap::new()),
            next_conn: AtomicU64::new(0),
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("http-accept".into())
                .spawn(move || Server::accept_loop(&listener, &shared))
                .expect("spawn accept thread")
        };
        let workers = (0..config.conn_threads.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("http-conn-{i}"))
                    .spawn(move || Server::conn_loop(&shared))
                    .expect("spawn connection worker")
            })
            .collect();
        Ok(Server {
            addr,
            shared,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (resolves ephemeral ports).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The site being served (tests reach through this to compare
    /// against in-process dispatch).
    #[must_use]
    pub fn site(&self) -> &Site {
        &self.shared.site
    }

    fn accept_loop(listener: &TcpListener, shared: &ServerShared) {
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    if shared.shutdown.load(Ordering::Acquire) {
                        break; // the shutdown wake-up connection
                    }
                    let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
                    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
                    let _ = stream.set_nodelay(true);
                    shared.conns.lock().expect("conn queue").push_back(stream);
                    shared.conn_ready.notify_one();
                }
                Err(_) => {
                    if shared.shutdown.load(Ordering::Acquire) {
                        break;
                    }
                }
            }
        }
    }

    fn conn_loop(shared: &ServerShared) {
        loop {
            let stream = {
                let mut queue = shared.conns.lock().expect("conn queue");
                loop {
                    // Shutdown wins over queued work: sockets still in
                    // the queue are closed by `Server::shutdown`'s
                    // drain, so serving them here would only stretch
                    // the shutdown by read_timeout each.
                    if shared.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    if let Some(s) = queue.pop_front() {
                        break s;
                    }
                    queue = shared.conn_ready.wait(queue).expect("conn queue");
                }
            };
            let id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
            if let Ok(clone) = stream.try_clone() {
                shared.open.lock().expect("open registry").insert(id, clone);
            }
            Server::handle_connection(shared, stream);
            shared.open.lock().expect("open registry").remove(&id);
        }
    }

    /// Serves one connection until close/EOF/shutdown — the
    /// keep-alive loop.
    fn handle_connection(shared: &ServerShared, stream: TcpStream) {
        let mut writer = match stream.try_clone() {
            Ok(w) => w,
            Err(_) => return,
        };
        let mut reader = BufReader::new(stream);
        loop {
            let wire_request = match wire::read_request(&mut reader) {
                Ok(r) => r,
                Err(WireError::Closed) => return,
                Err(WireError::Idle) => {
                    // The keep-alive idle window (= read_timeout) has
                    // elapsed with no next request: close. Waiting
                    // longer would let a handful of silent peers pin
                    // the entire fixed connection-worker pool.
                    let _ = writer.shutdown(Shutdown::Both);
                    return;
                }
                Err(e @ WireError::Bad { .. }) => {
                    if let Some(response) = e.response() {
                        let _ = writer.write_all(&response.serialize(false, false));
                    }
                    return; // framing is gone; hang up
                }
                Err(WireError::Io(_)) => return,
            };
            let keep_alive = wire_request.keep_alive && !shared.shutdown.load(Ordering::Acquire);
            let head = wire_request.method == "HEAD";
            let response = Server::respond(shared, wire_request);
            if writer
                .write_all(&response.serialize(keep_alive, head))
                .is_err()
                || writer.flush().is_err()
            {
                return;
            }
            if !keep_alive {
                let _ = writer.shutdown(Shutdown::Both);
                return;
            }
        }
    }

    /// Authenticates and dispatches one parsed request.
    fn respond(shared: &ServerShared, wire_request: WireRequest) -> Response {
        let viewer = match shared.site.auth.authenticate(&wire_request) {
            AuthOutcome::Anonymous => crate::Viewer::Anonymous,
            AuthOutcome::Viewer(v) => v,
            AuthOutcome::BadToken => {
                return Response::forbidden("invalid or expired session token");
            }
        };
        let router = &shared.site.router;
        // Mutating routes only answer POST: a crawler GETting
        // `papers/submit` must not write the database.
        if wire_request.method != "POST"
            && router.read_controller(&wire_request.path).is_none()
            && router.has_write_route(&wire_request.path)
        {
            // RFC 9110 §15.5.6: a 405 must name the methods the
            // target does support.
            return Response {
                status: 405,
                body: format!("{} requires POST", wire_request.path),
                headers: Vec::new(),
            }
            .with_header("Allow", "POST");
        }
        let request = Request {
            path: wire_request.path,
            viewer,
            params: wire_request.params,
        };
        let served = shared.service.serve(request);
        // Timing and cache-status headers are appended *after* the
        // executor round-trip, so a render-cache hit still reports its
        // own fresh queue/service numbers instead of replaying the
        // ones stored with the page.
        served
            .response
            .with_header("X-Queue-Us", &served.queued.as_micros().to_string())
            .with_header("X-Service-Us", &served.service.as_micros().to_string())
            .with_header("X-Render-Cache", served.render_cache.as_str())
    }

    /// Stops the server: no new connections, parked readers unblocked,
    /// in-flight requests finished, every thread joined.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        // Unblock the accept call …
        let _ = TcpStream::connect(self.addr);
        // … close accepted-but-unserved sockets still in the queue
        // (workers refuse to pick them up once the flag is set) …
        for stream in self.shared.conns.lock().expect("conn queue").drain(..) {
            let _ = stream.shutdown(Shutdown::Both);
        }
        // … unblock the in-flight connection readers …
        for (_, stream) in self.shared.open.lock().expect("open registry").drain() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        // … and the workers parked on the connection queue.
        self.shared.conn_ready.notify_all();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        self.shared.service.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{simple_policy, ModelDef, Viewer};
    use crate::wire::read_response;
    use microdb::{ColumnDef, ColumnType, Value};
    use std::io::BufRead;

    fn note_site() -> Site {
        let mut app = App::new();
        app.register_model(
            ModelDef::public(
                "note",
                vec![
                    ColumnDef::new("owner", ColumnType::Int),
                    ColumnDef::new("text", ColumnType::Str),
                ],
            )
            .with_policy(simple_policy(
                "note_owner",
                vec![1],
                |_| vec![Value::from("[private]")],
                |args| args.viewer.user_jid() == args.row[0].as_int(),
            )),
        )
        .unwrap();
        for i in 0..3 {
            app.create("note", vec![Value::Int(i), Value::from(format!("n{i}"))])
                .unwrap();
        }
        let mut router = Router::new();
        router.route_read_tables("notes", &["note"], |app: &App, req| {
            let rows = app.all("note").unwrap_or_default();
            let mut session = crate::Session::new(req.viewer.clone());
            let body: String = session
                .view_rows(app, &rows)
                .into_iter()
                .map(|r| format!("{}\n", r[1].as_str().unwrap_or("?")))
                .collect();
            Response::ok(body)
        });
        router.route_tables("note/add", &[], &["note"], |app: &App, req| {
            let owner = req.viewer.user_jid().unwrap_or(-1);
            let text = req.params.get("text").map_or("added", String::as_str);
            match app.create("note", vec![Value::Int(owner), Value::from(text)]) {
                Ok(jid) => Response::ok(jid.to_string()),
                Err(e) => Response::error(&e.to_string()),
            }
        });
        Site::new(app, router)
    }

    fn test_server(site: Site) -> Server {
        Server::bind(
            site,
            "127.0.0.1:0",
            ServerConfig {
                conn_threads: 2,
                executor_threads: 2,
                read_timeout: Duration::from_millis(200),
                ..ServerConfig::default()
            },
        )
        .expect("bind ephemeral port")
    }

    fn send(addr: SocketAddr, raw: &str) -> crate::wire::WireResponse {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(raw.as_bytes()).unwrap();
        read_response(&mut BufReader::new(stream)).unwrap()
    }

    #[test]
    fn serves_a_page_over_a_real_socket() {
        let server = test_server(note_site());
        let response = send(
            server.addr(),
            "GET /notes HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        );
        assert_eq!(response.status, 200);
        assert_eq!(response.text(), "[private]\n[private]\n[private]\n");
        assert!(response.header("x-queue-us").is_some());
        assert!(response.header("x-service-us").is_some());
        server.shutdown();
    }

    #[test]
    fn session_token_binds_the_viewer() {
        let server = test_server(note_site());
        let token = server.site().auth.login(Viewer::User(1));
        let response = send(
            server.addr(),
            &format!(
                "GET /notes HTTP/1.1\r\nHost: t\r\nCookie: session={token}\r\n\
                 Connection: close\r\n\r\n"
            ),
        );
        assert!(response.text().contains("n1"), "{}", response.text());
        assert!(response.text().contains("[private]"));
        let forged = send(
            server.addr(),
            "GET /notes HTTP/1.1\r\nHost: t\r\nCookie: session=forged\r\n\
             Connection: close\r\n\r\n",
        );
        assert_eq!(forged.status, 403, "bad tokens are rejected, not demoted");
        server.shutdown();
    }

    #[test]
    fn keep_alive_serves_many_requests_on_one_connection() {
        let server = test_server(note_site());
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        for _ in 0..5 {
            stream
                .write_all(b"GET /notes HTTP/1.1\r\nHost: t\r\n\r\n")
                .unwrap();
            let response = read_response(&mut reader).unwrap();
            assert_eq!(response.status, 200);
            assert_eq!(response.header("connection"), Some("keep-alive"));
        }
        // An explicit close is honored: response says close, then EOF.
        stream
            .write_all(b"GET /notes HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
            .unwrap();
        let last = read_response(&mut reader).unwrap();
        assert_eq!(last.header("connection"), Some("close"));
        let mut rest = Vec::new();
        let trailing = std::io::Read::read_to_end(&mut reader, &mut rest);
        assert!(matches!(trailing, Ok(0)), "server closed the socket");
        server.shutdown();
    }

    #[test]
    fn writes_require_post_and_land_in_the_shared_app() {
        let server = test_server(note_site());
        let token = server.site().auth.login(Viewer::User(2));
        let refused = send(
            server.addr(),
            &format!(
                "GET /note/add HTTP/1.1\r\nHost: t\r\nCookie: session={token}\r\n\
                 Connection: close\r\n\r\n"
            ),
        );
        assert_eq!(refused.status, 405);
        assert_eq!(
            refused.header("allow"),
            Some("POST"),
            "RFC 9110: 405 must name the allowed methods"
        );
        let body = "text=from+the+wire";
        let accepted = send(
            server.addr(),
            &format!(
                "POST /note/add HTTP/1.1\r\nHost: t\r\nCookie: session={token}\r\n\
                 Content-Type: application/x-www-form-urlencoded\r\n\
                 Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
                body.len()
            ),
        );
        assert_eq!(accepted.status, 200);
        let page = send(
            server.addr(),
            &format!(
                "GET /notes HTTP/1.1\r\nHost: t\r\nCookie: session={token}\r\n\
                 Connection: close\r\n\r\n"
            ),
        );
        assert!(page.text().contains("from the wire"), "{}", page.text());
        server.shutdown();
    }

    #[test]
    fn malformed_requests_get_wire_statuses() {
        let server = test_server(note_site());
        let no_host = send(server.addr(), "GET /notes HTTP/1.1\r\n\r\n");
        assert_eq!(no_host.status, 400);
        let bad_method = send(server.addr(), "BREW / HTTP/1.1\r\nHost: t\r\n\r\n");
        assert_eq!(bad_method.status, 405);
        assert_eq!(
            bad_method.header("allow"),
            Some("GET, HEAD, POST"),
            "the wire-level 405 also carries Allow"
        );
        let unknown = send(
            server.addr(),
            "GET /zzz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        );
        assert_eq!(unknown.status, 404);
        server.shutdown();
    }

    #[test]
    fn head_is_served_without_a_body() {
        // HEAD frames the body (real Content-Length) without sending
        // it, so the generic response parser does not apply — read
        // the raw bytes to EOF instead.
        let server = test_server(note_site());
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .write_all(b"HEAD /notes HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
            .unwrap();
        let mut raw = Vec::new();
        std::io::Read::read_to_end(&mut stream, &mut raw).unwrap();
        let text = String::from_utf8(raw).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n"), "no body bytes after headers");
        assert!(
            text.contains("Content-Length: 30\r\n"),
            "the body is framed as if it were sent: {text}"
        );
        server.shutdown();
    }

    #[test]
    fn idle_keepalive_connections_are_closed_after_the_window() {
        // A silent keep-alive peer must not pin a connection worker:
        // the server hangs up after read_timeout (200ms here).
        let server = test_server(note_site());
        let stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        let got = reader.read_line(&mut line);
        assert!(
            matches!(got, Ok(0)),
            "expected EOF from the idle-close, got {got:?} {line:?}"
        );
        // The worker is free again: a fresh connection is served.
        let response = send(
            server.addr(),
            "GET /notes HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        );
        assert_eq!(response.status, 200);
        server.shutdown();
    }

    #[test]
    fn shutdown_closes_queued_unserved_connections_fast() {
        // More idle connections than workers: the surplus sits in the
        // conns queue. Shutdown must close them directly, not let a
        // worker serially wait out read_timeout for each.
        let server = Server::bind(
            note_site(),
            "127.0.0.1:0",
            ServerConfig {
                conn_threads: 1,
                executor_threads: 1,
                read_timeout: Duration::from_millis(500),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let parked: Vec<TcpStream> = (0..4)
            .map(|_| TcpStream::connect(server.addr()).unwrap())
            .collect();
        // Give the accept thread time to enqueue them all.
        std::thread::sleep(Duration::from_millis(100));
        let started = std::time::Instant::now();
        server.shutdown();
        assert!(
            started.elapsed() < Duration::from_millis(450),
            "shutdown must close queued sockets directly, took {:?}",
            started.elapsed()
        );
        drop(parked);
    }

    #[test]
    fn shutdown_is_clean_with_idle_keepalive_connections() {
        let server = test_server(note_site());
        // Park two idle keep-alive connections.
        let idle1 = TcpStream::connect(server.addr()).unwrap();
        let mut idle2 = TcpStream::connect(server.addr()).unwrap();
        idle2
            .write_all(b"GET /notes HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        let mut reader = BufReader::new(idle2.try_clone().unwrap());
        assert_eq!(read_response(&mut reader).unwrap().status, 200);
        let started = std::time::Instant::now();
        server.shutdown();
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "shutdown must not wait out idle connections"
        );
        // The parked connections were actively closed.
        let mut buffered = BufReader::new(idle1);
        let mut line = String::new();
        let got = buffered.read_line(&mut line);
        assert!(matches!(got, Ok(0) | Err(_)), "server closed idle conn");
    }
}

#[cfg(test)]
mod site_tests {
    use super::*;

    #[test]
    fn site_wraps_app_and_router() {
        let site = Site::new(App::new(), Router::new());
        assert_eq!(site.auth.live_sessions(), 0);
        assert!(site.router.paths().is_empty());
    }
}
