//! The Jacqueline application object: policy-agnostic object manager
//! plus the computation-sink machinery.

use std::collections::{BTreeMap, HashMap};
use std::sync::RwLock;

use faceted::{Faceted, FacetedList, Label, View};
use form::{FacetedObject, FormDb, FormResult, GuardedRow};
use labelsat::{max_true_assignment, Assignment, Formula};
use microdb::{Predicate, Row, SortOrder, Value};

use crate::model::{ModelDef, PolicyArgs, PolicyFn, Viewer};

/// A policy attached to a live label: the check plus the
/// creation-time row snapshot it closes over (§2.1.2: "with respect
/// to the value of event at the time a value is created and the state
/// of the system at the time of output"). The `model`/`policy_ix`
/// pair names where the check came from, so a checkpoint can persist
/// the binding and a restore can re-attach the (unserializable)
/// closure from the re-registered model.
#[derive(Clone)]
pub(crate) struct PolicyEntry {
    pub(crate) check: PolicyFn,
    pub(crate) row: Row,
    pub(crate) jid: i64,
    pub(crate) model: String,
    pub(crate) policy_ix: usize,
}

/// A Jacqueline application: registered models, the faceted database,
/// and the label→policy map.
///
/// The programmer's contract (§2): declare policies in the models,
/// access data only through this API, and the runtime guarantees
/// outputs comply with the policies.
///
/// # Concurrency
///
/// Mutating object operations ([`App::create`], [`App::save`],
/// [`App::update_fields`]) take `&self`: storage is locked per table
/// inside the database layer, and the label→policy bookkeeping sits
/// behind its own locks, so requests writing *different* tables run
/// fully in parallel. Request-level isolation (a reader never sees
/// half of a multi-statement write) is the
/// [`Executor`](crate::Executor)'s job via footprint locks. Only
/// structural setup ([`App::register_model`]) still needs `&mut self`.
pub struct App {
    /// The faceted database.
    pub db: FormDb,
    models: BTreeMap<String, ModelDef>,
    pub(crate) policies: RwLock<HashMap<Label, PolicyEntry>>,
    /// Labels allocated per object, in model-policy order — needed to
    /// rebuild facet structure on updates.
    object_labels: RwLock<HashMap<(String, i64), Vec<Label>>>,
    /// Request-level footprint locks, owned by the app so concurrent
    /// executor runs against the same app isolate against each other.
    pub(crate) request_locks: crate::executor::RequestLocks,
    /// The generation-validated cache of rendered pages, consulted by
    /// the executor under footprint locks (see
    /// [`rendercache`](crate::rendercache)).
    pub(crate) render_cache: crate::rendercache::RenderCache,
    /// The append-only metadata journal, when persistence is enabled
    /// (see [`App::enable_persistence`](crate::checkpoint)).
    pub(crate) journal: Option<std::sync::Arc<crate::checkpoint::MetaJournal>>,
    /// Orders concurrent `create`s' (label allocation, journal
    /// append) pairs so journal records stay in label-index order —
    /// taken only while the journal is attached.
    create_order: std::sync::Mutex<()>,
    /// `Some(reason)` while the app is in **read-only degraded mode**:
    /// a durable write failed (WAL or meta-journal append — disk full,
    /// I/O error), the in-memory mutation was rolled back, and the
    /// executor answers write routes `503 Retry-After` until a
    /// successful checkpoint re-establishes durability and clears the
    /// flag. Reads keep serving throughout — they are exactly as
    /// consistent as before the fault.
    degraded: RwLock<Option<String>>,
    /// The persistence directory [`App::enable_persistence`] attached
    /// its logs to — where scheduled checkpoints land.
    pub(crate) persist_dir: RwLock<Option<std::path::PathBuf>>,
    /// Bumped by every mutation of checkpointable app metadata (label
    /// allocation + policy binding + jid-cursor movement, i.e. every
    /// `create`/`bind_policy`). The incremental checkpointer keys the
    /// app-meta chunk on this: an unchanged epoch means the chunk can
    /// be carried over without re-exporting [`form::FormMeta`] or the
    /// bindings.
    pub(crate) meta_epoch: std::sync::atomic::AtomicU64,
    /// Whether checkpoints may reuse clean chunks from the previous
    /// checkpoint (the default) or must re-export everything (the
    /// `--no-incremental` ablation).
    incremental_checkpoints: std::sync::atomic::AtomicBool,
    /// What the last successful checkpoint wrote — the clean-chunk
    /// reuse substrate (see [`checkpoint`](crate::checkpoint)).
    pub(crate) ckpt_memory: std::sync::Mutex<Option<crate::checkpoint::CheckpointMemory>>,
    /// Checkpoints the executor's scheduler has completed.
    pub(crate) scheduled_checkpoints: std::sync::atomic::AtomicU64,
}

impl App {
    /// Creates an application with an empty database.
    #[must_use]
    pub fn new() -> App {
        App {
            db: FormDb::new(),
            models: BTreeMap::new(),
            policies: RwLock::new(HashMap::new()),
            object_labels: RwLock::new(HashMap::new()),
            request_locks: crate::executor::RequestLocks::default(),
            render_cache: crate::rendercache::RenderCache::new(),
            journal: None,
            create_order: std::sync::Mutex::new(()),
            degraded: RwLock::new(None),
            persist_dir: RwLock::new(None),
            meta_epoch: std::sync::atomic::AtomicU64::new(0),
            incremental_checkpoints: std::sync::atomic::AtomicBool::new(true),
            ckpt_memory: std::sync::Mutex::new(None),
            scheduled_checkpoints: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// The reason this app is in read-only degraded mode, or `None`
    /// when healthy. See the `degraded` field for the protocol.
    #[must_use]
    pub fn degraded_reason(&self) -> Option<String> {
        self.degraded.read().expect("degraded flag").clone()
    }

    /// Whether the app is currently in read-only degraded mode.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.degraded.read().expect("degraded flag").is_some()
    }

    /// Enters degraded mode (first reason wins — later faults while
    /// already degraded do not overwrite the original diagnosis).
    pub(crate) fn enter_degraded(&self, reason: String) {
        let mut flag = self.degraded.write().expect("degraded flag");
        flag.get_or_insert(reason);
    }

    /// Leaves degraded mode — called after a successful checkpoint
    /// has re-established durability (the logs are freshly truncated,
    /// so the next append starts clean).
    pub(crate) fn clear_degraded(&self) {
        *self.degraded.write().expect("degraded flag") = None;
    }

    /// Inspects a write result: a persistence error (`DbError::
    /// Persist` — a failed WAL or journal append) flips the app into
    /// read-only degraded mode. Logic errors (type mismatches, unknown
    /// tables …) are the caller's bug, not a storage fault, and leave
    /// the mode untouched.
    fn note_write_result<T>(&self, result: &FormResult<T>) {
        if let Err(form::FormError::Db(microdb::DbError::Persist(reason))) = result {
            self.enter_degraded(reason.clone());
        }
    }

    /// Switches the render cache on or off (ablation hook — the
    /// `--render-cache` experiment tables and the differential grids
    /// use this). Returns the previous setting; disabling drops every
    /// stored page. Takes `&self`: unlike the decode cache this is
    /// toggled on served apps behind `Arc`s.
    pub fn set_render_cache(&self, enabled: bool) -> bool {
        self.render_cache.set_enabled(enabled)
    }

    /// Whether the render cache is currently enabled.
    #[must_use]
    pub fn render_cache_enabled(&self) -> bool {
        self.render_cache.enabled()
    }

    /// Switches the render cache's fragment-repair path on or off
    /// (ablation hook — the `--fragments` experiment tables and the
    /// differential grids use this). Returns the previous setting.
    /// Disabled, the cache behaves exactly as before repair existed:
    /// entries store un-fragmented and every stale probe is a full
    /// invalidation.
    pub fn set_fragment_repair(&self, enabled: bool) -> bool {
        self.render_cache.set_fragments_enabled(enabled)
    }

    /// Whether fragment repair is currently enabled.
    #[must_use]
    pub fn fragment_repair_enabled(&self) -> bool {
        self.render_cache.fragments_enabled()
    }

    /// Switches incremental (chunk-reusing) checkpoints on or off
    /// (ablation hook — the `--no-incremental` chaos arm and the
    /// incremental-vs-full experiment table use this). Returns the
    /// previous setting. Disabled, every checkpoint re-exports and
    /// re-chunks everything, exactly like the first checkpoint of a
    /// fresh process.
    pub fn set_incremental_checkpoints(&self, enabled: bool) -> bool {
        self.incremental_checkpoints
            .swap(enabled, std::sync::atomic::Ordering::Relaxed)
    }

    /// Whether incremental checkpoints are currently enabled.
    #[must_use]
    pub fn incremental_checkpoints_enabled(&self) -> bool {
        self.incremental_checkpoints
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    /// The directory persistence was enabled on, if any — the target
    /// of scheduled checkpoints.
    #[must_use]
    pub fn persist_dir(&self) -> Option<std::path::PathBuf> {
        self.persist_dir.read().expect("persist dir").clone()
    }

    /// Checkpoints completed by the executor's scheduler (as opposed
    /// to operator-triggered `admin/checkpoint` calls).
    #[must_use]
    pub fn scheduled_checkpoint_count(&self) -> u64 {
        self.scheduled_checkpoints
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    /// WAL pressure since the last checkpoint: `(records, bytes)`
    /// appended to the row log since it was last truncated/compacted.
    /// `(0, 0)` when persistence is not enabled.
    #[must_use]
    pub fn wal_pressure(&self) -> (u64, u64) {
        self.db.raw_ref().wal().map_or((0, 0), |wal| {
            (wal.records_since_truncate(), wal.bytes_since_truncate())
        })
    }

    /// Render-cache hit/miss/repair/invalidated/uncacheable counters
    /// since construction.
    #[must_use]
    pub fn render_cache_stats(&self) -> crate::rendercache::RenderCacheStats {
        self.render_cache.stats()
    }

    /// Registers a model, creating its backing table.
    ///
    /// # Errors
    ///
    /// Propagates table-creation errors.
    pub fn register_model(&mut self, model: ModelDef) -> FormResult<()> {
        self.db.create_table(&model.name, model.columns.clone())?;
        self.models.insert(model.name.clone(), model);
        Ok(())
    }

    /// The registered model definition.
    ///
    /// # Panics
    ///
    /// Panics if the model was not registered (a programming error).
    #[must_use]
    pub fn model(&self, name: &str) -> &ModelDef {
        self.models
            .get(name)
            .unwrap_or_else(|| panic!("model {name} not registered"))
    }

    /// `Model.objects.create(...)`: allocates one label per field
    /// policy, builds the faceted object (secret facets on the
    /// high side, computed public views on the low side), records the
    /// policies, and stores the physical rows.
    ///
    /// # Errors
    ///
    /// Propagates insertion errors. A *persistence* failure (the WAL
    /// or meta-journal append) additionally flips the app into
    /// read-only degraded mode — the in-memory state was rolled back,
    /// so reads stay consistent while the executor sheds writes.
    pub fn create(&self, model_name: &str, row: Row) -> FormResult<i64> {
        let result = self.create_impl(model_name, row);
        self.note_write_result(&result);
        result
    }

    fn create_impl(&self, model_name: &str, row: Row) -> FormResult<i64> {
        let model = self.model(model_name).clone();
        let jid = self.db.reserve_jid(&model.name);
        // The jid cursor moved (and labels/bindings may follow): the
        // checkpointed app-meta chunk is stale.
        self.meta_epoch
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        // Label allocation + journal append happen under one guard
        // (when persistence is on): two concurrent creates on
        // disjoint footprints would otherwise interleave allocation
        // and journaling, producing records out of label-index order
        // — which the strictly sequential journal replay rejects.
        // Only the cheap bookkeeping sits inside the guard; facet
        // construction below runs unlocked.
        let labels: Vec<Label> = {
            let _order = self
                .journal
                .as_ref()
                .map(|_| self.create_order.lock().expect("create-order lock"));
            let labels: Vec<Label> = model
                .policies
                .iter()
                .map(|fp| {
                    self.db
                        .fresh_label(&format!("{model_name}.{}", fp.label_name))
                })
                .collect();
            if let Some(journal) = &self.journal {
                // Journal the metadata *before* the rows hit the
                // write log: a crash between the two strands metadata
                // without rows (harmless), never rows whose label
                // indices the restored registry has not allocated
                // (aliasing). The in-memory policy bindings are
                // inserted only *after* the append succeeds, so a
                // failed append (disk full) aborts the create without
                // leaking phantom bindings into the policies map —
                // and into every future checkpoint.
                let registry = self.db.labels();
                journal.append(&crate::checkpoint::CreateRecord {
                    model: model.name.clone(),
                    jid,
                    labels: labels
                        .iter()
                        .map(|l| (l.index(), registry.name(*l).to_owned()))
                        .collect(),
                    row: row.clone(),
                })?;
            }
            {
                let mut policies = self.policies.write().expect("policy lock");
                for (policy_ix, (fp, label)) in model.policies.iter().zip(&labels).enumerate() {
                    policies.insert(
                        *label,
                        PolicyEntry {
                            check: fp.check.clone(),
                            row: row.clone(),
                            jid,
                            model: model.name.clone(),
                            policy_ix,
                        },
                    );
                }
            }
            labels
        };
        let mut object: FacetedObject = Faceted::leaf(Some(row.clone()));
        for (fp, label) in model.policies.iter().zip(&labels) {
            let public_values = (fp.public_view)(&row);
            assert_eq!(
                public_values.len(),
                fp.fields.len(),
                "public view must produce one value per protected field"
            );
            let fields = fp.fields.clone();
            let public_side = object.map(&mut |opt: &Option<Row>| {
                opt.as_ref().map(|r| {
                    let mut r = r.clone();
                    for (ix, v) in fields.iter().zip(&public_values) {
                        r[*ix] = v.clone();
                    }
                    r
                })
            });
            object = Faceted::split(*label, object, public_side);
        }
        self.object_labels
            .write()
            .expect("object-labels lock")
            .insert((model.name.clone(), jid), labels);
        self.db.insert_with_jid(&model.name, jid, &object)?;
        Ok(jid)
    }

    /// Names of the registered models, in registration (name) order.
    #[must_use]
    pub fn model_names(&self) -> Vec<String> {
        self.models.keys().cloned().collect()
    }

    /// Serializable policy bindings: for every live label, the
    /// `(label index, model, policy index, jid, creation-time row)`
    /// tuple a restore needs to re-attach the model's check closure.
    /// Sorted by label index, which for any one object is also its
    /// model-policy order.
    pub(crate) fn export_policy_bindings(&self) -> Vec<(u32, String, usize, i64, Row)> {
        let policies = self.policies.read().expect("policy lock");
        let mut out: Vec<(u32, String, usize, i64, Row)> = policies
            .iter()
            .map(|(label, e)| {
                (
                    label.index(),
                    e.model.clone(),
                    e.policy_ix,
                    e.jid,
                    e.row.clone(),
                )
            })
            .collect();
        out.sort_by_key(|b| b.0);
        out
    }

    /// Drops every policy binding and object-label association — the
    /// first step of a restore (the checkpoint's bindings replace
    /// them wholesale).
    pub(crate) fn clear_policy_state(&self) {
        self.policies.write().expect("policy lock").clear();
        self.object_labels
            .write()
            .expect("object-labels lock")
            .clear();
    }

    /// Re-attaches one persisted policy binding: the check closure
    /// comes from this app's registered model (closures cannot be
    /// serialized; the `(model, policy index)` pair is their stable
    /// name), everything else from the checkpoint. Also appends the
    /// label to the object's label list — callers bind in ascending
    /// label-index order, which per object is model-policy order.
    pub(crate) fn bind_policy(
        &self,
        label: Label,
        model_name: &str,
        policy_ix: usize,
        jid: i64,
        row: &Row,
    ) -> FormResult<()> {
        let model = self.models.get(model_name).ok_or_else(|| {
            form::FormError::Db(microdb::DbError::Persist(format!(
                "checkpoint binds model {model_name:?}, which this app does not register"
            )))
        })?;
        let fp = model.policies.get(policy_ix).ok_or_else(|| {
            form::FormError::Db(microdb::DbError::Persist(format!(
                "checkpoint binds policy #{policy_ix} of model {model_name:?}, \
                 which has {} policies",
                model.policies.len()
            )))
        })?;
        self.policies.write().expect("policy lock").insert(
            label,
            PolicyEntry {
                check: fp.check.clone(),
                row: row.clone(),
                jid,
                model: model_name.to_owned(),
                policy_ix,
            },
        );
        self.object_labels
            .write()
            .expect("object-labels lock")
            .entry((model_name.to_owned(), jid))
            .or_default()
            .push(label);
        self.meta_epoch
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Ok(())
    }

    /// Updates columns of an object, preserving its labels and
    /// re-applying the model's public-view computations — the faceted
    /// analogue of `obj.field = v; obj.save()`. A non-empty `pc`
    /// performs the write as a guarded update.
    ///
    /// # Errors
    ///
    /// Propagates lookup and write errors.
    pub fn update_fields(
        &self,
        model_name: &str,
        jid: i64,
        updates: &[(usize, Value)],
        pc: &faceted::Branches,
    ) -> FormResult<()> {
        let model = self.model(model_name).clone();
        let labels = self
            .object_labels
            .read()
            .expect("object-labels lock")
            .get(&(model_name.to_owned(), jid))
            .cloned()
            .unwrap_or_default();
        let current = self.db.get(model_name, jid)?;
        // The all-labels-true view is the fully secret row.
        let all_true = View::from_labels(current.labels());
        let Some(mut secret) = current.project(&all_true).clone() else {
            return Ok(()); // object absent in every authorized view
        };
        for (ix, v) in updates {
            secret[*ix] = v.clone();
        }
        let mut object: FacetedObject = Faceted::leaf(Some(secret.clone()));
        for (fp, label) in model.policies.iter().zip(&labels) {
            let public_values = (fp.public_view)(&secret);
            let fields = fp.fields.clone();
            let public_side = object.map(&mut |opt: &Option<Row>| {
                opt.as_ref().map(|r| {
                    let mut r = r.clone();
                    for (ix, v) in fields.iter().zip(&public_values) {
                        r[*ix] = v.clone();
                    }
                    r
                })
            });
            object = Faceted::split(*label, object, public_side);
        }
        let result = self.db.save(&model.name, jid, &object, pc);
        self.note_write_result(&result);
        result
    }

    /// Faceted `objects.all()`.
    ///
    /// # Errors
    ///
    /// Propagates query errors.
    pub fn all(&self, model: &str) -> FormResult<FacetedList<GuardedRow>> {
        self.db.all(model)
    }

    /// Faceted `objects.filter(column=value)`.
    ///
    /// # Errors
    ///
    /// Propagates query errors.
    pub fn filter_eq(
        &self,
        model: &str,
        column: &str,
        value: Value,
    ) -> FormResult<FacetedList<GuardedRow>> {
        self.db.filter_eq(model, column, value)
    }

    /// Faceted filter with an arbitrary predicate.
    ///
    /// # Errors
    ///
    /// Propagates query errors.
    pub fn filter(&self, model: &str, predicate: Predicate) -> FormResult<FacetedList<GuardedRow>> {
        self.db.filter(model, predicate)
    }

    /// Faceted `ORDER BY`.
    ///
    /// # Errors
    ///
    /// Propagates query errors.
    pub fn order_by(
        &self,
        model: &str,
        column: &str,
        order: SortOrder,
    ) -> FormResult<FacetedList<GuardedRow>> {
        self.db.order_by(model, column, order)
    }

    /// Reconstructs a single object.
    ///
    /// # Errors
    ///
    /// Propagates lookup errors.
    pub fn get(&self, model: &str, jid: i64) -> FormResult<FacetedObject> {
        self.db.get(model, jid)
    }

    /// Saves an object under a path condition (guarded write).
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn save(
        &self,
        model: &str,
        jid: i64,
        new: &FacetedObject,
        pc: &faceted::Branches,
    ) -> FormResult<()> {
        let result = self.db.save(model, jid, new, pc);
        self.note_write_result(&result);
        result
    }

    /// Resolves the given labels (and, transitively, every label their
    /// policies mention — `closeK`) for a viewer, returning the
    /// maximal-true satisfying assignment.
    ///
    /// Policies are evaluated against the *current* database state;
    /// faceted policy results become constraints for the solver, which
    /// handles the mutual-dependency case of §2.3.
    pub fn resolve_labels(&self, labels: &[Label], viewer: &Viewer) -> Assignment {
        let mut constraint = Formula::constant(true);
        let mut pending: Vec<Label> = labels.to_vec();
        let mut seen: Vec<Label> = Vec::new();
        while let Some(label) = pending.pop() {
            if seen.contains(&label) {
                continue;
            }
            seen.push(label);
            let entry = self
                .policies
                .read()
                .expect("policy lock")
                .get(&label)
                .cloned();
            let Some(entry) = entry else {
                continue; // unconstrained label: defaults to shown
            };
            let mut args = PolicyArgs {
                row: &entry.row,
                jid: entry.jid,
                viewer,
                db: &self.db,
            };
            let verdict = (entry.check)(&mut args);
            for dep in verdict.labels() {
                if !seen.contains(&dep) {
                    pending.push(dep);
                }
            }
            constraint =
                constraint.and(Formula::var(label).implies(Formula::from_faceted_bool(&verdict)));
        }
        let mut assignment = max_true_assignment(&constraint)
            .expect("guarded constraints are always satisfiable (all-false)");
        for l in seen {
            if !assignment.is_assigned(l) {
                assignment.set(l, true);
            }
        }
        assignment
    }

    /// The view a given viewer obtains for a set of labels.
    pub fn view_for(&self, labels: &[Label], viewer: &Viewer) -> View {
        self.resolve_labels(labels, viewer).to_view()
    }

    /// Computation sink for a faceted scalar: resolve policies and
    /// project (the `print`/template-render of §2.3).
    pub fn show_value<T: faceted::Facet>(&self, viewer: &Viewer, v: &Faceted<T>) -> T {
        let view = self.view_for(&v.labels(), viewer);
        v.project(&view).clone()
    }

    /// Computation sink for a faceted query result: resolve the
    /// policies of every guard label once, then project the rows.
    pub fn show_rows(&self, viewer: &Viewer, rows: &FacetedList<GuardedRow>) -> Vec<Row> {
        let view = self.view_for(&rows.labels(), viewer);
        rows.project(&view)
            .into_iter()
            .map(|g| g.fields.clone())
            .collect()
    }

    /// Computation sink for a single object.
    pub fn show_object(&self, viewer: &Viewer, obj: &FacetedObject) -> Option<Row> {
        let view = self.view_for(&obj.labels(), viewer);
        obj.project(&view).clone()
    }
}

impl Default for App {
    fn default() -> App {
        App::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{label_for, simple_policy};
    use microdb::{ColumnDef, ColumnType};

    /// The paper's §2 social-calendar example, end to end.
    fn calendar_app() -> App {
        let mut app = App::new();
        let event = ModelDef::public(
            "event",
            vec![
                ColumnDef::new("name", ColumnType::Str),
                ColumnDef::new("location", ColumnType::Str),
            ],
        )
        .with_policy(label_for(
            "restrict_event",
            vec![0, 1],
            |_row| {
                vec![
                    Value::from("Private event"),
                    Value::from("Undisclosed location"),
                ]
            },
            |args| {
                // Policy: viewer must be on the guest list (queries the
                // EventGuest table at output time).
                let Some(user) = args.viewer.user_jid() else {
                    return Faceted::leaf(false);
                };
                let event_jid = args.jid;
                let guests = args
                    .db
                    .filter_eq("eventguest", "guest", Value::Int(user))
                    .unwrap_or_default();
                let matching = guests.filter_rows(|g| g.fields[0] == Value::Int(event_jid));
                form::faceted_count(&matching).map(&mut |n| *n > 0)
            },
        ));
        app.register_model(event).unwrap();
        app.register_model(ModelDef::public(
            "eventguest",
            vec![
                ColumnDef::new("event", ColumnType::Int),
                ColumnDef::new("guest", ColumnType::Int),
            ],
        ))
        .unwrap();
        app.register_model(ModelDef::public(
            "userprofile",
            vec![ColumnDef::new("name", ColumnType::Str)],
        ))
        .unwrap();
        app
    }

    #[test]
    fn create_allocates_labels_and_facets() {
        let app = calendar_app();
        let jid = app
            .create(
                "event",
                vec![
                    Value::from("Carol's surprise party"),
                    Value::from("Schloss Dagstuhl"),
                ],
            )
            .unwrap();
        assert_eq!(jid, 1);
        assert_eq!(app.db.physical_rows("event").unwrap(), 2);
    }

    #[test]
    fn sink_shows_secret_to_guest_public_to_other() {
        let app = calendar_app();
        let alice = app
            .create("userprofile", vec![Value::from("alice")])
            .unwrap();
        let carol = app
            .create("userprofile", vec![Value::from("carol")])
            .unwrap();
        let party = app
            .create(
                "event",
                vec![
                    Value::from("Carol's surprise party"),
                    Value::from("Schloss Dagstuhl"),
                ],
            )
            .unwrap();
        app.create("eventguest", vec![Value::Int(party), Value::Int(alice)])
            .unwrap();

        let obj = app.get("event", party).unwrap();
        let shown_alice = app.show_object(&Viewer::User(alice), &obj).unwrap();
        assert_eq!(shown_alice[0], Value::from("Carol's surprise party"));
        let shown_carol = app.show_object(&Viewer::User(carol), &obj).unwrap();
        assert_eq!(shown_carol[0], Value::from("Private event"));
        assert_eq!(shown_carol[1], Value::from("Undisclosed location"));
        let anon = app.show_object(&Viewer::Anonymous, &obj).unwrap();
        assert_eq!(anon[0], Value::from("Private event"));
    }

    #[test]
    fn filter_on_sensitive_field_stays_protected() {
        let app = calendar_app();
        let alice = app
            .create("userprofile", vec![Value::from("alice")])
            .unwrap();
        let party = app
            .create(
                "event",
                vec![Value::from("party"), Value::from("Schloss Dagstuhl")],
            )
            .unwrap();
        app.create("eventguest", vec![Value::Int(party), Value::Int(alice)])
            .unwrap();

        let result = app
            .filter_eq("event", "location", Value::from("Schloss Dagstuhl"))
            .unwrap();
        let for_alice = app.show_rows(&Viewer::User(alice), &result);
        assert_eq!(for_alice.len(), 1);
        let for_anon = app.show_rows(&Viewer::Anonymous, &result);
        assert!(
            for_anon.is_empty(),
            "outsiders must not learn the location matched"
        );
    }

    #[test]
    fn policy_reads_state_at_output_time() {
        let app = calendar_app();
        let bob = app.create("userprofile", vec![Value::from("bob")]).unwrap();
        let party = app
            .create("event", vec![Value::from("secret"), Value::from("here")])
            .unwrap();
        let obj = app.get("event", party).unwrap();
        // Not yet a guest: public view.
        assert_eq!(
            app.show_object(&Viewer::User(bob), &obj).unwrap()[0],
            Value::from("Private event")
        );
        // Added to the guest list after creation: secret view.
        app.create("eventguest", vec![Value::Int(party), Value::Int(bob)])
            .unwrap();
        assert_eq!(
            app.show_object(&Viewer::User(bob), &obj).unwrap()[0],
            Value::from("secret")
        );
    }

    #[test]
    fn multiple_policies_compose() {
        let mut app = App::new();
        let m = ModelDef::public(
            "doc",
            vec![
                ColumnDef::new("title", ColumnType::Str),
                ColumnDef::new("body", ColumnType::Str),
            ],
        )
        .with_policy(simple_policy(
            "title_policy",
            vec![0],
            |_| vec![Value::from("[title hidden]")],
            |args| args.viewer.user_jid() == Some(1),
        ))
        .with_policy(simple_policy(
            "body_policy",
            vec![1],
            |_| vec![Value::from("[body hidden]")],
            |args| args.viewer.user_jid().is_some(),
        ));
        app.register_model(m).unwrap();
        let jid = app
            .create("doc", vec![Value::from("T"), Value::from("B")])
            .unwrap();
        assert_eq!(
            app.db.physical_rows("doc").unwrap(),
            4,
            "2 labels ⇒ up to 4 facet rows"
        );
        let obj = app.get("doc", jid).unwrap();
        let owner = app.show_object(&Viewer::User(1), &obj).unwrap();
        assert_eq!(owner, vec![Value::from("T"), Value::from("B")]);
        let other = app.show_object(&Viewer::User(2), &obj).unwrap();
        assert_eq!(other, vec![Value::from("[title hidden]"), Value::from("B")]);
        let anon = app.show_object(&Viewer::Anonymous, &obj).unwrap();
        assert_eq!(
            anon,
            vec![Value::from("[title hidden]"), Value::from("[body hidden]")]
        );
    }

    #[test]
    fn unregistered_label_defaults_to_shown() {
        let app = App::new();
        let k = app.db.fresh_label("loose");
        let v = Faceted::split(k, Faceted::leaf(1), Faceted::leaf(0));
        assert_eq!(app.show_value(&Viewer::Anonymous, &v), 1);
    }
}
