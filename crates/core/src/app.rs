//! The Jacqueline application object: policy-agnostic object manager
//! plus the computation-sink machinery.

use std::collections::{BTreeMap, HashMap};
use std::sync::RwLock;

use faceted::{Faceted, FacetedList, Label, View};
use form::{FacetedObject, FormDb, FormResult, GuardedRow};
use labelsat::{max_true_assignment, Assignment, Formula};
use microdb::{Predicate, Row, SortOrder, Value};

use crate::model::{ModelDef, PolicyArgs, PolicyFn, Viewer};

/// A policy attached to a live label: the check plus the
/// creation-time row snapshot it closes over (§2.1.2: "with respect
/// to the value of event at the time a value is created and the state
/// of the system at the time of output").
#[derive(Clone)]
pub(crate) struct PolicyEntry {
    pub(crate) check: PolicyFn,
    pub(crate) row: Row,
    pub(crate) jid: i64,
}

/// A Jacqueline application: registered models, the faceted database,
/// and the label→policy map.
///
/// The programmer's contract (§2): declare policies in the models,
/// access data only through this API, and the runtime guarantees
/// outputs comply with the policies.
///
/// # Concurrency
///
/// Mutating object operations ([`App::create`], [`App::save`],
/// [`App::update_fields`]) take `&self`: storage is locked per table
/// inside the database layer, and the label→policy bookkeeping sits
/// behind its own locks, so requests writing *different* tables run
/// fully in parallel. Request-level isolation (a reader never sees
/// half of a multi-statement write) is the
/// [`Executor`](crate::Executor)'s job via footprint locks. Only
/// structural setup ([`App::register_model`]) still needs `&mut self`.
pub struct App {
    /// The faceted database.
    pub db: FormDb,
    models: BTreeMap<String, ModelDef>,
    pub(crate) policies: RwLock<HashMap<Label, PolicyEntry>>,
    /// Labels allocated per object, in model-policy order — needed to
    /// rebuild facet structure on updates.
    object_labels: RwLock<HashMap<(String, i64), Vec<Label>>>,
    /// Request-level footprint locks, owned by the app so concurrent
    /// executor runs against the same app isolate against each other.
    pub(crate) request_locks: crate::executor::RequestLocks,
}

impl App {
    /// Creates an application with an empty database.
    #[must_use]
    pub fn new() -> App {
        App {
            db: FormDb::new(),
            models: BTreeMap::new(),
            policies: RwLock::new(HashMap::new()),
            object_labels: RwLock::new(HashMap::new()),
            request_locks: crate::executor::RequestLocks::default(),
        }
    }

    /// Registers a model, creating its backing table.
    ///
    /// # Errors
    ///
    /// Propagates table-creation errors.
    pub fn register_model(&mut self, model: ModelDef) -> FormResult<()> {
        self.db.create_table(&model.name, model.columns.clone())?;
        self.models.insert(model.name.clone(), model);
        Ok(())
    }

    /// The registered model definition.
    ///
    /// # Panics
    ///
    /// Panics if the model was not registered (a programming error).
    #[must_use]
    pub fn model(&self, name: &str) -> &ModelDef {
        self.models
            .get(name)
            .unwrap_or_else(|| panic!("model {name} not registered"))
    }

    /// `Model.objects.create(...)`: allocates one label per field
    /// policy, builds the faceted object (secret facets on the
    /// high side, computed public views on the low side), records the
    /// policies, and stores the physical rows.
    ///
    /// # Errors
    ///
    /// Propagates insertion errors.
    pub fn create(&self, model_name: &str, row: Row) -> FormResult<i64> {
        let model = self.model(model_name).clone();
        let jid = self.db.reserve_jid(&model.name);
        let mut labels = Vec::with_capacity(model.policies.len());
        let mut object: FacetedObject = Faceted::leaf(Some(row.clone()));
        for fp in &model.policies {
            let label = self
                .db
                .fresh_label(&format!("{model_name}.{}", fp.label_name));
            labels.push(label);
            self.policies.write().expect("policy lock").insert(
                label,
                PolicyEntry {
                    check: fp.check.clone(),
                    row: row.clone(),
                    jid,
                },
            );
            let public_values = (fp.public_view)(&row);
            assert_eq!(
                public_values.len(),
                fp.fields.len(),
                "public view must produce one value per protected field"
            );
            let fields = fp.fields.clone();
            let public_side = object.map(&mut |opt: &Option<Row>| {
                opt.as_ref().map(|r| {
                    let mut r = r.clone();
                    for (ix, v) in fields.iter().zip(&public_values) {
                        r[*ix] = v.clone();
                    }
                    r
                })
            });
            object = Faceted::split(label, object, public_side);
        }
        self.object_labels
            .write()
            .expect("object-labels lock")
            .insert((model.name.clone(), jid), labels);
        self.db.insert_with_jid(&model.name, jid, &object)?;
        Ok(jid)
    }

    /// Updates columns of an object, preserving its labels and
    /// re-applying the model's public-view computations — the faceted
    /// analogue of `obj.field = v; obj.save()`. A non-empty `pc`
    /// performs the write as a guarded update.
    ///
    /// # Errors
    ///
    /// Propagates lookup and write errors.
    pub fn update_fields(
        &self,
        model_name: &str,
        jid: i64,
        updates: &[(usize, Value)],
        pc: &faceted::Branches,
    ) -> FormResult<()> {
        let model = self.model(model_name).clone();
        let labels = self
            .object_labels
            .read()
            .expect("object-labels lock")
            .get(&(model_name.to_owned(), jid))
            .cloned()
            .unwrap_or_default();
        let current = self.db.get(model_name, jid)?;
        // The all-labels-true view is the fully secret row.
        let all_true = View::from_labels(current.labels());
        let Some(mut secret) = current.project(&all_true).clone() else {
            return Ok(()); // object absent in every authorized view
        };
        for (ix, v) in updates {
            secret[*ix] = v.clone();
        }
        let mut object: FacetedObject = Faceted::leaf(Some(secret.clone()));
        for (fp, label) in model.policies.iter().zip(&labels) {
            let public_values = (fp.public_view)(&secret);
            let fields = fp.fields.clone();
            let public_side = object.map(&mut |opt: &Option<Row>| {
                opt.as_ref().map(|r| {
                    let mut r = r.clone();
                    for (ix, v) in fields.iter().zip(&public_values) {
                        r[*ix] = v.clone();
                    }
                    r
                })
            });
            object = Faceted::split(*label, object, public_side);
        }
        self.db.save(&model.name, jid, &object, pc)
    }

    /// Faceted `objects.all()`.
    ///
    /// # Errors
    ///
    /// Propagates query errors.
    pub fn all(&self, model: &str) -> FormResult<FacetedList<GuardedRow>> {
        self.db.all(model)
    }

    /// Faceted `objects.filter(column=value)`.
    ///
    /// # Errors
    ///
    /// Propagates query errors.
    pub fn filter_eq(
        &self,
        model: &str,
        column: &str,
        value: Value,
    ) -> FormResult<FacetedList<GuardedRow>> {
        self.db.filter_eq(model, column, value)
    }

    /// Faceted filter with an arbitrary predicate.
    ///
    /// # Errors
    ///
    /// Propagates query errors.
    pub fn filter(&self, model: &str, predicate: Predicate) -> FormResult<FacetedList<GuardedRow>> {
        self.db.filter(model, predicate)
    }

    /// Faceted `ORDER BY`.
    ///
    /// # Errors
    ///
    /// Propagates query errors.
    pub fn order_by(
        &self,
        model: &str,
        column: &str,
        order: SortOrder,
    ) -> FormResult<FacetedList<GuardedRow>> {
        self.db.order_by(model, column, order)
    }

    /// Reconstructs a single object.
    ///
    /// # Errors
    ///
    /// Propagates lookup errors.
    pub fn get(&self, model: &str, jid: i64) -> FormResult<FacetedObject> {
        self.db.get(model, jid)
    }

    /// Saves an object under a path condition (guarded write).
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn save(
        &self,
        model: &str,
        jid: i64,
        new: &FacetedObject,
        pc: &faceted::Branches,
    ) -> FormResult<()> {
        self.db.save(model, jid, new, pc)
    }

    /// Resolves the given labels (and, transitively, every label their
    /// policies mention — `closeK`) for a viewer, returning the
    /// maximal-true satisfying assignment.
    ///
    /// Policies are evaluated against the *current* database state;
    /// faceted policy results become constraints for the solver, which
    /// handles the mutual-dependency case of §2.3.
    pub fn resolve_labels(&self, labels: &[Label], viewer: &Viewer) -> Assignment {
        let mut constraint = Formula::constant(true);
        let mut pending: Vec<Label> = labels.to_vec();
        let mut seen: Vec<Label> = Vec::new();
        while let Some(label) = pending.pop() {
            if seen.contains(&label) {
                continue;
            }
            seen.push(label);
            let entry = self
                .policies
                .read()
                .expect("policy lock")
                .get(&label)
                .cloned();
            let Some(entry) = entry else {
                continue; // unconstrained label: defaults to shown
            };
            let mut args = PolicyArgs {
                row: &entry.row,
                jid: entry.jid,
                viewer,
                db: &self.db,
            };
            let verdict = (entry.check)(&mut args);
            for dep in verdict.labels() {
                if !seen.contains(&dep) {
                    pending.push(dep);
                }
            }
            constraint =
                constraint.and(Formula::var(label).implies(Formula::from_faceted_bool(&verdict)));
        }
        let mut assignment = max_true_assignment(&constraint)
            .expect("guarded constraints are always satisfiable (all-false)");
        for l in seen {
            if !assignment.is_assigned(l) {
                assignment.set(l, true);
            }
        }
        assignment
    }

    /// The view a given viewer obtains for a set of labels.
    pub fn view_for(&self, labels: &[Label], viewer: &Viewer) -> View {
        self.resolve_labels(labels, viewer).to_view()
    }

    /// Computation sink for a faceted scalar: resolve policies and
    /// project (the `print`/template-render of §2.3).
    pub fn show_value<T: faceted::Facet>(&self, viewer: &Viewer, v: &Faceted<T>) -> T {
        let view = self.view_for(&v.labels(), viewer);
        v.project(&view).clone()
    }

    /// Computation sink for a faceted query result: resolve the
    /// policies of every guard label once, then project the rows.
    pub fn show_rows(&self, viewer: &Viewer, rows: &FacetedList<GuardedRow>) -> Vec<Row> {
        let view = self.view_for(&rows.labels(), viewer);
        rows.project(&view)
            .into_iter()
            .map(|g| g.fields.clone())
            .collect()
    }

    /// Computation sink for a single object.
    pub fn show_object(&self, viewer: &Viewer, obj: &FacetedObject) -> Option<Row> {
        let view = self.view_for(&obj.labels(), viewer);
        obj.project(&view).clone()
    }
}

impl Default for App {
    fn default() -> App {
        App::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{label_for, simple_policy};
    use microdb::{ColumnDef, ColumnType};

    /// The paper's §2 social-calendar example, end to end.
    fn calendar_app() -> App {
        let mut app = App::new();
        let event = ModelDef::public(
            "event",
            vec![
                ColumnDef::new("name", ColumnType::Str),
                ColumnDef::new("location", ColumnType::Str),
            ],
        )
        .with_policy(label_for(
            "restrict_event",
            vec![0, 1],
            |_row| {
                vec![
                    Value::from("Private event"),
                    Value::from("Undisclosed location"),
                ]
            },
            |args| {
                // Policy: viewer must be on the guest list (queries the
                // EventGuest table at output time).
                let Some(user) = args.viewer.user_jid() else {
                    return Faceted::leaf(false);
                };
                let event_jid = args.jid;
                let guests = args
                    .db
                    .filter_eq("eventguest", "guest", Value::Int(user))
                    .unwrap_or_default();
                let matching = guests.filter_rows(|g| g.fields[0] == Value::Int(event_jid));
                form::faceted_count(&matching).map(&mut |n| *n > 0)
            },
        ));
        app.register_model(event).unwrap();
        app.register_model(ModelDef::public(
            "eventguest",
            vec![
                ColumnDef::new("event", ColumnType::Int),
                ColumnDef::new("guest", ColumnType::Int),
            ],
        ))
        .unwrap();
        app.register_model(ModelDef::public(
            "userprofile",
            vec![ColumnDef::new("name", ColumnType::Str)],
        ))
        .unwrap();
        app
    }

    #[test]
    fn create_allocates_labels_and_facets() {
        let app = calendar_app();
        let jid = app
            .create(
                "event",
                vec![
                    Value::from("Carol's surprise party"),
                    Value::from("Schloss Dagstuhl"),
                ],
            )
            .unwrap();
        assert_eq!(jid, 1);
        assert_eq!(app.db.physical_rows("event").unwrap(), 2);
    }

    #[test]
    fn sink_shows_secret_to_guest_public_to_other() {
        let app = calendar_app();
        let alice = app
            .create("userprofile", vec![Value::from("alice")])
            .unwrap();
        let carol = app
            .create("userprofile", vec![Value::from("carol")])
            .unwrap();
        let party = app
            .create(
                "event",
                vec![
                    Value::from("Carol's surprise party"),
                    Value::from("Schloss Dagstuhl"),
                ],
            )
            .unwrap();
        app.create("eventguest", vec![Value::Int(party), Value::Int(alice)])
            .unwrap();

        let obj = app.get("event", party).unwrap();
        let shown_alice = app.show_object(&Viewer::User(alice), &obj).unwrap();
        assert_eq!(shown_alice[0], Value::from("Carol's surprise party"));
        let shown_carol = app.show_object(&Viewer::User(carol), &obj).unwrap();
        assert_eq!(shown_carol[0], Value::from("Private event"));
        assert_eq!(shown_carol[1], Value::from("Undisclosed location"));
        let anon = app.show_object(&Viewer::Anonymous, &obj).unwrap();
        assert_eq!(anon[0], Value::from("Private event"));
    }

    #[test]
    fn filter_on_sensitive_field_stays_protected() {
        let app = calendar_app();
        let alice = app
            .create("userprofile", vec![Value::from("alice")])
            .unwrap();
        let party = app
            .create(
                "event",
                vec![Value::from("party"), Value::from("Schloss Dagstuhl")],
            )
            .unwrap();
        app.create("eventguest", vec![Value::Int(party), Value::Int(alice)])
            .unwrap();

        let result = app
            .filter_eq("event", "location", Value::from("Schloss Dagstuhl"))
            .unwrap();
        let for_alice = app.show_rows(&Viewer::User(alice), &result);
        assert_eq!(for_alice.len(), 1);
        let for_anon = app.show_rows(&Viewer::Anonymous, &result);
        assert!(
            for_anon.is_empty(),
            "outsiders must not learn the location matched"
        );
    }

    #[test]
    fn policy_reads_state_at_output_time() {
        let app = calendar_app();
        let bob = app.create("userprofile", vec![Value::from("bob")]).unwrap();
        let party = app
            .create("event", vec![Value::from("secret"), Value::from("here")])
            .unwrap();
        let obj = app.get("event", party).unwrap();
        // Not yet a guest: public view.
        assert_eq!(
            app.show_object(&Viewer::User(bob), &obj).unwrap()[0],
            Value::from("Private event")
        );
        // Added to the guest list after creation: secret view.
        app.create("eventguest", vec![Value::Int(party), Value::Int(bob)])
            .unwrap();
        assert_eq!(
            app.show_object(&Viewer::User(bob), &obj).unwrap()[0],
            Value::from("secret")
        );
    }

    #[test]
    fn multiple_policies_compose() {
        let mut app = App::new();
        let m = ModelDef::public(
            "doc",
            vec![
                ColumnDef::new("title", ColumnType::Str),
                ColumnDef::new("body", ColumnType::Str),
            ],
        )
        .with_policy(simple_policy(
            "title_policy",
            vec![0],
            |_| vec![Value::from("[title hidden]")],
            |args| args.viewer.user_jid() == Some(1),
        ))
        .with_policy(simple_policy(
            "body_policy",
            vec![1],
            |_| vec![Value::from("[body hidden]")],
            |args| args.viewer.user_jid().is_some(),
        ));
        app.register_model(m).unwrap();
        let jid = app
            .create("doc", vec![Value::from("T"), Value::from("B")])
            .unwrap();
        assert_eq!(
            app.db.physical_rows("doc").unwrap(),
            4,
            "2 labels ⇒ up to 4 facet rows"
        );
        let obj = app.get("doc", jid).unwrap();
        let owner = app.show_object(&Viewer::User(1), &obj).unwrap();
        assert_eq!(owner, vec![Value::from("T"), Value::from("B")]);
        let other = app.show_object(&Viewer::User(2), &obj).unwrap();
        assert_eq!(other, vec![Value::from("[title hidden]"), Value::from("B")]);
        let anon = app.show_object(&Viewer::Anonymous, &obj).unwrap();
        assert_eq!(
            anon,
            vec![Value::from("[title hidden]"), Value::from("[body hidden]")]
        );
    }

    #[test]
    fn unregistered_label_defaults_to_shown() {
        let app = App::new();
        let k = app.db.fresh_label("loose");
        let v = Faceted::split(k, Faceted::leaf(1), Faceted::leaf(0));
        assert_eq!(app.show_value(&Viewer::Anonymous, &v), 1);
    }
}
