//! Request sessions: the Early Pruning fast path (§3.2).
//!
//! "Two properties of web programs make this analysis simple. First,
//! the session user is often the viewing context. Second, computation
//! sinks are easy to identify" — so for a "get" request Jacqueline
//! speculates that the session user is the viewer and resolves each
//! label's policy *once, eagerly*, pruning all other facets instead
//! of carrying them through the whole computation.

use std::collections::BTreeSet;

use faceted::{Branch, Branches, Faceted, FacetedList, Label};
use form::{FacetedObject, GuardedRow};
use microdb::Row;

use crate::app::App;
use crate::model::Viewer;

/// A per-request session: the speculated viewer plus the label
/// assignment resolved so far.
///
/// Each label's policy is evaluated at most once per request — the
/// reason Jacqueline can beat hand-coded checks that re-run per use
/// site (§6.3.2).
#[derive(Clone, Debug)]
pub struct Session {
    viewer: Viewer,
    resolved: Branches,
    decided: BTreeSet<Label>,
    in_progress: BTreeSet<Label>,
}

impl Session {
    /// Starts a request session for a (speculated) viewer.
    #[must_use]
    pub fn new(viewer: Viewer) -> Session {
        Session {
            viewer,
            resolved: Branches::new(),
            decided: BTreeSet::new(),
            in_progress: BTreeSet::new(),
        }
    }

    /// The session's viewer.
    #[must_use]
    pub fn viewer(&self) -> &Viewer {
        &self.viewer
    }

    /// The branches resolved so far (the pruning constraint).
    #[must_use]
    pub fn constraint(&self) -> &Branches {
        &self.resolved
    }

    /// Resolves one label for this viewer, caching the outcome.
    ///
    /// Cycles (a policy that depends on its own label, §2.3) resolve
    /// optimistically: assume shown, evaluate, and keep the
    /// assumption only if the policy verdict is consistent with it —
    /// the maximal-true choice of the constraint semantics.
    pub fn resolve(&mut self, app: &App, label: Label) -> bool {
        if self.decided.contains(&label) {
            return self.resolved.contains(Branch::pos(label));
        }
        if self.in_progress.contains(&label) {
            // Optimistic self-reference: tentatively shown.
            return true;
        }
        self.in_progress.insert(label);
        let verdict = self.policy_verdict(app, label);
        self.in_progress.remove(&label);
        self.decided.insert(label);
        self.resolved.insert(if verdict {
            Branch::pos(label)
        } else {
            Branch::neg(label)
        });
        verdict
    }

    fn policy_verdict(&mut self, app: &App, label: Label) -> bool {
        let entry = app
            .policies
            .read()
            .expect("policy lock")
            .get(&label)
            .cloned();
        let Some(entry) = entry else {
            return true; // unconstrained labels are shown
        };
        let mut args = crate::model::PolicyArgs {
            row: &entry.row,
            jid: entry.jid,
            viewer: &self.viewer.clone(),
            db: &app.db,
        };
        let faceted_verdict = (entry.check)(&mut args);
        // The verdict may itself be faceted; resolve its labels
        // recursively and project.
        let mut current = faceted_verdict;
        while let Some(k) = current.root_label() {
            let polarity = if k == label {
                // Self-reference: optimistic "shown"; verified below.
                true
            } else {
                self.resolve(app, k)
            };
            current = current.assume(k, polarity);
        }
        let optimistic = *current.as_leaf().expect("fully resolved");
        if optimistic {
            true
        } else {
            // If the optimistic self-reference was refuted, fall back
            // to hidden (the all-false side is always consistent).
            false
        }
    }

    /// Resolves every label guarding the rows and returns the rows
    /// this viewer sees (pruned, concrete). Rows are *borrowed* from
    /// the query result — with the decode cache that result usually
    /// shares the cached snapshot, so a whole page renders without
    /// copying a single field value.
    pub fn view_rows<'r>(&mut self, app: &App, rows: &'r FacetedList<GuardedRow>) -> Vec<&'r Row> {
        let mut out = Vec::new();
        for (guard, row) in rows.iter() {
            if self.guard_holds(app, guard) {
                out.push(&row.fields);
            }
        }
        out
    }

    /// Resolves the labels of one object and projects it.
    pub fn view_object(&mut self, app: &App, obj: &FacetedObject) -> Option<Row> {
        let mut current = obj.clone();
        while let Some(k) = current.root_label() {
            let polarity = self.resolve(app, k);
            current = current.assume(k, polarity);
        }
        current.as_leaf().expect("fully resolved").clone()
    }

    /// Resolves the labels of a faceted scalar and projects it.
    pub fn view_value<T: faceted::Facet>(&mut self, app: &App, v: &Faceted<T>) -> T {
        let mut current = v.clone();
        while let Some(k) = current.root_label() {
            let polarity = self.resolve(app, k);
            current = current.assume(k, polarity);
        }
        current.as_leaf().expect("fully resolved").clone()
    }

    fn guard_holds(&mut self, app: &App, guard: &Branches) -> bool {
        guard
            .iter()
            .all(|b| self.resolve(app, b.label()) == b.is_positive())
    }

    /// Installs this session's resolved constraint as the FORM's
    /// pruning filter, so subsequent queries skip inconsistent facet
    /// rows entirely.
    pub fn enable_db_pruning(&self, app: &mut App) {
        app.db.set_pruning(Some(self.resolved.clone()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{simple_policy, ModelDef};
    use microdb::{ColumnDef, ColumnType, Value};

    fn app_with_owner_policy() -> App {
        let mut app = App::new();
        let m = ModelDef::public(
            "note",
            vec![
                ColumnDef::new("owner", ColumnType::Int),
                ColumnDef::new("text", ColumnType::Str),
            ],
        )
        .with_policy(simple_policy(
            "note_owner",
            vec![1],
            |_| vec![Value::from("[private]")],
            |args| args.viewer.user_jid() == args.row[0].as_int(),
        ));
        app.register_model(m).unwrap();
        app
    }

    #[test]
    fn session_resolves_each_label_once() {
        let app = app_with_owner_policy();
        let jid = app
            .create("note", vec![Value::Int(7), Value::from("secret text")])
            .unwrap();
        let obj = app.get("note", jid).unwrap();
        let mut owner = Session::new(Viewer::User(7));
        let row = owner.view_object(&app, &obj).unwrap();
        assert_eq!(row[1], Value::from("secret text"));
        // Second resolution hits the cache (same outcome).
        let row2 = owner.view_object(&app, &obj).unwrap();
        assert_eq!(row, row2);
        assert_eq!(owner.constraint().len(), 1);
    }

    #[test]
    fn session_matches_full_sink_resolution() {
        let app = app_with_owner_policy();
        let jid = app
            .create("note", vec![Value::Int(7), Value::from("secret text")])
            .unwrap();
        let obj = app.get("note", jid).unwrap();
        for viewer in [Viewer::User(7), Viewer::User(8), Viewer::Anonymous] {
            let full = app.show_object(&viewer, &obj);
            let mut s = Session::new(viewer);
            let pruned = s.view_object(&app, &obj);
            assert_eq!(full, pruned);
        }
    }

    #[test]
    fn session_rows_prune_guards() {
        let app = app_with_owner_policy();
        for i in 0..4 {
            app.create("note", vec![Value::Int(i), Value::from(format!("n{i}"))])
                .unwrap();
        }
        let rows = app.all("note").unwrap();
        let mut s = Session::new(Viewer::User(2));
        let visible = s.view_rows(&app, &rows);
        assert_eq!(visible.len(), 4, "all rows visible, fields differ");
        let secret_texts: Vec<&Row> = visible
            .iter()
            .copied()
            .filter(|r| r[1] == Value::from("n2"))
            .collect();
        assert_eq!(secret_texts.len(), 1, "only own note shows its text");
    }

    #[test]
    fn db_pruning_reduces_unmarshalled_rows() {
        let mut app = app_with_owner_policy();
        let jid = app
            .create("note", vec![Value::Int(7), Value::from("s")])
            .unwrap();
        let obj = app.get("note", jid).unwrap();
        let mut s = Session::new(Viewer::User(7));
        s.view_object(&app, &obj);
        s.enable_db_pruning(&mut app);
        let rows = app.all("note").unwrap();
        assert_eq!(
            rows.len(),
            1,
            "the inconsistent facet row is never unmarshalled"
        );
        app.db.set_pruning(None);
    }

    #[test]
    fn faceted_scalar_resolution() {
        let app = app_with_owner_policy();
        let jid = app
            .create("note", vec![Value::Int(1), Value::from("s")])
            .unwrap();
        let obj = app.get("note", jid).unwrap();
        let text = form::object_field(&obj, 1);
        let mut s = Session::new(Viewer::Anonymous);
        assert_eq!(s.view_value(&app, &text), Value::from("[private]"));
    }
}
