//! `jacqueline` — a policy-agnostic web framework with dynamic
//! information flow across the application and the database.
//!
//! This crate is the Rust analogue of the paper's Jacqueline
//! framework (Yang et al., PLDI 2016, §2, §5, §6): models declare
//! their information-flow policies **once**, next to the schema, and
//! the runtime + faceted object-relational mapping enforce them
//! everywhere — through application computation and through database
//! queries. Application code contains *no* policy checks.
//!
//! * [`ModelDef`] / [`label_for`] / [`simple_policy`] — schemas with
//!   attached policies and public-view computations (§2.1);
//! * [`App`] — the policy-agnostic object manager (`create`, `all`,
//!   `filter_eq`, `get`, `save`) and the computation sinks
//!   (`show_object`, `show_rows`, `show_value`) that resolve policies
//!   per viewer, via SAT when policies and data are mutually
//!   dependent (§2.3);
//! * [`Session`] — the Early Pruning request path (§3.2): resolve
//!   each label once for the session user and prune all other facets;
//! * [`Router`] / [`Request`] / [`Response`] — a minimal MVC layer
//!   for the case studies and stress tests, with read-only routes
//!   that take shared (`&App`) access;
//! * [`Executor`] — the concurrent request executor: one shared
//!   `App` behind a reader-writer lock, read pages dispatched in
//!   parallel, writes serialized, plus a deterministic sequential
//!   mode that the differential tests pin bit-for-bit;
//! * [`VanillaDb`] — the non-faceted ORM used by the hand-coded
//!   baseline applications the paper compares against.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), form::FormError> {
//! use jacqueline::{simple_policy, App, ModelDef, Viewer};
//! use microdb::{ColumnDef, ColumnType, Value};
//!
//! let mut app = App::new();
//! app.register_model(
//!     ModelDef::public("note", vec![
//!         ColumnDef::new("owner", ColumnType::Int),
//!         ColumnDef::new("text", ColumnType::Str),
//!     ])
//!     .with_policy(simple_policy(
//!         "owner_only",
//!         vec![1],
//!         |_row| vec![Value::from("[private]")],
//!         |args| args.viewer.user_jid() == args.row[0].as_int(),
//!     )),
//! )?;
//!
//! let note = app.create("note", vec![Value::Int(7), Value::from("my secret")])?;
//! let obj = app.get("note", note)?;
//! assert_eq!(app.show_object(&Viewer::User(7), &obj).unwrap()[1], Value::from("my secret"));
//! assert_eq!(app.show_object(&Viewer::User(8), &obj).unwrap()[1], Value::from("[private]"));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod app;
mod auth;
pub mod checkpoint;
mod executor;
mod http;
mod model;
mod rendercache;
pub mod server;
mod session;
mod vanilla;
pub mod wire;

pub use app::App;
pub use auth::{AuthOutcome, Authenticator, SESSION_COOKIE};
pub use checkpoint::{
    add_checkpoint_route, add_health_route, CheckpointObservability, CheckpointStats, RestoreStats,
};
pub use executor::{
    CheckpointPolicy, Executor, ExecutorService, ServedResponse, DEFAULT_QUEUE_DEPTH,
};
pub use http::{Controller, Footprint, ReadController, Request, Response, Router};
pub use model::{label_for, simple_policy, FieldPolicy, ModelDef, PolicyArgs, PolicyFn, Viewer};
pub use rendercache::{RenderCacheStats, RenderCacheStatus};
pub use server::{Server, ServerConfig, Site};
pub use session::Session;
pub use vanilla::VanillaDb;
