//! A minimal MVC request layer: enough to express the paper's
//! "representative actions" and stress tests as routed requests.
//!
//! The paper measured HTTP round-trips through FunkLoad; we simulate
//! the request/controller/response cycle in-process (DESIGN.md §4
//! documents this substitution) — the work that differs between
//! Jacqueline and the hand-coded baseline is all server-side.

use std::collections::BTreeMap;

use crate::app::App;
use crate::model::Viewer;

/// An incoming request: path, authenticated viewer, query params.
#[derive(Clone, Debug)]
pub struct Request {
    /// Route name, e.g. `"papers/all"`.
    pub path: String,
    /// The session user (the Early Pruning speculation target).
    pub viewer: Viewer,
    /// Query parameters.
    pub params: BTreeMap<String, String>,
}

impl Request {
    /// Builds a request with no parameters.
    #[must_use]
    pub fn new(path: &str, viewer: Viewer) -> Request {
        Request {
            path: path.to_owned(),
            viewer,
            params: BTreeMap::new(),
        }
    }

    /// Adds a query parameter (builder style).
    #[must_use]
    pub fn with_param(mut self, key: &str, value: &str) -> Request {
        self.params.insert(key.to_owned(), value.to_owned());
        self
    }

    /// An integer parameter.
    #[must_use]
    pub fn int_param(&self, key: &str) -> Option<i64> {
        self.params.get(key).and_then(|v| v.parse().ok())
    }
}

/// A response: status code and rendered body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    /// HTTP-ish status code.
    pub status: u16,
    /// The rendered page body.
    pub body: String,
}

impl Response {
    /// A 200 response.
    #[must_use]
    pub fn ok(body: String) -> Response {
        Response { status: 200, body }
    }

    /// A 404 response.
    #[must_use]
    pub fn not_found() -> Response {
        Response {
            status: 404,
            body: "not found".to_owned(),
        }
    }

    /// A 500 response.
    #[must_use]
    pub fn error(message: &str) -> Response {
        Response {
            status: 500,
            body: message.to_owned(),
        }
    }
}

/// A write controller: takes exclusive app access and the request,
/// renders a response. `Send + Sync` so routers can be shared across
/// executor worker threads.
pub type Controller = Box<dyn Fn(&mut App, &Request) -> Response + Send + Sync>;

/// A read-only controller: takes *shared* app access, so the
/// concurrent executor can dispatch many of these in parallel under a
/// read lock.
pub type ReadController = Box<dyn Fn(&App, &Request) -> Response + Send + Sync>;

/// Routes requests to controllers by exact path.
///
/// Pages that only read the database register via
/// [`Router::route_read`]; actions that mutate register via
/// [`Router::route`]. The split is what lets the
/// [`Executor`](crate::Executor) run read requests concurrently while
/// serializing writes.
#[derive(Default)]
pub struct Router {
    routes: BTreeMap<String, Controller>,
    read_routes: BTreeMap<String, ReadController>,
}

impl Router {
    /// An empty router.
    #[must_use]
    pub fn new() -> Router {
        Router::default()
    }

    /// Registers a (write) controller under a path.
    pub fn route(
        &mut self,
        path: &str,
        controller: impl Fn(&mut App, &Request) -> Response + Send + Sync + 'static,
    ) {
        self.routes.insert(path.to_owned(), Box::new(controller));
    }

    /// Registers a read-only controller under a path. Read routes are
    /// preferred over write routes at dispatch time.
    pub fn route_read(
        &mut self,
        path: &str,
        controller: impl Fn(&App, &Request) -> Response + Send + Sync + 'static,
    ) {
        self.read_routes
            .insert(path.to_owned(), Box::new(controller));
    }

    /// The read-only controller for `path`, if one is registered —
    /// how the executor decides between the read and the write lock.
    #[must_use]
    pub fn read_controller(&self, path: &str) -> Option<&ReadController> {
        self.read_routes.get(path)
    }

    /// Whether a *write* controller is registered for `path`. The
    /// executor uses this to answer unknown paths 404 without taking
    /// the exclusive lock.
    #[must_use]
    pub fn has_write_route(&self, path: &str) -> bool {
        self.routes.contains_key(path)
    }

    /// Dispatches one request (the sequential path: exclusive access
    /// serves both kinds of route).
    pub fn handle(&self, app: &mut App, request: &Request) -> Response {
        if let Some(c) = self.read_routes.get(&request.path) {
            return c(app, request);
        }
        match self.routes.get(&request.path) {
            Some(c) => c(app, request),
            None => Response::not_found(),
        }
    }

    /// Registered paths (read and write routes), for diagnostics.
    #[must_use]
    pub fn paths(&self) -> Vec<&str> {
        let mut all: Vec<&str> = self
            .routes
            .keys()
            .chain(self.read_routes.keys())
            .map(String::as_str)
            .collect();
        all.sort_unstable();
        all.dedup();
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_dispatches_by_path() {
        let mut router = Router::new();
        router.route("hello", |_, req| Response::ok(format!("hi {}", req.viewer)));
        let mut app = App::new();
        let r = router.handle(&mut app, &Request::new("hello", Viewer::User(1)));
        assert_eq!(r.status, 200);
        assert_eq!(r.body, "hi user#1");
        let miss = router.handle(&mut app, &Request::new("nope", Viewer::Anonymous));
        assert_eq!(miss.status, 404);
    }

    #[test]
    fn params_parse() {
        let req = Request::new("x", Viewer::Anonymous).with_param("id", "42");
        assert_eq!(req.int_param("id"), Some(42));
        assert_eq!(req.int_param("missing"), None);
    }

    #[test]
    fn response_constructors() {
        assert_eq!(Response::not_found().status, 404);
        assert_eq!(Response::error("x").status, 500);
        assert_eq!(Response::ok(String::new()).status, 200);
    }

    #[test]
    fn paths_lists_routes() {
        let mut router = Router::new();
        router.route("b", |_, _| Response::ok(String::new()));
        router.route("a", |_, _| Response::ok(String::new()));
        assert_eq!(router.paths(), vec!["a", "b"]);
    }
}
