//! A minimal MVC request layer: enough to express the paper's
//! "representative actions" and stress tests as routed requests.
//!
//! The paper measured HTTP round-trips through FunkLoad; we simulate
//! the request/controller/response cycle in-process (DESIGN.md §4
//! documents this substitution) — the work that differs between
//! Jacqueline and the hand-coded baseline is all server-side.

use std::collections::{BTreeMap, BTreeSet};

use crate::app::App;
use crate::model::Viewer;

/// An incoming request: path, authenticated viewer, query params.
#[derive(Clone, Debug)]
pub struct Request {
    /// Route name, e.g. `"papers/all"`.
    pub path: String,
    /// The session user (the Early Pruning speculation target).
    pub viewer: Viewer,
    /// Query parameters.
    pub params: BTreeMap<String, String>,
}

impl Request {
    /// Builds a request with no parameters.
    #[must_use]
    pub fn new(path: &str, viewer: Viewer) -> Request {
        Request {
            path: path.to_owned(),
            viewer,
            params: BTreeMap::new(),
        }
    }

    /// Adds a query parameter (builder style).
    #[must_use]
    pub fn with_param(mut self, key: &str, value: &str) -> Request {
        self.params.insert(key.to_owned(), value.to_owned());
        self
    }

    /// An integer parameter.
    #[must_use]
    pub fn int_param(&self, key: &str) -> Option<i64> {
        self.params.get(key).and_then(|v| v.parse().ok())
    }
}

/// A response: status code, rendered body, and (for the wire path)
/// extra headers. The [`wire`](crate::wire) module owns the HTTP/1.1
/// byte format ([`Response::serialize`](crate::wire)); in-process
/// dispatch ignores headers entirely, so the differential grids keep
/// comparing plain bodies.
///
/// Error statuses are distinct on purpose: `400` for requests the
/// server could not parse or that miss required parameters, `403` for
/// requests a policy or the authenticator denied, `404` for unknown
/// routes/objects, `500` for internal failures. Controllers should
/// pick the matching constructor rather than collapsing everything
/// into one.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// The rendered page body.
    pub body: String,
    /// Extra response headers (`Set-Cookie`, `Content-Type`
    /// overrides …), serialized verbatim by the wire layer.
    pub headers: Vec<(String, String)>,
}

impl Response {
    fn with_status(status: u16, body: String) -> Response {
        Response {
            status,
            body,
            headers: Vec::new(),
        }
    }

    /// A 200 response.
    #[must_use]
    pub fn ok(body: String) -> Response {
        Response::with_status(200, body)
    }

    /// A 400 response: the request was syntactically broken or missed
    /// a required parameter.
    #[must_use]
    pub fn bad_request(message: &str) -> Response {
        Response::with_status(400, message.to_owned())
    }

    /// A 403 response: the authenticator or a policy denied the
    /// request outright.
    #[must_use]
    pub fn forbidden(message: &str) -> Response {
        Response::with_status(403, message.to_owned())
    }

    /// A 404 response.
    #[must_use]
    pub fn not_found() -> Response {
        Response::with_status(404, "not found".to_owned())
    }

    /// A 500 response — internal failures only; use
    /// [`Response::bad_request`] / [`Response::forbidden`] /
    /// [`Response::not_found`] for client-attributable errors.
    #[must_use]
    pub fn error(message: &str) -> Response {
        Response::with_status(500, message.to_owned())
    }

    /// A 503 response with `Retry-After: 1` — the server is
    /// *temporarily* unable to take the request (read-only degraded
    /// mode, a full job queue) and the client should back off and
    /// retry, not treat the failure as permanent.
    #[must_use]
    pub fn unavailable(message: &str) -> Response {
        Response::with_status(503, message.to_owned()).with_header("Retry-After", "1")
    }

    /// Appends a response header (builder style).
    #[must_use]
    pub fn with_header(mut self, name: &str, value: &str) -> Response {
        self.headers.push((name.to_owned(), value.to_owned()));
        self
    }

    /// The first header with this (case-insensitive) name, if any.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The standard reason phrase for a status code (used by the wire
    /// serializer and handy in tests).
    #[must_use]
    pub fn status_text(status: u16) -> &'static str {
        match status {
            200 => "OK",
            400 => "Bad Request",
            403 => "Forbidden",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            413 => "Payload Too Large",
            414 => "URI Too Long",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            501 => "Not Implemented",
            503 => "Service Unavailable",
            505 => "HTTP Version Not Supported",
            _ => "Unknown",
        }
    }
}

/// A write controller. Since the application object locks its state
/// internally (per-table storage locks, label/policy locks), write
/// controllers take `&App` like read controllers do — what
/// distinguishes them is *dispatch*: the executor grants a write
/// route exclusive footprint locks on the tables it declares.
/// `Send + Sync` so routers can be shared across executor worker
/// threads.
pub type Controller = Box<dyn Fn(&App, &Request) -> Response + Send + Sync>;

/// A read-only controller: dispatched under *shared* footprint locks,
/// so the concurrent executor can run many of these in parallel.
pub type ReadController = Box<dyn Fn(&App, &Request) -> Response + Send + Sync>;

/// A per-route params-canonicalization hook for the render cache:
/// rewrites a *copy* of the request params into the canonical form
/// used in cache keys, so equivalent requests (`id=07` vs `id=7`,
/// stray unused params) collide onto one cached page. The controller
/// always sees the original params — canonicalization only shapes the
/// key. Like a [`Footprint`], this is an app-author declaration: a
/// hook that conflates params the controller actually distinguishes
/// would serve the wrong page, so canonicalize only what the route
/// provably ignores.
pub type ParamCanonicalizer = Box<dyn Fn(&mut BTreeMap<String, String>) + Send + Sync>;

/// Renders a fragment-registered page's shell: `(prefix, suffix)`
/// around the per-object fragments.
pub type ShellRenderer = Box<dyn Fn(&App, &Request) -> (String, String) + Send + Sync>;

/// Renders one object's fragment for the request's viewer — a full
/// faceted projection, exactly what the complete page would emit for
/// that object (empty if the viewer cannot see it, or it no longer
/// exists).
pub type FragmentRenderer = Box<dyn Fn(&App, &Request, i64) -> String + Send + Sync>;

/// A route's registered fragment decomposition for the render cache's
/// repair path: the page is a shell (prefix + suffix) around one
/// fragment per object of `table`, rendered in first-appearance row
/// order. Registered via [`Router::route_fragments`] (see there for
/// the declaration contract); consulted only by the executor.
pub(crate) struct FragmentSpec {
    /// The table whose objects the fragments decompose.
    pub(crate) table: String,
    /// Renders the shell around the fragments.
    pub(crate) shell: ShellRenderer,
    /// Renders one object's fragment.
    pub(crate) fragment: FragmentRenderer,
}

/// The declared table footprint of a route: which tables its
/// controller may read and which it may write, including tables its
/// models' *policies* consult at output time.
///
/// Footprints are what give the executor table-granular locking: a
/// write request takes exclusive locks only on its `writes` set, so
/// it no longer blocks readers of unrelated tables. Declaring too
/// much costs parallelism; declaring too *little* breaks request
/// isolation (a reader could observe half of a multi-statement
/// write), so when in doubt declare generously — and routes with no
/// footprint at all fall back to whole-app exclusion.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Footprint {
    /// Tables the controller (and the policies it triggers) reads.
    pub reads: BTreeSet<String>,
    /// Tables the controller mutates.
    pub writes: BTreeSet<String>,
}

impl Footprint {
    /// A read-only footprint.
    #[must_use]
    pub fn reads(tables: &[&str]) -> Footprint {
        Footprint {
            reads: tables.iter().map(|t| (*t).to_owned()).collect(),
            writes: BTreeSet::new(),
        }
    }

    /// A footprint with reads and writes.
    #[must_use]
    pub fn new(reads: &[&str], writes: &[&str]) -> Footprint {
        Footprint {
            reads: reads.iter().map(|t| (*t).to_owned()).collect(),
            writes: writes.iter().map(|t| (*t).to_owned()).collect(),
        }
    }

    /// Every table the footprint mentions, in canonical (sorted)
    /// order — the executor's lock-acquisition order.
    pub fn tables(&self) -> impl Iterator<Item = &str> {
        self.reads.union(&self.writes).map(String::as_str)
    }

    /// Whether the footprint writes `table`.
    #[must_use]
    pub fn writes_table(&self, table: &str) -> bool {
        self.writes.contains(table)
    }
}

/// Routes requests to controllers by exact path.
///
/// Pages that only read the database register via
/// [`Router::route_read`] / [`Router::route_read_tables`]; actions
/// that mutate register via [`Router::route`] /
/// [`Router::route_tables`]. The read/write split plus the declared
/// [`Footprint`]s are what let the [`Executor`](crate::Executor) run
/// requests concurrently, serializing only true conflicts on the
/// same tables.
#[derive(Default)]
pub struct Router {
    routes: BTreeMap<String, Controller>,
    read_routes: BTreeMap<String, ReadController>,
    footprints: BTreeMap<String, Footprint>,
    canonicalizers: BTreeMap<String, ParamCanonicalizer>,
    fragments: BTreeMap<String, FragmentSpec>,
    /// Write routes the executor still dispatches while the app is in
    /// read-only degraded mode — the recovery paths themselves
    /// (`admin/checkpoint` must run to *clear* the mode).
    degraded_exempt: BTreeSet<String>,
}

impl Router {
    /// An empty router.
    #[must_use]
    pub fn new() -> Router {
        Router::default()
    }

    /// Registers a (write) controller under a path, with no declared
    /// footprint: the executor dispatches it under whole-app
    /// exclusion.
    pub fn route(
        &mut self,
        path: &str,
        controller: impl Fn(&App, &Request) -> Response + Send + Sync + 'static,
    ) {
        self.routes.insert(path.to_owned(), Box::new(controller));
    }

    /// Registers a (write) controller that declares the tables it
    /// reads and writes; the executor takes exclusive locks only on
    /// `writes` and shared locks on `reads`.
    pub fn route_tables(
        &mut self,
        path: &str,
        reads: &[&str],
        writes: &[&str],
        controller: impl Fn(&App, &Request) -> Response + Send + Sync + 'static,
    ) {
        self.routes.insert(path.to_owned(), Box::new(controller));
        self.footprints
            .insert(path.to_owned(), Footprint::new(reads, writes));
    }

    /// Registers a read-only controller under a path. Read routes are
    /// preferred over write routes at dispatch time. With no declared
    /// footprint the executor takes shared locks on *every* declared
    /// table.
    pub fn route_read(
        &mut self,
        path: &str,
        controller: impl Fn(&App, &Request) -> Response + Send + Sync + 'static,
    ) {
        self.read_routes
            .insert(path.to_owned(), Box::new(controller));
    }

    /// Registers a read-only controller that declares the tables it
    /// touches (including tables consulted by output-time policies).
    pub fn route_read_tables(
        &mut self,
        path: &str,
        tables: &[&str],
        controller: impl Fn(&App, &Request) -> Response + Send + Sync + 'static,
    ) {
        self.read_routes
            .insert(path.to_owned(), Box::new(controller));
        self.footprints
            .insert(path.to_owned(), Footprint::reads(tables));
    }

    /// The read-only controller for `path`, if one is registered —
    /// how the executor decides between shared and exclusive
    /// footprint locks.
    #[must_use]
    pub fn read_controller(&self, path: &str) -> Option<&ReadController> {
        self.read_routes.get(path)
    }

    /// Whether a *write* controller is registered for `path`. The
    /// executor uses this to answer unknown paths 404 without taking
    /// any lock.
    #[must_use]
    pub fn has_write_route(&self, path: &str) -> bool {
        self.routes.contains_key(path)
    }

    /// The declared footprint of `path`, if any.
    #[must_use]
    pub fn footprint(&self, path: &str) -> Option<&Footprint> {
        self.footprints.get(path)
    }

    /// Exempts a write route from the executor's read-only degraded
    /// gate. Only recovery actions belong here: a route that *repairs*
    /// persistence (like `admin/checkpoint`) must stay dispatchable
    /// while ordinary writes answer `503`.
    pub fn exempt_from_degraded(&mut self, path: &str) {
        self.degraded_exempt.insert(path.to_owned());
    }

    /// Whether `path` bypasses the degraded-mode write gate.
    #[must_use]
    pub fn is_degraded_exempt(&self, path: &str) -> bool {
        self.degraded_exempt.contains(path)
    }

    /// Registers a render-cache params canonicalizer for `path` (see
    /// [`ParamCanonicalizer`] for the contract).
    pub fn canonicalize_params(
        &mut self,
        path: &str,
        f: impl Fn(&mut BTreeMap<String, String>) + Send + Sync + 'static,
    ) {
        self.canonicalizers.insert(path.to_owned(), Box::new(f));
    }

    /// The common canonicalizer: keeps only `keys` (params the route
    /// never reads cannot fragment the cache) and normalizes each kept
    /// value through an `i64` parse round-trip, so `id=07`, `id=+7`,
    /// and `id=7` share one cache entry. Unparseable values are left
    /// verbatim — the route answers them 4xx, which is never cached.
    pub fn canonicalize_int_params(&mut self, path: &str, keys: &[&str]) {
        let keys: Vec<String> = keys.iter().map(|k| (*k).to_owned()).collect();
        self.canonicalize_params(path, move |params| {
            params.retain(|k, _| keys.contains(k));
            for value in params.values_mut() {
                if let Ok(n) = value.parse::<i64>() {
                    *value = n.to_string();
                }
            }
        });
    }

    /// The registered canonicalizer for `path`, if any (the executor
    /// applies it to a copy of the params when building cache keys).
    #[must_use]
    pub fn canonicalizer(&self, path: &str) -> Option<&ParamCanonicalizer> {
        self.canonicalizers.get(path)
    }

    /// Registers a fragment renderer for `path`, opting the route's
    /// cached pages into journal-driven repair. `shell` renders the
    /// page's constant surround as `(prefix, suffix)`; `fragment`
    /// renders one object of `table` for the request's viewer,
    /// byte-identically to the slice of the full page that object
    /// produces (empty if the viewer cannot see it, or it no longer
    /// exists).
    ///
    /// Like a [`Footprint`], this is an app-author **declaration**,
    /// with one contract beyond byte-fidelity (which the executor
    /// verifies on every store): a fragment's bytes must not depend on
    /// *other rows of the fragment table*. They may depend freely on
    /// the object's own rows and on any other footprint table — repair
    /// falls back to a full render whenever those tables move. A page
    /// like the conference app's `users/all`, where one user's `role`
    /// row changes how *every* user's email renders, must not register
    /// a fragment renderer over `user_profile`.
    pub fn route_fragments(
        &mut self,
        path: &str,
        table: &str,
        shell: impl Fn(&App, &Request) -> (String, String) + Send + Sync + 'static,
        fragment: impl Fn(&App, &Request, i64) -> String + Send + Sync + 'static,
    ) {
        self.fragments.insert(
            path.to_owned(),
            FragmentSpec {
                table: table.to_owned(),
                shell: Box::new(shell),
                fragment: Box::new(fragment),
            },
        );
    }

    /// The registered fragment spec for `path`, if any.
    pub(crate) fn fragment_spec(&self, path: &str) -> Option<&FragmentSpec> {
        self.fragments.get(path)
    }

    /// Every table declared by any route's footprint, in canonical
    /// order — the executor builds its lock map from this.
    #[must_use]
    pub fn declared_tables(&self) -> BTreeSet<String> {
        self.footprints
            .values()
            .flat_map(|f| f.tables().map(str::to_owned))
            .collect()
    }

    /// Dispatches one request on the calling thread (the sequential
    /// path: no locks, submission order).
    pub fn handle(&self, app: &App, request: &Request) -> Response {
        if let Some(c) = self.read_routes.get(&request.path) {
            return c(app, request);
        }
        match self.routes.get(&request.path) {
            Some(c) => c(app, request),
            None => Response::not_found(),
        }
    }

    /// Registered paths (read and write routes), for diagnostics.
    #[must_use]
    pub fn paths(&self) -> Vec<&str> {
        let mut all: Vec<&str> = self
            .routes
            .keys()
            .chain(self.read_routes.keys())
            .map(String::as_str)
            .collect();
        all.sort_unstable();
        all.dedup();
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_dispatches_by_path() {
        let mut router = Router::new();
        router.route("hello", |_, req| Response::ok(format!("hi {}", req.viewer)));
        let app = App::new();
        let r = router.handle(&app, &Request::new("hello", Viewer::User(1)));
        assert_eq!(r.status, 200);
        assert_eq!(r.body, "hi user#1");
        let miss = router.handle(&app, &Request::new("nope", Viewer::Anonymous));
        assert_eq!(miss.status, 404);
    }

    #[test]
    fn footprints_are_recorded_and_unioned() {
        let mut router = Router::new();
        router.route_read_tables("list", &["b", "a"], |_, _| Response::ok(String::new()));
        router.route_tables("add", &["a"], &["c"], |_, _| Response::ok(String::new()));
        router.route("legacy", |_, _| Response::ok(String::new()));
        let list = router.footprint("list").unwrap();
        assert_eq!(list.tables().collect::<Vec<_>>(), vec!["a", "b"]);
        assert!(!list.writes_table("a"));
        let add = router.footprint("add").unwrap();
        assert!(add.writes_table("c") && !add.writes_table("a"));
        assert!(router.footprint("legacy").is_none());
        let declared: Vec<String> = router.declared_tables().into_iter().collect();
        assert_eq!(declared, vec!["a", "b", "c"]);
    }

    #[test]
    fn params_parse() {
        let req = Request::new("x", Viewer::Anonymous).with_param("id", "42");
        assert_eq!(req.int_param("id"), Some(42));
        assert_eq!(req.int_param("missing"), None);
    }

    #[test]
    fn response_constructors() {
        assert_eq!(Response::not_found().status, 404);
        assert_eq!(Response::error("x").status, 500);
        assert_eq!(Response::ok(String::new()).status, 200);
        assert_eq!(Response::bad_request("p").status, 400);
        assert_eq!(Response::forbidden("p").status, 403);
        let busy = Response::unavailable("overloaded");
        assert_eq!(busy.status, 503);
        assert_eq!(busy.header("Retry-After"), Some("1"));
    }

    #[test]
    fn degraded_exemptions_are_per_path() {
        let mut router = Router::new();
        router.route("admin/checkpoint", |_, _| Response::ok(String::new()));
        router.route("note/add", |_, _| Response::ok(String::new()));
        router.exempt_from_degraded("admin/checkpoint");
        assert!(router.is_degraded_exempt("admin/checkpoint"));
        assert!(!router.is_degraded_exempt("note/add"));
    }

    #[test]
    fn response_headers_lookup_is_case_insensitive() {
        let r = Response::ok(String::new())
            .with_header("Set-Cookie", "session=abc")
            .with_header("X-One", "1");
        assert_eq!(r.header("set-cookie"), Some("session=abc"));
        assert_eq!(r.header("X-ONE"), Some("1"));
        assert_eq!(r.header("missing"), None);
    }

    #[test]
    fn status_text_covers_the_served_codes() {
        for (code, text) in [(200, "OK"), (403, "Forbidden"), (404, "Not Found")] {
            assert_eq!(Response::status_text(code), text);
        }
        assert_eq!(Response::status_text(599), "Unknown");
    }

    #[test]
    fn int_param_canonicalizer_normalizes_and_prunes() {
        let mut router = Router::new();
        router.canonicalize_int_params("papers/one", &["id"]);
        let f = router.canonicalizer("papers/one").unwrap();
        let mut params: BTreeMap<String, String> = [
            ("id".to_owned(), "007".to_owned()),
            ("utm_source".to_owned(), "feed".to_owned()),
        ]
        .into();
        f(&mut params);
        assert_eq!(params.get("id").map(String::as_str), Some("7"));
        assert!(!params.contains_key("utm_source"), "unused params pruned");
        // Unparseable ids stay verbatim (the 400 they produce is
        // never cached anyway).
        let mut bad: BTreeMap<String, String> = [("id".to_owned(), "abc".to_owned())].into();
        f(&mut bad);
        assert_eq!(bad.get("id").map(String::as_str), Some("abc"));
        assert!(router.canonicalizer("papers/all").is_none());
    }

    #[test]
    fn fragment_specs_are_per_path() {
        let mut router = Router::new();
        router.route_read_tables("list", &["t"], |_, _| Response::ok(String::new()));
        router.route_fragments(
            "list",
            "t",
            |_, _| ("head\n".to_owned(), String::new()),
            |_, _, jid| format!("row {jid}\n"),
        );
        let spec = router.fragment_spec("list").unwrap();
        assert_eq!(spec.table, "t");
        let app = App::new();
        let req = Request::new("list", Viewer::Anonymous);
        assert_eq!(
            (spec.shell)(&app, &req),
            ("head\n".to_owned(), String::new())
        );
        assert_eq!((spec.fragment)(&app, &req, 7), "row 7\n");
        assert!(router.fragment_spec("other").is_none());
    }

    #[test]
    fn paths_lists_routes() {
        let mut router = Router::new();
        router.route("b", |_, _| Response::ok(String::new()));
        router.route("a", |_, _| Response::ok(String::new()));
        assert_eq!(router.paths(), vec!["a", "b"]);
    }
}
