//! A generation-validated cache of fully rendered [`Response`]s: the
//! executor serves hot pages as **byte hits** instead of re-running
//! decode, policy resolution, and page assembly per request.
//!
//! PR 6 made decode-cache repair O(1), which left *rendering* — label
//! resolution plus page assembly — the dominant per-request cost on
//! every read route. This module closes that gap with the same
//! validate-on-read discipline the decode cache uses, one level up:
//!
//! * **Key**: `(path, canonicalized params, viewer)`. The viewer is
//!   part of the key because a rendered page *is* a policy-resolved
//!   projection — serving one viewer's bytes to another would leak
//!   exactly what the faceted runtime exists to protect (the LWeb
//!   argument: label-based enforcement must survive caching).
//! * **Stamp**: the generation vector of the route's declared
//!   footprint tables, captured at render time **while the executor
//!   still holds the route's shared footprint locks** — a writer
//!   cannot slip between render and stamp, so a stored entry's vector
//!   is exactly the state its bytes were rendered from.
//! * **Validation**: lookup compares the stored vector against live
//!   [`microdb`] table generations. Any mismatch removes the entry
//!   and hands its carcass back to the executor, which either
//!   *repairs* it from the write journal (below) or discards it
//!   (counted in [`RenderCacheStats::invalidated`]) and falls through
//!   to a fresh render. There is no push invalidation to get wrong —
//!   and because no-op writes are generation-silent, a write that
//!   changes nothing leaves every entry valid.
//! * **Repair**: routes that register a fragment renderer
//!   ([`Router::route_fragments`](crate::Router::route_fragments))
//!   have their pages stored as a [`FragmentedPage`] — a shell
//!   (prefix + suffix) around per-object fragments keyed by jid. On a
//!   generation mismatch where the fragment table is the *only* mover,
//!   the executor pulls the table's `deltas_since(stamped_gen)`
//!   journal, re-renders only the fragments whose jids the deltas
//!   touch (full faceted projection under the entry's viewer — no
//!   bytes are spliced that didn't pass policy enforcement), splices
//!   them into the shell, and restamps the generation vector. A
//!   single-row write thus repairs a hot page at O(1) fragment cost
//!   instead of invalidating every viewer's copy. Window overflow,
//!   movement of any *other* footprint table, or any decomposition
//!   mismatch falls back to the full re-render — correctness never
//!   depends on the journal, exactly like the decode cache's
//!   delta-maintenance contract.
//!
//! Only routes with a *declared* footprint are cacheable: a
//! footprint-less read route gives the cache no table set to stamp,
//! so it is counted ([`RenderCacheStats::uncacheable`]) and rendered
//! normally. Only plain `200` responses with no extra headers are
//! stored — anything setting cookies or error statuses always
//! re-renders.

use std::collections::hash_map::RandomState;
use std::collections::HashMap;
use std::hash::BuildHasher;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::RwLock;

use crate::http::Response;
use crate::model::Viewer;

/// Number of independently locked shards. Lookups on different shards
/// never contend; 16 is plenty for the executor's worker counts.
const SHARDS: usize = 16;

/// Per-shard entry cap. The cache is bounded at `SHARDS * SHARD_CAP`
/// entries total; a full shard evicts an arbitrary resident entry
/// (validate-on-read makes eviction purely a performance decision,
/// never a correctness one).
const SHARD_CAP: usize = 512;

/// How one request interacted with the render cache — exported by the
/// HTTP server as the `X-Render-Cache` response header.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum RenderCacheStatus {
    /// Served from cached bytes; no controller ran.
    Hit,
    /// Rendered and stored (or at least render-cache-eligible).
    Miss,
    /// A stale entry was repaired in place from the write journal:
    /// only the touched fragments re-rendered, the shell and every
    /// untouched fragment's bytes were reused.
    Repair,
    /// Not eligible: cache disabled, write route, footprint-less read
    /// route, or unknown path.
    Bypass,
}

impl RenderCacheStatus {
    /// The wire form: `hit` / `miss` / `repair` / `bypass`.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            RenderCacheStatus::Hit => "hit",
            RenderCacheStatus::Miss => "miss",
            RenderCacheStatus::Repair => "repair",
            RenderCacheStatus::Bypass => "bypass",
        }
    }
}

/// Counters since construction (diagnostics; the `--render-cache`
/// ablation tables report these alongside the timings).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct RenderCacheStats {
    /// Requests served from cached bytes.
    pub hits: u64,
    /// Cacheable requests that had to render (cold key, or a stale
    /// entry that could not be repaired).
    pub misses: u64,
    /// Stale entries repaired in place from the write journal instead
    /// of being discarded.
    pub repairs: u64,
    /// Individual fragments re-rendered across all repairs — the O(1)
    /// claim in numbers: one single-row write to a thousand-row page
    /// should add one here, not a thousand.
    pub repaired_fragments: u64,
    /// Entries dropped because a footprint table's generation moved
    /// and repair was not possible.
    pub invalidated: u64,
    /// Requests on footprint-less read routes, which cannot be
    /// stamped and are never cached.
    pub uncacheable: u64,
}

/// The cache key: one rendered page for one viewer. Params arrive
/// canonicalized (route-registered hook, see
/// [`Router::canonicalize_params`](crate::Router::canonicalize_params))
/// and sorted, so equivalent requests collide onto one entry.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub(crate) struct RenderKey {
    pub(crate) path: String,
    pub(crate) params: Vec<(String, String)>,
    pub(crate) viewer: Viewer,
}

/// The fragment decomposition of a cached page: a shell (prefix +
/// suffix) around per-object fragments in first-appearance row order,
/// each keyed by the jid of the object that rendered it. Stored only
/// for routes that registered a fragment renderer, and only when the
/// decomposition reassembled byte-identically to the controller's own
/// render — so splicing repaired fragments back in can never produce
/// bytes a full render would not.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct FragmentedPage {
    /// The table whose rows the fragments decompose (the journal the
    /// repair path replays).
    pub(crate) table: String,
    /// Bytes before the first fragment.
    pub(crate) prefix: String,
    /// Bytes after the last fragment.
    pub(crate) suffix: String,
    /// `(jid, rendered bytes)` in page order. An object the entry's
    /// viewer cannot see contributes an empty fragment.
    pub(crate) fragments: Vec<(i64, String)>,
}

/// A stored page: the bytes plus the footprint-table generations they
/// were rendered under, and — for fragment-registered routes — the
/// decomposition the repair path splices into.
struct Entry {
    generations: Vec<(String, u64)>,
    response: Response,
    fragments: Option<FragmentedPage>,
}

/// A stale entry, already removed from the cache, handed to the
/// executor for a repair attempt. Counting is deferred until the
/// attempt resolves: [`RenderCache::note_repaired`] on success,
/// [`RenderCache::note_invalidated`] on fallback.
pub(crate) struct StaleEntry {
    /// The generation vector the bytes were rendered under.
    pub(crate) generations: Vec<(String, u64)>,
    /// The stored decomposition, if the entry was fragmented.
    pub(crate) fragments: Option<FragmentedPage>,
}

/// The three-way outcome of a cache probe.
pub(crate) enum Lookup {
    /// A valid entry: serve these bytes.
    Hit(Response),
    /// A stale entry, removed from the map: try to repair it, else
    /// render in full.
    Stale(StaleEntry),
    /// No entry: render in full.
    Cold,
}

/// The bounded, sharded render cache. Owned by the
/// [`App`](crate::App); consulted by the executor after footprint-lock
/// acquisition.
pub(crate) struct RenderCache {
    enabled: AtomicBool,
    fragments_enabled: AtomicBool,
    hasher: RandomState,
    shards: Vec<RwLock<HashMap<RenderKey, Entry>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    repairs: AtomicU64,
    repaired_fragments: AtomicU64,
    invalidated: AtomicU64,
    uncacheable: AtomicU64,
}

impl RenderCache {
    pub(crate) fn new() -> RenderCache {
        RenderCache {
            enabled: AtomicBool::new(true),
            fragments_enabled: AtomicBool::new(true),
            hasher: RandomState::new(),
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            repairs: AtomicU64::new(0),
            repaired_fragments: AtomicU64::new(0),
            invalidated: AtomicU64::new(0),
            uncacheable: AtomicU64::new(0),
        }
    }

    pub(crate) fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Acquire)
    }

    /// Switches the cache on or off (ablation hook). Returns the
    /// previous setting. Disabling drops every stored page.
    pub(crate) fn set_enabled(&self, enabled: bool) -> bool {
        let was = self.enabled.swap(enabled, Ordering::AcqRel);
        if !enabled {
            for shard in &self.shards {
                shard.write().expect("render cache shard").clear();
            }
        }
        was
    }

    /// Whether stale entries may be stored fragmented and repaired
    /// from the write journal (the `--fragments` ablation knob).
    pub(crate) fn fragments_enabled(&self) -> bool {
        self.fragments_enabled.load(Ordering::Acquire)
    }

    /// Switches fragment repair on or off; returns the previous
    /// setting. Disabling reverts to PR 7 behavior — stale entries
    /// are always discarded — without touching stored pages (their
    /// decompositions simply stop being consulted).
    pub(crate) fn set_fragments_enabled(&self, enabled: bool) -> bool {
        self.fragments_enabled.swap(enabled, Ordering::AcqRel)
    }

    pub(crate) fn stats(&self) -> RenderCacheStats {
        RenderCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            repairs: self.repairs.load(Ordering::Relaxed),
            repaired_fragments: self.repaired_fragments.load(Ordering::Relaxed),
            invalidated: self.invalidated.load(Ordering::Relaxed),
            uncacheable: self.uncacheable.load(Ordering::Relaxed),
        }
    }

    /// Records a request on a footprint-less read route — the
    /// "uncacheable: count them, don't cache them" rule.
    pub(crate) fn note_uncacheable(&self) {
        self.uncacheable.fetch_add(1, Ordering::Relaxed);
    }

    /// Resolves a [`Lookup::Stale`] probe as *discarded*: the entry
    /// could not be repaired, the request renders in full. Counted
    /// exactly like the pre-repair cache did — one invalidation plus
    /// the miss the re-render is.
    pub(crate) fn note_invalidated(&self) {
        self.invalidated.fetch_add(1, Ordering::Relaxed);
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Resolves a [`Lookup::Stale`] probe as *repaired*, with the
    /// number of fragments that had to re-render.
    pub(crate) fn note_repaired(&self, fragments: u64) {
        self.repairs.fetch_add(1, Ordering::Relaxed);
        self.repaired_fragments
            .fetch_add(fragments, Ordering::Relaxed);
    }

    fn shard(&self, key: &RenderKey) -> &RwLock<HashMap<RenderKey, Entry>> {
        &self.shards[(self.hasher.hash_one(key) as usize) % SHARDS]
    }

    /// Looks up `key`, validating the stored generation vector with
    /// `live` (a closure over the live database; `None` means the
    /// table is gone, which also invalidates). A valid entry returns
    /// its bytes ([`Lookup::Hit`], counted); a missing entry is a
    /// counted [`Lookup::Cold`]. A *stale* entry is removed from the
    /// map and handed back **uncounted** — the caller resolves it via
    /// [`RenderCache::note_repaired`] or
    /// [`RenderCache::note_invalidated`] once the repair attempt
    /// settles.
    pub(crate) fn lookup(&self, key: &RenderKey, live: impl Fn(&str) -> Option<u64>) -> Lookup {
        let shard = self.shard(key);
        {
            let map = shard.read().expect("render cache shard");
            match map.get(key) {
                None => {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    return Lookup::Cold;
                }
                Some(entry) => {
                    let valid = entry
                        .generations
                        .iter()
                        .all(|(table, gen)| live(table) == Some(*gen));
                    if valid {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        return Lookup::Hit(entry.response.clone());
                    }
                }
            }
        }
        match shard.write().expect("render cache shard").remove(key) {
            Some(entry) => Lookup::Stale(StaleEntry {
                generations: entry.generations,
                fragments: entry.fragments,
            }),
            // Another worker took the stale entry between our read and
            // write locks; for this request the probe was simply cold.
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                Lookup::Cold
            }
        }
    }

    /// Stores a rendered page under the generation vector observed at
    /// render time, with an optional fragment decomposition for the
    /// repair path (dropped while fragments are disabled). Only plain
    /// `200` responses with no extra headers are cacheable — errors
    /// and cookie-setting responses always re-render. A full shard
    /// evicts an arbitrary resident entry.
    pub(crate) fn store(
        &self,
        key: RenderKey,
        generations: Vec<(String, u64)>,
        response: &Response,
        fragments: Option<FragmentedPage>,
    ) {
        if response.status != 200 || !response.headers.is_empty() {
            return;
        }
        let fragments = if self.fragments_enabled() {
            fragments
        } else {
            None
        };
        let shard = self.shard(&key);
        let mut map = shard.write().expect("render cache shard");
        if map.len() >= SHARD_CAP && !map.contains_key(&key) {
            if let Some(evict) = map.keys().next().cloned() {
                map.remove(&evict);
            }
        }
        map.insert(
            key,
            Entry {
                generations,
                response: response.clone(),
                fragments,
            },
        );
    }

    /// Resident entries across all shards (test hook).
    #[cfg(test)]
    fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("render cache shard").len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(path: &str, viewer: Viewer) -> RenderKey {
        RenderKey {
            path: path.to_owned(),
            params: Vec::new(),
            viewer,
        }
    }

    fn gens(v: &[(&str, u64)]) -> Vec<(String, u64)> {
        v.iter().map(|(t, g)| ((*t).to_owned(), *g)).collect()
    }

    fn as_hit(probe: Lookup) -> Option<Response> {
        match probe {
            Lookup::Hit(response) => Some(response),
            Lookup::Stale(_) | Lookup::Cold => None,
        }
    }

    fn page(table: &str, fragments: &[(i64, &str)]) -> FragmentedPage {
        FragmentedPage {
            table: table.to_owned(),
            prefix: "== P ==\n".to_owned(),
            suffix: String::new(),
            fragments: fragments
                .iter()
                .map(|(jid, f)| (*jid, (*f).to_owned()))
                .collect(),
        }
    }

    #[test]
    fn hit_after_store_while_generations_hold() {
        let cache = RenderCache::new();
        let k = key("papers/all", Viewer::User(1));
        assert!(matches!(cache.lookup(&k, |_| Some(3)), Lookup::Cold));
        cache.store(
            k.clone(),
            gens(&[("paper", 3)]),
            &Response::ok("page".into()),
            None,
        );
        let hit = as_hit(cache.lookup(&k, |_| Some(3))).expect("valid entry hits");
        assert_eq!(hit.body, "page");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.invalidated), (1, 1, 0));
    }

    #[test]
    fn generation_move_invalidates_exactly_once() {
        let cache = RenderCache::new();
        let k = key("papers/all", Viewer::User(1));
        cache.store(
            k.clone(),
            gens(&[("paper", 3)]),
            &Response::ok("old".into()),
            None,
        );
        let probe = cache.lookup(&k, |_| Some(4));
        assert!(matches!(probe, Lookup::Stale(_)), "stale vector");
        assert_eq!(cache.len(), 0, "stale entry removed");
        // A stale probe is uncounted until the caller resolves it.
        let stats = cache.stats();
        assert_eq!((stats.misses, stats.invalidated), (0, 0));
        cache.note_invalidated();
        let stats = cache.stats();
        assert_eq!((stats.misses, stats.invalidated), (1, 1));
        // The follow-up miss is a plain cold miss, not another
        // invalidation.
        assert!(matches!(cache.lookup(&k, |_| Some(4)), Lookup::Cold));
        assert_eq!(cache.stats().invalidated, 1);
    }

    #[test]
    fn dropped_table_invalidates() {
        let cache = RenderCache::new();
        let k = key("papers/all", Viewer::Anonymous);
        cache.store(
            k.clone(),
            gens(&[("paper", 1)]),
            &Response::ok("p".into()),
            None,
        );
        assert!(matches!(cache.lookup(&k, |_| None), Lookup::Stale(_)));
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn stale_entries_carry_their_decomposition_out() {
        let cache = RenderCache::new();
        let k = key("papers/all", Viewer::User(1));
        cache.store(
            k.clone(),
            gens(&[("paper", 3)]),
            &Response::ok("== P ==\na\nb\n".into()),
            Some(page("paper", &[(1, "a\n"), (2, "b\n")])),
        );
        let Lookup::Stale(stale) = cache.lookup(&k, |_| Some(4)) else {
            panic!("stale probe expected");
        };
        assert_eq!(stale.generations, gens(&[("paper", 3)]));
        let fragments = stale.fragments.expect("decomposition preserved");
        assert_eq!(fragments.table, "paper");
        assert_eq!(fragments.fragments.len(), 2);
        cache.note_repaired(1);
        let stats = cache.stats();
        assert_eq!((stats.repairs, stats.repaired_fragments), (1, 1));
        assert_eq!(
            (stats.misses, stats.invalidated),
            (0, 0),
            "a repair is neither a miss nor an invalidation"
        );
    }

    #[test]
    fn disabling_fragments_strips_decompositions_at_store() {
        let cache = RenderCache::new();
        assert!(cache.set_fragments_enabled(false), "was enabled");
        let k = key("papers/all", Viewer::User(1));
        cache.store(
            k.clone(),
            gens(&[("paper", 3)]),
            &Response::ok("p".into()),
            Some(page("paper", &[(1, "p")])),
        );
        let Lookup::Stale(stale) = cache.lookup(&k, |_| Some(4)) else {
            panic!("stale probe expected");
        };
        assert!(
            stale.fragments.is_none(),
            "fragments-off stores plain entries (the full-invalidate arm)"
        );
        assert!(!cache.set_fragments_enabled(true), "was disabled");
    }

    #[test]
    fn viewers_never_share_entries() {
        let cache = RenderCache::new();
        let alice = key("papers/all", Viewer::User(1));
        let bob = key("papers/all", Viewer::User(2));
        cache.store(
            alice.clone(),
            gens(&[("paper", 1)]),
            &Response::ok("alice's view".into()),
            None,
        );
        assert!(
            as_hit(cache.lookup(&bob, |_| Some(1))).is_none(),
            "a page rendered for one viewer must never serve another"
        );
        assert!(as_hit(cache.lookup(&key("papers/all", Viewer::Anonymous), |_| Some(1))).is_none());
        let hit = as_hit(cache.lookup(&alice, |_| Some(1))).unwrap();
        assert_eq!(hit.body, "alice's view");
    }

    #[test]
    fn params_distinguish_entries() {
        let cache = RenderCache::new();
        let mut one = key("papers/one", Viewer::User(1));
        one.params = vec![("id".to_owned(), "1".to_owned())];
        let mut two = one.clone();
        two.params = vec![("id".to_owned(), "2".to_owned())];
        cache.store(
            one.clone(),
            gens(&[("paper", 1)]),
            &Response::ok("p1".into()),
            None,
        );
        assert!(as_hit(cache.lookup(&two, |_| Some(1))).is_none());
        assert_eq!(as_hit(cache.lookup(&one, |_| Some(1))).unwrap().body, "p1");
    }

    #[test]
    fn only_plain_200_responses_are_stored() {
        let cache = RenderCache::new();
        let k = key("x", Viewer::Anonymous);
        cache.store(k.clone(), Vec::new(), &Response::not_found(), None);
        cache.store(k.clone(), Vec::new(), &Response::forbidden("no"), None);
        cache.store(
            k.clone(),
            Vec::new(),
            &Response::ok("s".into()).with_header("Set-Cookie", "session=x"),
            None,
        );
        assert_eq!(cache.len(), 0, "errors and cookie-setters never cached");
        cache.store(k.clone(), Vec::new(), &Response::ok("plain".into()), None);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn disable_clears_and_reports_previous_setting() {
        let cache = RenderCache::new();
        let k = key("papers/all", Viewer::User(1));
        cache.store(
            k.clone(),
            gens(&[("paper", 1)]),
            &Response::ok("p".into()),
            None,
        );
        assert_eq!(cache.len(), 1);
        assert!(cache.set_enabled(false), "was enabled");
        assert_eq!(cache.len(), 0, "disable drops stored pages");
        assert!(!cache.set_enabled(true), "was disabled");
    }

    #[test]
    fn shard_cap_bounds_residency() {
        let cache = RenderCache::new();
        for i in 0..(SHARDS * SHARD_CAP * 2) {
            cache.store(
                key(&format!("page/{i}"), Viewer::Anonymous),
                gens(&[("t", 1)]),
                &Response::ok(i.to_string()),
                None,
            );
        }
        assert!(
            cache.len() <= SHARDS * SHARD_CAP,
            "cache must stay bounded, holds {}",
            cache.len()
        );
    }

    #[test]
    fn status_wire_forms() {
        assert_eq!(RenderCacheStatus::Hit.as_str(), "hit");
        assert_eq!(RenderCacheStatus::Miss.as_str(), "miss");
        assert_eq!(RenderCacheStatus::Repair.as_str(), "repair");
        assert_eq!(RenderCacheStatus::Bypass.as_str(), "bypass");
    }
}
