//! A generation-validated cache of fully rendered [`Response`]s: the
//! executor serves hot pages as **byte hits** instead of re-running
//! decode, policy resolution, and page assembly per request.
//!
//! PR 6 made decode-cache repair O(1), which left *rendering* — label
//! resolution plus page assembly — the dominant per-request cost on
//! every read route. This module closes that gap with the same
//! validate-on-read discipline the decode cache uses, one level up:
//!
//! * **Key**: `(path, canonicalized params, viewer)`. The viewer is
//!   part of the key because a rendered page *is* a policy-resolved
//!   projection — serving one viewer's bytes to another would leak
//!   exactly what the faceted runtime exists to protect (the LWeb
//!   argument: label-based enforcement must survive caching).
//! * **Stamp**: the generation vector of the route's declared
//!   footprint tables, captured at render time **while the executor
//!   still holds the route's shared footprint locks** — a writer
//!   cannot slip between render and stamp, so a stored entry's vector
//!   is exactly the state its bytes were rendered from.
//! * **Validation**: lookup compares the stored vector against live
//!   [`microdb`] table generations. Any mismatch removes the entry
//!   (counted in [`RenderCacheStats::invalidated`]) and falls through
//!   to a fresh render. There is no push invalidation to get wrong —
//!   and because no-op writes are generation-silent, a write that
//!   changes nothing leaves every entry valid.
//!
//! Only routes with a *declared* footprint are cacheable: a
//! footprint-less read route gives the cache no table set to stamp,
//! so it is counted ([`RenderCacheStats::uncacheable`]) and rendered
//! normally. Only plain `200` responses with no extra headers are
//! stored — anything setting cookies or error statuses always
//! re-renders.

use std::collections::hash_map::RandomState;
use std::collections::HashMap;
use std::hash::BuildHasher;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::RwLock;

use crate::http::Response;
use crate::model::Viewer;

/// Number of independently locked shards. Lookups on different shards
/// never contend; 16 is plenty for the executor's worker counts.
const SHARDS: usize = 16;

/// Per-shard entry cap. The cache is bounded at `SHARDS * SHARD_CAP`
/// entries total; a full shard evicts an arbitrary resident entry
/// (validate-on-read makes eviction purely a performance decision,
/// never a correctness one).
const SHARD_CAP: usize = 512;

/// How one request interacted with the render cache — exported by the
/// HTTP server as the `X-Render-Cache` response header.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum RenderCacheStatus {
    /// Served from cached bytes; no controller ran.
    Hit,
    /// Rendered and stored (or at least render-cache-eligible).
    Miss,
    /// Not eligible: cache disabled, write route, footprint-less read
    /// route, or unknown path.
    Bypass,
}

impl RenderCacheStatus {
    /// The wire form: `hit` / `miss` / `bypass`.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            RenderCacheStatus::Hit => "hit",
            RenderCacheStatus::Miss => "miss",
            RenderCacheStatus::Bypass => "bypass",
        }
    }
}

/// Counters since construction (diagnostics; the `--render-cache`
/// ablation tables report these alongside the timings).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct RenderCacheStats {
    /// Requests served from cached bytes.
    pub hits: u64,
    /// Cacheable requests that had to render (cold key).
    pub misses: u64,
    /// Entries dropped because a footprint table's generation moved.
    pub invalidated: u64,
    /// Requests on footprint-less read routes, which cannot be
    /// stamped and are never cached.
    pub uncacheable: u64,
}

/// The cache key: one rendered page for one viewer. Params arrive
/// canonicalized (route-registered hook, see
/// [`Router::canonicalize_params`](crate::Router::canonicalize_params))
/// and sorted, so equivalent requests collide onto one entry.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub(crate) struct RenderKey {
    pub(crate) path: String,
    pub(crate) params: Vec<(String, String)>,
    pub(crate) viewer: Viewer,
}

/// A stored page: the bytes plus the footprint-table generations they
/// were rendered under.
struct Entry {
    generations: Vec<(String, u64)>,
    response: Response,
}

/// The bounded, sharded render cache. Owned by the
/// [`App`](crate::App); consulted by the executor after footprint-lock
/// acquisition.
pub(crate) struct RenderCache {
    enabled: AtomicBool,
    hasher: RandomState,
    shards: Vec<RwLock<HashMap<RenderKey, Entry>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidated: AtomicU64,
    uncacheable: AtomicU64,
}

impl RenderCache {
    pub(crate) fn new() -> RenderCache {
        RenderCache {
            enabled: AtomicBool::new(true),
            hasher: RandomState::new(),
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidated: AtomicU64::new(0),
            uncacheable: AtomicU64::new(0),
        }
    }

    pub(crate) fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Acquire)
    }

    /// Switches the cache on or off (ablation hook). Returns the
    /// previous setting. Disabling drops every stored page.
    pub(crate) fn set_enabled(&self, enabled: bool) -> bool {
        let was = self.enabled.swap(enabled, Ordering::AcqRel);
        if !enabled {
            for shard in &self.shards {
                shard.write().expect("render cache shard").clear();
            }
        }
        was
    }

    pub(crate) fn stats(&self) -> RenderCacheStats {
        RenderCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalidated: self.invalidated.load(Ordering::Relaxed),
            uncacheable: self.uncacheable.load(Ordering::Relaxed),
        }
    }

    /// Records a request on a footprint-less read route — the
    /// "uncacheable: count them, don't cache them" rule.
    pub(crate) fn note_uncacheable(&self) {
        self.uncacheable.fetch_add(1, Ordering::Relaxed);
    }

    fn shard(&self, key: &RenderKey) -> &RwLock<HashMap<RenderKey, Entry>> {
        &self.shards[(self.hasher.hash_one(key) as usize) % SHARDS]
    }

    /// Looks up `key`, validating the stored generation vector with
    /// `live` (a closure over the live database; `None` means the
    /// table is gone, which also invalidates). A valid entry returns
    /// its bytes; a stale entry is removed and counted. Either way the
    /// caller learns whether to render.
    pub(crate) fn lookup(
        &self,
        key: &RenderKey,
        live: impl Fn(&str) -> Option<u64>,
    ) -> Option<Response> {
        let shard = self.shard(key);
        let stale = {
            let map = shard.read().expect("render cache shard");
            match map.get(key) {
                None => {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    return None;
                }
                Some(entry) => {
                    let valid = entry
                        .generations
                        .iter()
                        .all(|(table, gen)| live(table) == Some(*gen));
                    if valid {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        return Some(entry.response.clone());
                    }
                    true
                }
            }
        };
        if stale {
            shard.write().expect("render cache shard").remove(key);
            self.invalidated.fetch_add(1, Ordering::Relaxed);
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        None
    }

    /// Stores a rendered page under the generation vector observed at
    /// render time. Only plain `200` responses with no extra headers
    /// are cacheable — errors and cookie-setting responses always
    /// re-render. A full shard evicts an arbitrary resident entry.
    pub(crate) fn store(
        &self,
        key: RenderKey,
        generations: Vec<(String, u64)>,
        response: &Response,
    ) {
        if response.status != 200 || !response.headers.is_empty() {
            return;
        }
        let shard = self.shard(&key);
        let mut map = shard.write().expect("render cache shard");
        if map.len() >= SHARD_CAP && !map.contains_key(&key) {
            if let Some(evict) = map.keys().next().cloned() {
                map.remove(&evict);
            }
        }
        map.insert(
            key,
            Entry {
                generations,
                response: response.clone(),
            },
        );
    }

    /// Resident entries across all shards (test hook).
    #[cfg(test)]
    fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("render cache shard").len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(path: &str, viewer: Viewer) -> RenderKey {
        RenderKey {
            path: path.to_owned(),
            params: Vec::new(),
            viewer,
        }
    }

    fn gens(v: &[(&str, u64)]) -> Vec<(String, u64)> {
        v.iter().map(|(t, g)| ((*t).to_owned(), *g)).collect()
    }

    #[test]
    fn hit_after_store_while_generations_hold() {
        let cache = RenderCache::new();
        let k = key("papers/all", Viewer::User(1));
        assert!(cache.lookup(&k, |_| Some(3)).is_none());
        cache.store(
            k.clone(),
            gens(&[("paper", 3)]),
            &Response::ok("page".into()),
        );
        let hit = cache.lookup(&k, |_| Some(3)).expect("valid entry hits");
        assert_eq!(hit.body, "page");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.invalidated), (1, 1, 0));
    }

    #[test]
    fn generation_move_invalidates_exactly_once() {
        let cache = RenderCache::new();
        let k = key("papers/all", Viewer::User(1));
        cache.store(
            k.clone(),
            gens(&[("paper", 3)]),
            &Response::ok("old".into()),
        );
        assert!(cache.lookup(&k, |_| Some(4)).is_none(), "stale vector");
        assert_eq!(cache.stats().invalidated, 1);
        assert_eq!(cache.len(), 0, "stale entry removed");
        // The follow-up miss is a plain cold miss, not another
        // invalidation.
        assert!(cache.lookup(&k, |_| Some(4)).is_none());
        assert_eq!(cache.stats().invalidated, 1);
    }

    #[test]
    fn dropped_table_invalidates() {
        let cache = RenderCache::new();
        let k = key("papers/all", Viewer::Anonymous);
        cache.store(k.clone(), gens(&[("paper", 1)]), &Response::ok("p".into()));
        assert!(cache.lookup(&k, |_| None).is_none());
        assert_eq!(cache.stats().invalidated, 1);
    }

    #[test]
    fn viewers_never_share_entries() {
        let cache = RenderCache::new();
        let alice = key("papers/all", Viewer::User(1));
        let bob = key("papers/all", Viewer::User(2));
        cache.store(
            alice.clone(),
            gens(&[("paper", 1)]),
            &Response::ok("alice's view".into()),
        );
        assert!(
            cache.lookup(&bob, |_| Some(1)).is_none(),
            "a page rendered for one viewer must never serve another"
        );
        assert!(cache
            .lookup(&key("papers/all", Viewer::Anonymous), |_| Some(1))
            .is_none());
        let hit = cache.lookup(&alice, |_| Some(1)).unwrap();
        assert_eq!(hit.body, "alice's view");
    }

    #[test]
    fn params_distinguish_entries() {
        let cache = RenderCache::new();
        let mut one = key("papers/one", Viewer::User(1));
        one.params = vec![("id".to_owned(), "1".to_owned())];
        let mut two = one.clone();
        two.params = vec![("id".to_owned(), "2".to_owned())];
        cache.store(
            one.clone(),
            gens(&[("paper", 1)]),
            &Response::ok("p1".into()),
        );
        assert!(cache.lookup(&two, |_| Some(1)).is_none());
        assert_eq!(cache.lookup(&one, |_| Some(1)).unwrap().body, "p1");
    }

    #[test]
    fn only_plain_200_responses_are_stored() {
        let cache = RenderCache::new();
        let k = key("x", Viewer::Anonymous);
        cache.store(k.clone(), Vec::new(), &Response::not_found());
        cache.store(k.clone(), Vec::new(), &Response::forbidden("no"));
        cache.store(
            k.clone(),
            Vec::new(),
            &Response::ok("s".into()).with_header("Set-Cookie", "session=x"),
        );
        assert_eq!(cache.len(), 0, "errors and cookie-setters never cached");
        cache.store(k.clone(), Vec::new(), &Response::ok("plain".into()));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn disable_clears_and_reports_previous_setting() {
        let cache = RenderCache::new();
        let k = key("papers/all", Viewer::User(1));
        cache.store(k.clone(), gens(&[("paper", 1)]), &Response::ok("p".into()));
        assert_eq!(cache.len(), 1);
        assert!(cache.set_enabled(false), "was enabled");
        assert_eq!(cache.len(), 0, "disable drops stored pages");
        assert!(!cache.set_enabled(true), "was disabled");
    }

    #[test]
    fn shard_cap_bounds_residency() {
        let cache = RenderCache::new();
        for i in 0..(SHARDS * SHARD_CAP * 2) {
            cache.store(
                key(&format!("page/{i}"), Viewer::Anonymous),
                gens(&[("t", 1)]),
                &Response::ok(i.to_string()),
            );
        }
        assert!(
            cache.len() <= SHARDS * SHARD_CAP,
            "cache must stay bounded, holds {}",
            cache.len()
        );
    }

    #[test]
    fn status_wire_forms() {
        assert_eq!(RenderCacheStatus::Hit.as_str(), "hit");
        assert_eq!(RenderCacheStatus::Miss.as_str(), "miss");
        assert_eq!(RenderCacheStatus::Bypass.as_str(), "bypass");
    }
}
