//! Session authentication: viewer identity is bound at the
//! connection boundary, not deep in the application.
//!
//! In the in-process harness a test constructs `Request { viewer }`
//! directly — fine for trusted callers, but a real socket peer must
//! never get to *claim* a viewer. The [`Authenticator`] is the single
//! place wire traffic turns into a [`Viewer`]: `login` mints an
//! opaque session token for an authenticated principal, and
//! [`Authenticator::authenticate`] resolves a parsed
//! [`WireRequest`]'s session cookie (or `X-Session` /
//! `Authorization: Bearer` header) back into the viewer. An absent
//! token is an anonymous request; an *invalid* token is rejected
//! outright (the caller answers 403) rather than silently downgraded
//! — a stale session must be visible to the client, not turn into an
//! information-flow change.

use std::collections::HashMap;
use std::hash::{BuildHasher, RandomState};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

use crate::model::Viewer;
use crate::wire::WireRequest;

/// The cookie name carrying the session token (tokens are also
/// accepted via the `X-Session` and `Authorization: Bearer` headers,
/// never via request parameters — a token in a URL would leak into
/// logs and history).
pub const SESSION_COOKIE: &str = "session";

/// Outcome of resolving a wire request's credentials.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AuthOutcome {
    /// No token presented: the anonymous viewer.
    Anonymous,
    /// A live token: the logged-in viewer.
    Viewer(Viewer),
    /// A token was presented but is unknown/expired — answer 403.
    BadToken,
}

/// An in-memory session store mapping opaque tokens to viewers.
///
/// Tokens are unguessable in the practical sense (a per-process
/// random key mixed with a counter through `SipHash`), not
/// cryptographic — the reproduction's threat model stops at "the
/// client cannot forge another user's session by counting".
#[derive(Debug, Default)]
pub struct Authenticator {
    sessions: RwLock<HashMap<String, Viewer>>,
    counter: AtomicU64,
    key: RandomState,
}

impl Authenticator {
    /// An empty session store.
    #[must_use]
    pub fn new() -> Authenticator {
        Authenticator::default()
    }

    /// Mints a fresh session token for a viewer. The caller has
    /// already authenticated the principal (checked a password,
    /// looked up the profile …) — this only records the binding.
    pub fn login(&self, viewer: Viewer) -> String {
        let n = self.counter.fetch_add(1, Ordering::Relaxed);
        let a = self.key.hash_one((n, 0x6a61_6371u64));
        let b = self.key.hash_one((n, a));
        let token = format!("s{n}-{a:016x}{b:016x}");
        self.sessions
            .write()
            .expect("session lock")
            .insert(token.clone(), viewer);
        token
    }

    /// Forgets a token (logout). Unknown tokens are ignored.
    pub fn logout(&self, token: &str) {
        self.sessions.write().expect("session lock").remove(token);
    }

    /// The viewer a live token maps to.
    #[must_use]
    pub fn viewer_for(&self, token: &str) -> Option<Viewer> {
        self.sessions
            .read()
            .expect("session lock")
            .get(token)
            .cloned()
    }

    /// Number of live sessions.
    #[must_use]
    pub fn live_sessions(&self) -> usize {
        self.sessions.read().expect("session lock").len()
    }

    /// Resolves a wire request's credentials: the `session` cookie,
    /// then the `X-Session` header, then `Authorization: Bearer`.
    #[must_use]
    pub fn authenticate(&self, request: &WireRequest) -> AuthOutcome {
        let token = request
            .cookies
            .get(SESSION_COOKIE)
            .map(String::as_str)
            .or_else(|| request.header("x-session"))
            .or_else(|| {
                request
                    .header("authorization")
                    .and_then(|v| v.strip_prefix("Bearer "))
            });
        match token {
            None => AuthOutcome::Anonymous,
            Some(t) => match self.viewer_for(t) {
                Some(v) => AuthOutcome::Viewer(v),
                None => AuthOutcome::BadToken,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn wire_with(headers: Vec<(String, String)>, cookies: &[(&str, &str)]) -> WireRequest {
        WireRequest {
            method: "GET".into(),
            path: "x".into(),
            params: BTreeMap::new(),
            headers,
            cookies: cookies
                .iter()
                .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
                .collect(),
            body: Vec::new(),
            keep_alive: true,
        }
    }

    #[test]
    fn login_round_trips_and_logout_revokes() {
        let auth = Authenticator::new();
        let token = auth.login(Viewer::User(7));
        assert_eq!(auth.viewer_for(&token), Some(Viewer::User(7)));
        assert_eq!(auth.live_sessions(), 1);
        auth.logout(&token);
        assert_eq!(auth.viewer_for(&token), None);
        assert_eq!(auth.live_sessions(), 0);
    }

    #[test]
    fn tokens_are_unique_and_not_sequential_guessable() {
        let auth = Authenticator::new();
        let a = auth.login(Viewer::User(1));
        let b = auth.login(Viewer::User(2));
        assert_ne!(a, b);
        // The variable part is a 128-bit keyed hash, not the counter.
        assert!(a.len() > 30 && b.len() > 30, "{a} {b}");
    }

    #[test]
    fn authenticate_resolves_cookie_then_headers() {
        let auth = Authenticator::new();
        let token = auth.login(Viewer::User(3));
        let by_cookie = wire_with(Vec::new(), &[(SESSION_COOKIE, token.as_str())]);
        assert_eq!(
            auth.authenticate(&by_cookie),
            AuthOutcome::Viewer(Viewer::User(3))
        );
        let by_header = wire_with(vec![("x-session".into(), token.clone())], &[]);
        assert_eq!(
            auth.authenticate(&by_header),
            AuthOutcome::Viewer(Viewer::User(3))
        );
        let by_bearer = wire_with(
            vec![("authorization".into(), format!("Bearer {token}"))],
            &[],
        );
        assert_eq!(
            auth.authenticate(&by_bearer),
            AuthOutcome::Viewer(Viewer::User(3))
        );
    }

    #[test]
    fn absent_token_is_anonymous_but_bad_token_is_rejected() {
        let auth = Authenticator::new();
        assert_eq!(
            auth.authenticate(&wire_with(Vec::new(), &[])),
            AuthOutcome::Anonymous
        );
        assert_eq!(
            auth.authenticate(&wire_with(Vec::new(), &[(SESSION_COOKIE, "forged")])),
            AuthOutcome::BadToken
        );
    }
}
