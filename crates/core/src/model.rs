//! Model definitions: schemas with attached information-flow policies.
//!
//! This is the Rust analogue of a Jacqueline `models.py` (§2.1): a
//! model declares its fields, and for each protected field group a
//! `label_for` policy plus a `get_public_*` function computing the
//! public facet. Everything else in an application stays
//! policy-agnostic.

use std::fmt;
use std::sync::Arc;

use faceted::Faceted;
use form::FormDb;
use microdb::{ColumnDef, Row, Value};

/// The viewing context (the `ctxt` argument of Jacqueline policies):
/// who is looking at the page.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Viewer {
    /// Not logged in.
    Anonymous,
    /// A logged-in principal, by the `jid` of their profile object.
    User(i64),
}

impl Viewer {
    /// The profile `jid`, if logged in.
    #[must_use]
    pub fn user_jid(&self) -> Option<i64> {
        match self {
            Viewer::Anonymous => None,
            Viewer::User(j) => Some(*j),
        }
    }
}

impl fmt::Display for Viewer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Viewer::Anonymous => write!(f, "anonymous"),
            Viewer::User(j) => write!(f, "user#{j}"),
        }
    }
}

/// Arguments a policy receives: the *creation-time* row it protects,
/// the row's own object id, the viewer, and the database **at output
/// time** (§2.1.2). Policies get *shared* database access: output-time
/// queries are reads, which lets many request sessions resolve
/// policies concurrently against one database.
pub struct PolicyArgs<'a> {
    /// The protected row as it was when the value was created.
    pub row: &'a Row,
    /// The `jid` of the object the policy protects.
    pub jid: i64,
    /// The principal viewing the output.
    pub viewer: &'a Viewer,
    /// The live database — policies may run (read-only) queries.
    pub db: &'a FormDb,
}

/// A policy check: may itself compute on faceted data, in which case
/// the result is a faceted Boolean and resolution goes through the
/// constraint solver (the mutual-dependency case of §2.3). Checks are
/// `Send + Sync` so registered models can be shared across executor
/// worker threads.
pub type PolicyFn = Arc<dyn Fn(&mut PolicyArgs<'_>) -> Faceted<bool> + Send + Sync>;

/// Computes the public facets for a policy's protected fields, given
/// the full row (the `jacqueline_get_public_*` methods).
pub type PublicViewFn = Arc<dyn Fn(&Row) -> Vec<Value> + Send + Sync>;

/// One `label_for(fields…)` declaration: which columns the label
/// guards, how to compute their public view, and the policy deciding
/// who sees the secret view.
#[derive(Clone)]
pub struct FieldPolicy {
    /// Diagnostic name for the allocated labels.
    pub label_name: String,
    /// Indexes of the protected columns.
    pub fields: Vec<usize>,
    /// Public-facet computation for exactly those columns.
    pub public_view: PublicViewFn,
    /// The `label_for` check.
    pub check: PolicyFn,
}

impl fmt::Debug for FieldPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FieldPolicy")
            .field("label_name", &self.label_name)
            .field("fields", &self.fields)
            .finish_non_exhaustive()
    }
}

/// A model: named columns plus field policies.
#[derive(Clone, Debug)]
pub struct ModelDef {
    /// Table name.
    pub name: String,
    /// User columns (the FORM adds `jid`/`jvars`).
    pub columns: Vec<ColumnDef>,
    /// Field policies; an empty list means a fully public model.
    pub policies: Vec<FieldPolicy>,
}

impl ModelDef {
    /// A model with no policies (fully public).
    #[must_use]
    pub fn public(name: &str, columns: Vec<ColumnDef>) -> ModelDef {
        ModelDef {
            name: name.to_owned(),
            columns,
            policies: Vec::new(),
        }
    }

    /// Adds a field policy (builder style).
    #[must_use]
    pub fn with_policy(mut self, policy: FieldPolicy) -> ModelDef {
        self.policies.push(policy);
        self
    }

    /// Index of a named column.
    ///
    /// # Panics
    ///
    /// Panics if the column does not exist — model definitions are
    /// static program structure, so this is a programming error.
    #[must_use]
    pub fn col(&self, name: &str) -> usize {
        self.columns
            .iter()
            .position(|c| c.name() == name)
            .unwrap_or_else(|| panic!("model {} has no column {name}", self.name))
    }
}

/// Convenience constructor for a [`FieldPolicy`].
pub fn label_for(
    label_name: &str,
    fields: Vec<usize>,
    public_view: impl Fn(&Row) -> Vec<Value> + Send + Sync + 'static,
    check: impl Fn(&mut PolicyArgs<'_>) -> Faceted<bool> + Send + Sync + 'static,
) -> FieldPolicy {
    FieldPolicy {
        label_name: label_name.to_owned(),
        fields,
        public_view: Arc::new(public_view),
        check: Arc::new(check),
    }
}

/// Convenience: a policy returning a plain Boolean.
pub fn simple_policy(
    label_name: &str,
    fields: Vec<usize>,
    public_view: impl Fn(&Row) -> Vec<Value> + Send + Sync + 'static,
    check: impl Fn(&mut PolicyArgs<'_>) -> bool + Send + Sync + 'static,
) -> FieldPolicy {
    label_for(label_name, fields, public_view, move |args| {
        Faceted::leaf(check(args))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use microdb::ColumnType;

    #[test]
    fn model_column_lookup() {
        let m = ModelDef::public(
            "t",
            vec![
                ColumnDef::new("a", ColumnType::Int),
                ColumnDef::new("b", ColumnType::Str),
            ],
        );
        assert_eq!(m.col("b"), 1);
    }

    #[test]
    #[should_panic(expected = "no column")]
    fn unknown_column_panics() {
        let _ = ModelDef::public("t", vec![]).col("zzz");
    }

    #[test]
    fn viewer_accessors() {
        assert_eq!(Viewer::User(3).user_jid(), Some(3));
        assert_eq!(Viewer::Anonymous.user_jid(), None);
        assert_eq!(Viewer::User(3).to_string(), "user#3");
    }

    #[test]
    fn builders_attach_policies() {
        let m = ModelDef::public("t", vec![ColumnDef::new("a", ColumnType::Str)]).with_policy(
            simple_policy("p", vec![0], |_| vec![Value::from("?")], |_| true),
        );
        assert_eq!(m.policies.len(), 1);
        assert_eq!(m.policies[0].fields, vec![0]);
        assert!(format!("{:?}", m.policies[0]).contains("p"));
    }
}
