//! The vanilla (non-faceted) ORM: the substrate for the paper's
//! "Django with hand-coded policy checks" baselines.
//!
//! Same storage engine, no facets, no meta-data columns: every object
//! is exactly one row with an auto-increment `id`, and *application
//! code* is responsible for policy checks at every use site (the
//! paper's Figure 8 style).

use microdb::{
    ColumnDef, ColumnType, Database, DbResult, Operand, Predicate, Query, Row, Schema, SortOrder,
    Value,
};

/// A plain ORM over [`microdb`].
#[derive(Clone, Debug, Default)]
pub struct VanillaDb {
    /// The underlying engine.
    pub db: Database,
}

impl VanillaDb {
    /// An empty database.
    #[must_use]
    pub fn new() -> VanillaDb {
        VanillaDb::default()
    }

    /// Creates a table with an implicit auto-increment `id` column
    /// (prepended), mirroring Django models.
    ///
    /// # Errors
    ///
    /// Propagates engine errors.
    pub fn create_table(&mut self, name: &str, user_columns: Vec<ColumnDef>) -> DbResult<()> {
        let mut cols = vec![ColumnDef::new("id", ColumnType::Int).auto_increment()];
        cols.extend(user_columns);
        self.db.create_table(name, Schema::new(cols))?;
        self.db.table_mut(name)?.create_index("id")?;
        Ok(())
    }

    /// Declares a hash index on a column (Django indexes foreign keys
    /// by default).
    ///
    /// # Errors
    ///
    /// Propagates engine errors.
    pub fn create_index(&mut self, table: &str, column: &str) -> DbResult<()> {
        self.db.table_mut(table)?.create_index(column)
    }

    /// Inserts a row (without the `id`; it is assigned), returning
    /// the new id.
    ///
    /// # Errors
    ///
    /// Propagates engine errors.
    pub fn insert(&mut self, table: &str, mut row: Row) -> DbResult<i64> {
        row.insert(0, Value::Null);
        let pos = self.db.insert(table, row)?;
        Ok(self.db.table(table)?.rows()[pos][0]
            .as_int()
            .expect("auto-increment id"))
    }

    /// All rows.
    ///
    /// # Errors
    ///
    /// Propagates engine errors.
    pub fn all(&mut self, table: &str) -> DbResult<Vec<Row>> {
        Query::from(table).execute(&mut self.db)
    }

    /// Rows with `column = value`.
    ///
    /// # Errors
    ///
    /// Propagates engine errors.
    pub fn filter_eq(&mut self, table: &str, column: &str, value: Value) -> DbResult<Vec<Row>> {
        Query::from(table)
            .filter(Predicate::eq(Operand::col(column), Operand::Lit(value)))
            .execute(&mut self.db)
    }

    /// The row with the given id, if any.
    ///
    /// # Errors
    ///
    /// Propagates engine errors.
    pub fn get(&mut self, table: &str, id: i64) -> DbResult<Option<Row>> {
        Ok(self
            .filter_eq(table, "id", Value::Int(id))?
            .into_iter()
            .next())
    }

    /// All rows ordered by a column.
    ///
    /// # Errors
    ///
    /// Propagates engine errors.
    pub fn order_by(&mut self, table: &str, column: &str, order: SortOrder) -> DbResult<Vec<Row>> {
        Query::from(table)
            .order_by(column, order)
            .execute(&mut self.db)
    }

    /// Updates columns of the row with the given id.
    ///
    /// # Errors
    ///
    /// Propagates engine errors.
    pub fn update(
        &mut self,
        table: &str,
        id: i64,
        assignments: &[(String, Value)],
    ) -> DbResult<usize> {
        self.db.update(
            table,
            &Predicate::eq(Operand::col("id"), Operand::lit(id)),
            assignments,
        )
    }

    /// Deletes the row with the given id.
    ///
    /// # Errors
    ///
    /// Propagates engine errors.
    pub fn delete(&mut self, table: &str, id: i64) -> DbResult<usize> {
        self.db
            .delete(table, &Predicate::eq(Operand::col("id"), Operand::lit(id)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> VanillaDb {
        let mut v = VanillaDb::new();
        v.create_table("user", vec![ColumnDef::new("name", ColumnType::Str)])
            .unwrap();
        v
    }

    #[test]
    fn insert_assigns_sequential_ids() {
        let mut v = db();
        assert_eq!(v.insert("user", vec![Value::from("a")]).unwrap(), 1);
        assert_eq!(v.insert("user", vec![Value::from("b")]).unwrap(), 2);
    }

    #[test]
    fn get_and_filter() {
        let mut v = db();
        let id = v.insert("user", vec![Value::from("a")]).unwrap();
        assert_eq!(v.get("user", id).unwrap().unwrap()[1], Value::from("a"));
        assert!(v.get("user", 99).unwrap().is_none());
        assert_eq!(
            v.filter_eq("user", "name", Value::from("a")).unwrap().len(),
            1
        );
    }

    #[test]
    fn update_and_delete() {
        let mut v = db();
        let id = v.insert("user", vec![Value::from("a")]).unwrap();
        v.update("user", id, &[("name".to_owned(), Value::from("z"))])
            .unwrap();
        assert_eq!(v.get("user", id).unwrap().unwrap()[1], Value::from("z"));
        assert_eq!(v.delete("user", id).unwrap(), 1);
        assert!(v.get("user", id).unwrap().is_none());
    }

    #[test]
    fn order_by_sorts() {
        let mut v = db();
        for n in ["c", "a", "b"] {
            v.insert("user", vec![Value::from(n)]).unwrap();
        }
        let rows = v.order_by("user", "name", SortOrder::Asc).unwrap();
        let names: Vec<&str> = rows.iter().map(|r| r[1].as_str().unwrap()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }
}
