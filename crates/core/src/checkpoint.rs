//! Durable checkpoints for a whole application: database, FORM
//! metadata, policy bindings, and the interned facet DAGs — with
//! crash-safe restore.
//!
//! # What a checkpoint contains
//!
//! One atomic file (`checkpoint.snap`, written to a temp name and
//! renamed into place) holding four sections:
//!
//! 1. the **database snapshot** ([`microdb::Snapshot`]): schemas,
//!    rows, hash-index declarations, auto-increment cursors, and the
//!    per-table generation stamps;
//! 2. the **FORM metadata** ([`form::FormMeta`]): label-registry
//!    names in allocation order and per-table `jid` cursors — the
//!    state that keeps restored label indices from ever being
//!    re-allocated;
//! 3. the **policy bindings**: for every live label, which model
//!    policy it re-binds to plus the creation-time row snapshot the
//!    check closes over (§2.1.2 — policies are evaluated against the
//!    creation-time row and the output-time database, so both halves
//!    must survive);
//! 4. the **facet DAGs** of every logical object, exported through
//!    the interner's topological node table
//!    ([`faceted::export_nodes`]): restore re-interns them, so a
//!    rebooted process starts with the same node sharing (and a warm
//!    object cache) instead of re-deriving every DAG from rows.
//!
//! # Between checkpoints
//!
//! [`App::enable_persistence`] attaches two append-only logs to the
//! checkpoint directory: the storage engine's row-level write log
//! (`wal.log`, see [`microdb::wal`]) and the application's meta
//! journal (`meta.log`), which records each `create`'s label
//! allocations and policy bindings *before* its rows are written —
//! so a crash can strand rows without metadata only in the harmless
//! direction (metadata without rows), never label-index aliasing.
//!
//! # Quiescence and garbage collection
//!
//! [`App::checkpoint_quiescent`] takes the executor's global request
//! lock shared plus **all** declared table locks shared — writers
//! drain, concurrent readers keep flowing — and snapshots at that
//! point, then runs the interner's [`faceted::collect_garbage`] while
//! the store is maximally quiet. The served variant is
//! [`add_checkpoint_route`]: `admin/checkpoint` registers as a
//! footprint-less **write** route, which the executor already
//! dispatches under the exclusive global lock — the same quiescent
//! point, reached through ordinary request scheduling.

use std::fmt;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use faceted::NodeTable;
use form::{FacetedObject, FormError, FormMeta, FormResult};
use microdb::faults::{self, FaultKind, FaultPoint};
use microdb::snapshot::{decode_value, encode_value, escape_token, unescape_token};
use microdb::wal::LineLog;
use microdb::{Row, Snapshot, Value, WriteLog};

use crate::app::App;
use crate::http::{Response, Router};
use crate::model::Viewer;

/// The atomic checkpoint file inside a persistence directory.
pub const CHECKPOINT_FILE: &str = "checkpoint.snap";
/// The storage engine's append-only row log.
pub const WAL_FILE: &str = "wal.log";
/// The application's append-only metadata journal.
pub const META_LOG_FILE: &str = "meta.log";

fn persist_err(what: impl fmt::Display) -> FormError {
    FormError::Db(microdb::DbError::Persist(what.to_string()))
}

/// Counters describing one completed checkpoint.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CheckpointStats {
    /// Tables captured.
    pub tables: usize,
    /// Physical rows captured.
    pub rows: usize,
    /// Logical objects whose facet DAGs were exported.
    pub objects: usize,
    /// Distinct interner nodes in the exported DAG table.
    pub facet_nodes: usize,
    /// Interner nodes (object-DAG store) before the quiescent GC.
    pub interner_nodes_before: usize,
    /// Interner nodes after the GC.
    pub interner_nodes_after: usize,
    /// Nodes reclaimed by [`faceted::collect_garbage`].
    pub gc_reclaimed: usize,
}

impl fmt::Display for CheckpointStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "checkpoint: tables={} rows={} objects={} facet_nodes={} \
             interner_nodes={}->{} gc_reclaimed={}",
            self.tables,
            self.rows,
            self.objects,
            self.facet_nodes,
            self.interner_nodes_before,
            self.interner_nodes_after,
            self.gc_reclaimed
        )
    }
}

/// Counters describing one completed restore.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct RestoreStats {
    /// Tables restored from the snapshot section.
    pub tables: usize,
    /// Physical rows restored from the snapshot section.
    pub rows: usize,
    /// Policy bindings restored (snapshot section + journal replay).
    pub policies: usize,
    /// Facet DAGs re-interned into the warm object cache.
    pub objects_primed: usize,
    /// Row-log records replayed on top of the snapshot.
    pub wal_applied: usize,
    /// Journal `create` records replayed.
    pub journal_applied: usize,
}

impl fmt::Display for RestoreStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "restore: tables={} rows={} policies={} objects_primed={} \
             wal_applied={} journal_applied={}",
            self.tables,
            self.rows,
            self.policies,
            self.objects_primed,
            self.wal_applied,
            self.journal_applied
        )
    }
}

// ---------------------------------------------------------------------
// The meta journal: append-only `create` records between checkpoints.
// ---------------------------------------------------------------------

/// One journal record: everything [`App::create`] changes outside the
/// database — the labels it allocated (index + stored name) and the
/// creation-time row its policies close over.
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct CreateRecord {
    pub(crate) model: String,
    pub(crate) jid: i64,
    /// `(label index, stored name)` per model policy, in policy order.
    pub(crate) labels: Vec<(u32, String)>,
    pub(crate) row: Row,
}

fn encode_create(record: &CreateRecord) -> String {
    let mut out = String::from("create ");
    out.push_str(&escape_token(&record.model));
    out.push_str(&format!(" {} {}", record.jid, record.labels.len()));
    for (ix, name) in &record.labels {
        out.push_str(&format!(" {ix} {}", escape_token(name)));
    }
    out.push_str(&format!(" {}", record.row.len()));
    for v in &record.row {
        out.push(' ');
        out.push_str(&encode_value(v));
    }
    out.push_str(" .");
    out
}

fn decode_create(line: &str) -> FormResult<CreateRecord> {
    let bad = |what: &str| persist_err(format!("bad meta-journal record: {what} in {line:?}"));
    let mut tokens = line.split_whitespace();
    if tokens.next() != Some("create") {
        return Err(bad("unknown record kind"));
    }
    let mut next = |what: &str| tokens.next().ok_or_else(|| bad(what));
    let model = unescape_token(next("model")?)?;
    let jid: i64 = next("jid")?.parse().map_err(|_| bad("jid"))?;
    let n_labels: usize = next("label count")?
        .parse()
        .map_err(|_| bad("label count"))?;
    let mut labels = Vec::with_capacity(n_labels);
    for _ in 0..n_labels {
        let ix: u32 = next("label index")?
            .parse()
            .map_err(|_| bad("label index"))?;
        labels.push((ix, unescape_token(next("label name")?)?));
    }
    let n_values: usize = next("value count")?
        .parse()
        .map_err(|_| bad("value count"))?;
    let mut row = Row::with_capacity(n_values);
    for _ in 0..n_values {
        row.push(decode_value(next("value")?)?);
    }
    if next("terminator")? != "." {
        return Err(bad("missing terminator"));
    }
    if tokens.next().is_some() {
        return Err(bad("trailing tokens"));
    }
    Ok(CreateRecord {
        model,
        jid,
        labels,
        row,
    })
}

/// The append-only application-metadata journal: [`CreateRecord`]s
/// over the storage engine's shared [`LineLog`] machinery (flushed
/// appends, truncation after checkpoints, torn-tail detection — one
/// implementation for both logs).
#[derive(Debug)]
pub(crate) struct MetaJournal {
    log: LineLog,
}

impl MetaJournal {
    pub(crate) fn open(path: impl AsRef<Path>) -> std::io::Result<MetaJournal> {
        Ok(MetaJournal {
            log: LineLog::open(path)?,
        })
    }

    pub(crate) fn append(&self, record: &CreateRecord) -> FormResult<()> {
        self.log
            .append_line(&encode_create(record))
            .map_err(|e| persist_err(format!("meta journal append: {e}")))
    }

    pub(crate) fn truncate(&self) -> std::io::Result<()> {
        self.log.truncate()
    }

    /// Reads the records at `path`; a torn final line (no trailing
    /// newline) is discarded, corruption elsewhere is an error. A
    /// missing file yields no records.
    pub(crate) fn read_records(path: &Path) -> FormResult<Vec<CreateRecord>> {
        let Some((lines, complete_tail)) = LineLog::read_lines(path)
            .map_err(|e| persist_err(format!("meta journal read: {e}")))?
        else {
            return Ok(Vec::new());
        };
        let mut records = Vec::with_capacity(lines.len());
        for (i, line) in lines.iter().enumerate() {
            match decode_create(line) {
                Ok(r) => records.push(r),
                Err(e) => {
                    if i + 1 == lines.len() && !complete_tail {
                        break; // torn tail: the crash was mid-append
                    }
                    return Err(e);
                }
            }
        }
        Ok(records)
    }
}

// ---------------------------------------------------------------------
// Facet-DAG section codecs: Option<Row> leaves as single-line strings.
// ---------------------------------------------------------------------

/// Encodes a [`FacetedObject`] leaf: `-` for absent, `+ v v …` for a
/// row of whitespace-free value tokens.
fn encode_object_leaf(leaf: &Option<Row>) -> String {
    match leaf {
        None => "-".to_owned(),
        Some(row) => {
            let mut out = String::from("+");
            for v in row {
                out.push(' ');
                out.push_str(&encode_value(v));
            }
            out
        }
    }
}

fn decode_object_leaf(payload: &str) -> Option<Option<Row>> {
    if payload == "-" {
        return Some(None);
    }
    let rest = payload.strip_prefix('+')?;
    let row: Result<Row, _> = rest.split_whitespace().map(decode_value).collect();
    row.ok().map(Some)
}

// ---------------------------------------------------------------------
// Checkpoint file sections.
// ---------------------------------------------------------------------

/// The parsed contents of a checkpoint file.
pub(crate) struct CheckpointFile {
    pub(crate) snapshot: Snapshot,
    pub(crate) meta: FormMeta,
    /// `(label index, model, policy index, jid, creation row)`.
    pub(crate) bindings: Vec<(u32, String, usize, i64, Row)>,
    /// `(table, jid)` per facet root, aligned with `facets.roots`.
    pub(crate) objects: Vec<(String, i64)>,
    pub(crate) facets: NodeTable,
}

pub(crate) fn write_checkpoint_file(
    path: &Path,
    snapshot: &Snapshot,
    meta: &FormMeta,
    bindings: &[(u32, String, usize, i64, Row)],
    objects: &[(String, i64)],
    facets: &NodeTable,
) -> FormResult<()> {
    let dir = path
        .parent()
        .ok_or_else(|| persist_err("checkpoint path has no parent directory"))?;
    let tmp = dir.join(format!(
        ".{}.tmp-{}",
        path.file_name()
            .and_then(|n| n.to_str())
            .unwrap_or(CHECKPOINT_FILE),
        std::process::id()
    ));
    let io_err = |e: std::io::Error| persist_err(format!("checkpoint write: {e}"));
    {
        let mut out = BufWriter::new(File::create(&tmp).map_err(io_err)?);
        writeln!(out, "jacqueline-checkpoint v1").map_err(io_err)?;
        snapshot.write_to(&mut out).map_err(io_err)?;
        out.write_all(meta.to_text().as_bytes()).map_err(io_err)?;
        writeln!(out, "app-meta v1 {}", bindings.len()).map_err(io_err)?;
        for (ix, model, policy_ix, jid, row) in bindings {
            write!(
                out,
                "b {ix} {} {policy_ix} {jid} {}",
                escape_token(model),
                row.len()
            )
            .map_err(io_err)?;
            for v in row {
                write!(out, " {}", encode_value(v)).map_err(io_err)?;
            }
            writeln!(out, " .").map_err(io_err)?;
        }
        writeln!(out, "app-facets v1 {}", objects.len()).map_err(io_err)?;
        for (table, jid) in objects {
            writeln!(out, "f {} {jid}", escape_token(table)).map_err(io_err)?;
        }
        out.write_all(facets.to_text().as_bytes()).map_err(io_err)?;
        out.flush().map_err(io_err)?;
        out.get_ref().sync_all().map_err(io_err)?;
    }
    // Injected crash point: die *before* the rename. The tmp file is
    // left behind as debris (exactly what a real crash leaves) and
    // the previous `checkpoint.snap` must remain the valid one.
    if faults::check(FaultPoint::CheckpointPreRename, path).is_some() {
        return Err(io_err(faults::injected_err("checkpoint pre-rename crash")));
    }
    // The atomic step: readers see either the old checkpoint or the
    // complete new one, never a torn file.
    std::fs::rename(&tmp, path).map_err(io_err)?;
    // Make the rename itself durable before the caller truncates the
    // logs: without the directory fsync, a power loss could persist
    // the truncations but not the rename, leaving the *old* snapshot
    // next to *empty* logs — silently dropping every write since the
    // previous checkpoint.
    File::open(dir).and_then(|d| d.sync_all()).map_err(io_err)?;
    // Injected crash point: die *after* the rename but before the
    // caller truncates the logs — the new snapshot and the old logs
    // overlap, and replay idempotence (generation stamps) must absorb
    // every doubly-recorded write.
    if faults::check(FaultPoint::CheckpointPostRename, path).is_some() {
        return Err(io_err(faults::injected_err("checkpoint post-rename crash")));
    }
    Ok(())
}

pub(crate) fn read_checkpoint_file(path: &Path) -> FormResult<CheckpointFile> {
    match faults::check(FaultPoint::RestoreRead, path) {
        Some(FaultKind::Error) => {
            return Err(persist_err(format!(
                "open {}: {}",
                path.display(),
                faults::injected_err("checkpoint read")
            )));
        }
        Some(FaultKind::ShortWrite) => {
            // Physically truncate the snapshot to half its length so
            // the damage flows through the *real* parse paths below —
            // the injected analogue of a torn copy or a bad sector.
            let len = std::fs::metadata(path)
                .map_err(|e| persist_err(format!("checkpoint corrupt-inject: {e}")))?
                .len();
            std::fs::OpenOptions::new()
                .write(true)
                .open(path)
                .and_then(|f| f.set_len(len / 2))
                .map_err(|e| persist_err(format!("checkpoint corrupt-inject: {e}")))?;
        }
        None => {}
    }
    let file =
        File::open(path).map_err(|e| persist_err(format!("open {}: {e}", path.display())))?;
    let mut reader = BufReader::new(file);
    let mut header = String::new();
    reader
        .read_line(&mut header)
        .map_err(|e| persist_err(format!("checkpoint read: {e}")))?;
    if header.trim_end() != "jacqueline-checkpoint v1" {
        return Err(persist_err(format!(
            "bad checkpoint header {:?}",
            header.trim_end()
        )));
    }
    let snapshot = Snapshot::read_from(&mut reader)?;
    // The remaining sections parse straight off one shared line
    // cursor: `FormMeta`/`NodeTable` expose `from_lines` entry points
    // sized by their own headers, so nothing is copied back into
    // intermediate strings and re-parsed.
    let lines: Vec<String> = reader
        .lines()
        .collect::<Result<_, _>>()
        .map_err(|e| persist_err(format!("checkpoint read: {e}")))?;
    let mut cursor = lines.iter().map(String::as_str);

    let meta = FormMeta::from_lines(&mut cursor)?;

    let mut next = |what: &str| -> FormResult<&str> {
        cursor
            .next()
            .ok_or_else(|| persist_err(format!("checkpoint truncated at {what}")))
    };

    // app-meta section.
    let app_header = next("app-meta header")?;
    let n_bindings: usize = app_header
        .strip_prefix("app-meta v1 ")
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| persist_err(format!("bad app-meta header {app_header:?}")))?;
    let mut bindings = Vec::with_capacity(n_bindings);
    for _ in 0..n_bindings {
        let line = next("binding")?;
        let bad = || persist_err(format!("bad binding line {line:?}"));
        let mut tokens = line.split_whitespace();
        if tokens.next() != Some("b") {
            return Err(bad());
        }
        let mut tok = |_what: &str| tokens.next().ok_or_else(bad);
        let ix: u32 = tok("ix")?.parse().map_err(|_| bad())?;
        let model = unescape_token(tok("model")?)?;
        let policy_ix: usize = tok("policy")?.parse().map_err(|_| bad())?;
        let jid: i64 = tok("jid")?.parse().map_err(|_| bad())?;
        let n_values: usize = tok("values")?.parse().map_err(|_| bad())?;
        let mut row = Row::with_capacity(n_values);
        for _ in 0..n_values {
            row.push(decode_value(tok("value")?)?);
        }
        if tok("terminator")? != "." {
            return Err(bad());
        }
        bindings.push((ix, model, policy_ix, jid, row));
    }

    // app-facets section: the (table, jid) root directory…
    let facets_header = next("app-facets header")?;
    let n_objects: usize = facets_header
        .strip_prefix("app-facets v1 ")
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| persist_err(format!("bad app-facets header {facets_header:?}")))?;
    let mut objects = Vec::with_capacity(n_objects);
    for _ in 0..n_objects {
        let line = next("facet root")?;
        let rest = line
            .strip_prefix("f ")
            .ok_or_else(|| persist_err(format!("bad facet-root line {line:?}")))?;
        let (table, jid) = rest
            .split_once(' ')
            .ok_or_else(|| persist_err(format!("bad facet-root line {line:?}")))?;
        let jid: i64 = jid
            .parse()
            .map_err(|_| persist_err(format!("bad facet-root jid {line:?}")))?;
        objects.push((unescape_token(table)?, jid));
    }
    // …then the node table, off the same cursor.
    let facets = NodeTable::from_lines(&mut cursor).map_err(persist_err)?;
    if facets.roots.len() != objects.len() {
        return Err(persist_err(format!(
            "facet directory lists {} objects but the node table has {} roots",
            objects.len(),
            facets.roots.len()
        )));
    }
    Ok(CheckpointFile {
        snapshot,
        meta,
        bindings,
        objects,
        facets,
    })
}

// ---------------------------------------------------------------------
// App-level checkpoint / restore.
// ---------------------------------------------------------------------

impl App {
    /// Attaches the persistence logs (`wal.log` + `meta.log`) in
    /// `dir`, creating the directory if needed. From this point every
    /// row-level write and every `create`'s metadata append durable
    /// records, superseded at each checkpoint.
    ///
    /// # Errors
    ///
    /// I/O errors opening the logs.
    pub fn enable_persistence(&mut self, dir: impl AsRef<Path>) -> FormResult<()> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)
            .map_err(|e| persist_err(format!("create {}: {e}", dir.display())))?;
        let wal = WriteLog::open(dir.join(WAL_FILE))
            .map_err(|e| persist_err(format!("open write log: {e}")))?;
        self.db.attach_wal(Arc::new(wal));
        let journal = MetaJournal::open(dir.join(META_LOG_FILE))
            .map_err(|e| persist_err(format!("open meta journal: {e}")))?;
        self.journal = Some(Arc::new(journal));
        Ok(())
    }

    /// Takes a checkpoint **assuming the caller holds a quiescent
    /// point** (no concurrent writers): snapshots the database,
    /// exports FORM metadata, policy bindings and every object's
    /// facet DAG, atomically replaces `dir/checkpoint.snap`,
    /// truncates the attached logs (the checkpoint supersedes them),
    /// and finally runs the interner's garbage collector — the
    /// quiescent point is exactly when dead nodes from completed
    /// requests are collectable.
    ///
    /// Use [`App::checkpoint_quiescent`] unless you are already
    /// inside a quiescent context (the `admin/checkpoint` route is:
    /// the executor dispatches footprint-less write routes under the
    /// exclusive global lock).
    ///
    /// # Errors
    ///
    /// Export or I/O failures; the previous checkpoint file is left
    /// intact on any error.
    pub fn checkpoint_to(&self, dir: impl AsRef<Path>) -> FormResult<CheckpointStats> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)
            .map_err(|e| persist_err(format!("create {}: {e}", dir.display())))?;
        let mut stats = CheckpointStats {
            interner_nodes_before: object_store_nodes(),
            ..CheckpointStats::default()
        };

        let snapshot = self.db.raw_ref().snapshot();
        stats.tables = snapshot.tables.len();
        stats.rows = snapshot.total_rows();
        let meta = self.db.export_meta();
        let bindings = self.export_policy_bindings();

        // Export every logical object's facet DAG (model tables only;
        // in model-name order, jid-ascending, so the file is
        // deterministic).
        let mut objects: Vec<(String, i64)> = Vec::new();
        let mut roots: Vec<FacetedObject> = Vec::new();
        for model in self.model_names() {
            for jid in self.db.object_jids(&model)? {
                roots.push(self.db.get(&model, jid)?);
                objects.push((model.clone(), jid));
            }
        }
        stats.objects = objects.len();
        let facets = faceted::export_nodes(&roots, |leaf: &Option<Row>| encode_object_leaf(leaf));
        stats.facet_nodes = facets.entries.len();

        write_checkpoint_file(
            &dir.join(CHECKPOINT_FILE),
            &snapshot,
            &meta,
            &bindings,
            &objects,
            &facets,
        )?;

        // The durable file now contains everything the logs recorded.
        if let Some(wal) = self.db.raw_ref().wal() {
            wal.truncate()
                .map_err(|e| persist_err(format!("truncate write log: {e}")))?;
        }
        if let Some(journal) = &self.journal {
            journal
                .truncate()
                .map_err(|e| persist_err(format!("truncate meta journal: {e}")))?;
        }
        // Durability is re-established: the snapshot holds every
        // acknowledged write and the logs start clean, so a read-only
        // degraded app (a failed append flipped the flag; the failed
        // write was rolled back) can take writes again.
        self.clear_degraded();

        // GC at the quiescent point: request-scoped temporaries are
        // dead, the exported roots (and the caches) stay pinned.
        drop(roots);
        stats.gc_reclaimed = faceted::collect_garbage::<Option<Row>>()
            + faceted::collect_garbage::<Value>()
            + faceted::collect_garbage::<bool>()
            + faceted::collect_garbage::<i64>();
        stats.interner_nodes_after = object_store_nodes();
        Ok(stats)
    }

    /// [`App::checkpoint_to`] under a self-acquired quiescent point:
    /// the executor's global request lock shared plus every declared
    /// table lock shared — declared writers drain and block for the
    /// duration, concurrent readers keep flowing. Do **not** call
    /// from inside a dispatched request (the locks are not
    /// reentrant); routes should use [`add_checkpoint_route`].
    ///
    /// # Errors
    ///
    /// Same as [`App::checkpoint_to`].
    pub fn checkpoint_quiescent(&self, dir: impl AsRef<Path>) -> FormResult<CheckpointStats> {
        self.request_locks.quiesce(|| self.checkpoint_to(dir))
    }

    /// Restores this application from `dir`'s checkpoint: the
    /// snapshot is loaded (label registry first, so no index can
    /// alias), the meta journal and row log are replayed on top, the
    /// policy bindings re-bind to this app's registered models, and
    /// the exported facet DAGs are re-interned into the warm object
    /// cache. The app must already have its models registered — the
    /// same application code that produced the checkpoint.
    ///
    /// # Errors
    ///
    /// Missing/corrupt checkpoint, unknown models or policy indices
    /// (the checkpoint came from different application code), or
    /// replay failures.
    pub fn restore_from(&mut self, dir: impl AsRef<Path>) -> FormResult<RestoreStats> {
        let dir = dir.as_ref();
        let file = read_checkpoint_file(&dir.join(CHECKPOINT_FILE))?;
        let mut stats = RestoreStats {
            tables: file.snapshot.tables.len(),
            rows: file.snapshot.total_rows(),
            ..RestoreStats::default()
        };

        // 1. Metadata before rows: restored `jvars` reference label
        //    indices, which must exist before anything re-allocates.
        self.db.restore_meta(&file.meta);
        self.db.restore_database(&file.snapshot)?;

        // 2. Policy bindings from the snapshot section.
        self.clear_policy_state();
        for (ix, model, policy_ix, jid, row) in &file.bindings {
            self.bind_policy(
                faceted::Label::from_index(*ix),
                model,
                *policy_ix,
                *jid,
                row,
            )?;
            stats.policies += 1;
        }

        // 3. Journal replay: creates that happened after the
        //    checkpoint. Labels import in allocation order (creates
        //    journal under the app's create-order guard), then bind
        //    exactly like step 2. A label already present in the
        //    restored registry means the checkpoint raced ahead of
        //    the journal truncate and step 2 restored its binding —
        //    re-binding would push duplicate entries into the
        //    object's label list, so those are skipped wholesale.
        for record in MetaJournal::read_records(&dir.join(META_LOG_FILE))? {
            let mut replayed_any = false;
            for (policy_ix, (ix, name)) in record.labels.iter().enumerate() {
                if (*ix as usize) < self.db.labels().len() {
                    continue; // checkpointed: binding restored in step 2
                }
                let imported = self.db.import_label(name);
                if imported.index() != *ix {
                    return Err(persist_err(format!(
                        "meta journal out of order: expected label {ix}, got {}",
                        imported.index()
                    )));
                }
                self.bind_policy(imported, &record.model, policy_ix, record.jid, &record.row)?;
                stats.policies += 1;
                replayed_any = true;
            }
            self.db.bump_next_jid(&record.model, record.jid + 1);
            if replayed_any {
                stats.journal_applied += 1;
            }
        }

        // 4. Row-log replay on the raw engine (generation stamps skip
        //    anything the snapshot already contains).
        let replay = WriteLog::replay(dir.join(WAL_FILE), self.db.raw())?;
        stats.wal_applied = replay.applied;

        // 5. Defensive jid floor: even without a journal, cursors
        //    never fall below what the restored rows prove was
        //    allocated.
        for model in self.model_names() {
            if let Some(max) = self.db.object_jids(&model)?.last() {
                self.db.bump_next_jid(&model, max + 1);
            }
        }

        // 6. Warm start: re-intern the exported facet DAGs and prime
        //    the object cache — but only for tables whose restored
        //    generation still matches the snapshot (a WAL-replayed
        //    write supersedes the exported DAGs of its table).
        let imported =
            faceted::import_nodes(&file.facets, decode_object_leaf).map_err(persist_err)?;
        for ((table, jid), obj) in file.objects.iter().zip(&imported) {
            let current = self.db.raw_ref().generation(table)?;
            let snapshot_generation = file
                .snapshot
                .table(table)
                .map(|t| t.generation)
                .ok_or_else(|| {
                    persist_err(format!("facet root references unknown table {table:?}"))
                })?;
            if current == snapshot_generation {
                self.db.prime_object(table, *jid, obj)?;
                stats.objects_primed += 1;
            }
        }
        Ok(stats)
    }
}

/// Distinct nodes currently interned in the object-DAG store
/// (`Faceted<Option<Row>>` — the store the FORM's objects live in).
#[must_use]
pub fn object_store_nodes() -> usize {
    let stats = faceted::intern_stats::<Option<Row>>();
    stats.leaves + stats.splits
}

/// Registers the `admin/checkpoint` route: a **footprint-less write
/// route**, which the executor dispatches under the exclusive global
/// request lock — every declared route drains first, so the
/// checkpoint observes a quiescent application without any extra
/// locking. Any authenticated viewer may trigger it (a production
/// deployment would restrict this to an operator role; the
/// reproduction's auth model has no roles).
///
/// `POST /admin/checkpoint` answers `200` with the
/// [`CheckpointStats`] summary line, `403` for anonymous callers,
/// `500` with the error text on failure.
pub fn add_checkpoint_route(router: &mut Router, dir: impl Into<PathBuf>) {
    let dir = dir.into();
    router.route("admin/checkpoint", move |app: &App, req| {
        if req.viewer == Viewer::Anonymous {
            return Response::forbidden("checkpoint requires an authenticated session");
        }
        match app.checkpoint_to(&dir) {
            Ok(stats) => Response::ok(format!("{stats}\n")),
            Err(e) => Response::error(&format!("checkpoint failed: {e}")),
        }
    });
    // The checkpoint is the *recovery* action of read-only degraded
    // mode — it must keep dispatching while ordinary writes shed.
    router.exempt_from_degraded("admin/checkpoint");
}

/// Registers the `admin/health` route: a footprint-less **read**
/// route (dispatched under all-shared locks, never render-cached)
/// answering `200 ok` while the app is healthy and
/// `503 Retry-After: 1` with the degradation reason while a failed
/// durable write has it in read-only mode. Load balancers and the
/// chaos harness poll this to observe degradation and recovery.
///
/// The second body line publishes the live
/// [`RenderCacheStats`](crate::RenderCacheStats) counters — the only
/// runtime window into cache behavior on a served app.
pub fn add_health_route(router: &mut Router) {
    router.route_read("admin/health", |app: &App, _req| {
        let s = app.render_cache_stats();
        let stats = format!(
            "render_cache hits={} misses={} repairs={} repaired_fragments={} \
             invalidated={} uncacheable={}\n",
            s.hits, s.misses, s.repairs, s.repaired_fragments, s.invalidated, s.uncacheable
        );
        match app.degraded_reason() {
            None => Response::ok(format!("ok\n{stats}")),
            Some(reason) => {
                Response::unavailable(&format!("degraded (read-only): {reason}\n{stats}"))
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{simple_policy, ModelDef};
    use microdb::{ColumnDef, ColumnType};

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("jacq_ckpt_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn note_model() -> ModelDef {
        ModelDef::public(
            "note",
            vec![
                ColumnDef::new("owner", ColumnType::Int),
                ColumnDef::new("text", ColumnType::Str),
            ],
        )
        .with_policy(simple_policy(
            "note_owner",
            vec![1],
            |_| vec![Value::from("[private]")],
            |args| args.viewer.user_jid() == args.row[0].as_int(),
        ))
    }

    fn note_app() -> App {
        let mut app = App::new();
        app.register_model(note_model()).unwrap();
        app
    }

    fn page(app: &App, viewer: &Viewer) -> String {
        let rows = app.all("note").unwrap();
        let mut session = crate::Session::new(viewer.clone());
        session
            .view_rows(app, &rows)
            .into_iter()
            .map(|r| format!("{}|{}\n", r[0], r[1]))
            .collect()
    }

    fn grid(app: &App, users: i64) -> Vec<String> {
        std::iter::once(Viewer::Anonymous)
            .chain((0..users).map(Viewer::User))
            .map(|v| page(app, &v))
            .collect()
    }

    #[test]
    fn checkpoint_restore_round_trips_the_differential_grid() {
        let dir = temp_dir("grid");
        let app = note_app();
        for i in 0..5 {
            app.create("note", vec![Value::Int(i), Value::from(format!("n{i}"))])
                .unwrap();
        }
        let before = grid(&app, 5);
        let stats = app.checkpoint_quiescent(&dir).unwrap();
        assert_eq!(stats.tables, 1);
        assert_eq!(stats.rows, 10, "5 notes × 2 facet rows");
        assert_eq!(stats.objects, 5);
        assert!(stats.facet_nodes > 0);

        // "Kill" the process state: a brand-new app, models re-registered.
        let mut restored = note_app();
        let rstats = restored.restore_from(&dir).unwrap();
        assert_eq!(rstats.rows, 10);
        assert_eq!(rstats.policies, 5);
        assert_eq!(rstats.objects_primed, 5);
        assert_eq!(grid(&restored, 5), before, "byte-identical grid");

        // Policies still live: a *new* viewer-owned note behaves
        // identically in both worlds, with no label aliasing.
        let j1 = app
            .create("note", vec![Value::Int(99), Value::from("after")])
            .unwrap();
        let j2 = restored
            .create("note", vec![Value::Int(99), Value::from("after")])
            .unwrap();
        assert_eq!(j1, j2, "jid cursors restored");
        assert_eq!(grid(&restored, 5), grid(&app, 5));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn logs_replay_creates_and_writes_after_the_checkpoint() {
        let dir = temp_dir("logs");
        let mut app = note_app();
        app.enable_persistence(&dir).unwrap();
        app.create("note", vec![Value::Int(0), Value::from("pre")])
            .unwrap();
        app.checkpoint_quiescent(&dir).unwrap();
        // Post-checkpoint state lives only in the logs.
        app.create("note", vec![Value::Int(1), Value::from("post")])
            .unwrap();
        app.update_fields("note", 1, &[(1, Value::from("PRE"))], &Default::default())
            .unwrap();

        let mut restored = note_app();
        let stats = restored.restore_from(&dir).unwrap();
        assert_eq!(stats.journal_applied, 1, "one post-checkpoint create");
        assert!(stats.wal_applied >= 2, "create rows + update rows");
        assert_eq!(grid(&restored, 3), grid(&app, 3));
        // The restored app allocates *fresh* labels/jids past both
        // the checkpoint and the logs.
        let j = restored
            .create("note", vec![Value::Int(2), Value::from("fresh")])
            .unwrap();
        assert_eq!(j, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Reconciliation between restored generation stamps and the
    /// change journals: restoring over a live app retains warm decode
    /// slots whose generation matches the snapshot, and the restored
    /// table's journal window restarts at `snapshot_generation + 1`,
    /// so WAL-replayed writes land as deltas. The first read after
    /// restore is then served by delta repair — not a full re-decode —
    /// and must equal what a cold restore decodes from scratch.
    #[test]
    fn restore_reconciles_journals_so_warm_slots_delta_repair() {
        let dir = temp_dir("delta_reconcile");
        let mut app = note_app();
        app.enable_persistence(&dir).unwrap();
        for i in 0..4 {
            app.create("note", vec![Value::Int(i), Value::from(format!("n{i}"))])
                .unwrap();
        }
        app.checkpoint_quiescent(&dir).unwrap();
        // Warm the decode cache at exactly the snapshot generation.
        app.all("note").unwrap();
        // A post-checkpoint write lives only in the WAL.
        app.create("note", vec![Value::Int(9), Value::from("post")])
            .unwrap();

        // Crash-safe restore over the same app: the table rewinds to
        // the snapshot (the warm slot's generation matches and is
        // retained), then WAL replay rolls it forward again.
        app.restore_from(&dir).unwrap();
        let before = app.db.decode_cache_stats();
        let rows = app.all("note").unwrap();
        assert_eq!(rows.len(), 10, "5 notes × 2 facet rows, replay included");
        let stats = app.db.decode_cache_stats();
        assert_eq!(
            stats.misses, before.misses,
            "the retained slot must not pay a full re-decode"
        );
        assert_eq!(
            stats.delta_applies,
            before.delta_applies + 1,
            "the replayed write patches the snapshot as a delta"
        );

        // Byte-identity against the cold path: a fresh app restoring
        // the same directory decodes everything from scratch.
        let mut cold = note_app();
        cold.restore_from(&dir).unwrap();
        assert_eq!(grid(&app, 5), grid(&cold, 5));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The render-cache restore contract, same as the decode cache's:
    /// `restore_from` never flushes — it *revalidates*. An entry whose
    /// generation vector matches the restored table stamps stays warm,
    /// so the first read after a kill/restore round trip is a byte
    /// hit, not a re-render; and a post-restore write still
    /// invalidates it through the ordinary generation check.
    #[test]
    fn restore_keeps_matching_render_cache_entries_warm() {
        use crate::http::{Request, Response, Router};
        use crate::Executor;
        let dir = temp_dir("render_warm");
        let mut app = note_app();
        app.enable_persistence(&dir).unwrap();
        for i in 0..4 {
            app.create("note", vec![Value::Int(i), Value::from(format!("n{i}"))])
                .unwrap();
        }
        app.checkpoint_quiescent(&dir).unwrap();

        let mut router = Router::new();
        router.route_read_tables("notes", &["note"], |app: &App, req| {
            Response::ok(page(app, &req.viewer))
        });
        let request = [Request::new("notes", Viewer::User(1))];
        let cold = Executor::sequential()
            .run(&app, &router, &request)
            .remove(0);
        let before = app.render_cache_stats();
        assert_eq!((before.hits, before.misses), (0, 1));

        // Kill/restore over the same live app: the table rewinds to
        // the snapshot and WAL replay rolls it forward to exactly the
        // generation the page was stamped under.
        app.restore_from(&dir).unwrap();
        let warm = Executor::sequential()
            .run(&app, &router, &request)
            .remove(0);
        assert_eq!(warm, cold, "the warm hit serves the pre-kill bytes");
        let stats = app.render_cache_stats();
        assert_eq!(stats.hits, before.hits + 1, "warm across the restore");
        assert_eq!(stats.misses, before.misses, "no re-render happened");
        assert_eq!(stats.invalidated, 0);

        // Revalidate, not blind trust: a post-restore write moves the
        // generation and the stale page is dropped, not served.
        app.create("note", vec![Value::Int(1), Value::from("post-restore")])
            .unwrap();
        let fresh = Executor::sequential()
            .run(&app, &router, &request)
            .remove(0);
        assert!(fresh.body.contains("post-restore"));
        assert_eq!(app.render_cache_stats().invalidated, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Concurrent creates must leave the meta journal replayable:
    /// label allocation and the journal append happen under one
    /// guard, so records can never appear out of label-index order
    /// (which the strictly sequential replay would reject, bricking
    /// restore).
    #[test]
    fn concurrent_creates_keep_the_journal_replayable() {
        let dir = temp_dir("concurrent_creates");
        let mut app = note_app();
        app.enable_persistence(&dir).unwrap();
        app.checkpoint_quiescent(&dir).unwrap();
        let threads = 4i64;
        let per_thread = 16;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let app = &app;
                scope.spawn(move || {
                    for i in 0..per_thread {
                        app.create(
                            "note",
                            vec![Value::Int(t), Value::from(format!("c{t}-{i}"))],
                        )
                        .unwrap();
                    }
                });
            }
        });
        let mut restored = note_app();
        let stats = restored.restore_from(&dir).unwrap();
        assert_eq!(stats.journal_applied as i64, threads * per_thread);
        assert_eq!(grid(&restored, threads), grid(&app, threads));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_truncates_logs_and_is_atomic() {
        let dir = temp_dir("truncate");
        let mut app = note_app();
        app.enable_persistence(&dir).unwrap();
        app.create("note", vec![Value::Int(0), Value::from("x")])
            .unwrap();
        assert!(std::fs::metadata(dir.join(WAL_FILE)).unwrap().len() > 0);
        assert!(std::fs::metadata(dir.join(META_LOG_FILE)).unwrap().len() > 0);
        app.checkpoint_quiescent(&dir).unwrap();
        assert_eq!(std::fs::metadata(dir.join(WAL_FILE)).unwrap().len(), 0);
        assert_eq!(std::fs::metadata(dir.join(META_LOG_FILE)).unwrap().len(), 0);
        // No stray tmp files: the write was renamed into place.
        let stray: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains("tmp"))
            .collect();
        assert!(stray.is_empty(), "{stray:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn restore_preserves_facet_dag_sharing() {
        let dir = temp_dir("sharing");
        let app = note_app();
        for i in 0..8 {
            app.create("note", vec![Value::Int(i % 2), Value::from("same text")])
                .unwrap();
        }
        let stats = app.checkpoint_quiescent(&dir).unwrap();
        // 8 objects share leaf structure ("same text" rows differ only
        // in owner): the node table must be far smaller than
        // 8 × nodes-per-object.
        assert!(stats.facet_nodes > 0);

        let mut restored = note_app();
        restored.restore_from(&dir).unwrap();
        let again = restored.checkpoint_quiescent(temp_dir("sharing2")).unwrap();
        assert_eq!(
            again.facet_nodes, stats.facet_nodes,
            "re-interned DAGs have identical node counts (sharing preserved)"
        );
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(temp_dir("sharing2"));
    }

    #[test]
    fn admin_route_checkpoints_under_the_executor() {
        let dir = temp_dir("route");
        let app = note_app();
        app.create("note", vec![Value::Int(1), Value::from("served")])
            .unwrap();
        let mut router = Router::new();
        add_checkpoint_route(&mut router, &dir);
        let requests = vec![
            crate::Request::new("admin/checkpoint", Viewer::Anonymous),
            crate::Request::new("admin/checkpoint", Viewer::User(1)),
        ];
        let responses = crate::Executor::sequential().run(&app, &router, &requests);
        assert_eq!(responses[0].status, 403, "anonymous may not checkpoint");
        assert_eq!(responses[1].status, 200, "{}", responses[1].body);
        assert!(responses[1].body.starts_with("checkpoint:"));
        assert!(dir.join(CHECKPOINT_FILE).exists());
        let mut restored = note_app();
        restored.restore_from(&dir).unwrap();
        assert_eq!(grid(&restored, 2), grid(&app, 2));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Tentpole scenario: an injected crash *before* the tmp→snap
    /// rename must leave the previous checkpoint file the valid one —
    /// restore still reproduces the full pre-crash state from the old
    /// snapshot plus the (untruncated) logs, and a retried checkpoint
    /// succeeds.
    #[test]
    fn pre_rename_crash_leaves_the_previous_checkpoint_valid() {
        let dir = temp_dir("prerename");
        let mut app = note_app();
        app.enable_persistence(&dir).unwrap();
        app.create("note", vec![Value::Int(0), Value::from("base")])
            .unwrap();
        app.checkpoint_quiescent(&dir).unwrap();
        app.create("note", vec![Value::Int(1), Value::from("walled")])
            .unwrap();
        let before = grid(&app, 3);

        faults::arm_at(
            FaultPoint::CheckpointPreRename,
            0,
            FaultKind::Error,
            "jacq_ckpt_prerename",
        );
        let err = app.checkpoint_quiescent(&dir).unwrap_err();
        assert!(err.to_string().contains("injected"), "{err}");
        // The old snapshot + the untouched logs restore everything.
        let mut restored = note_app();
        restored.restore_from(&dir).unwrap();
        assert_eq!(grid(&restored, 3), before, "no acknowledged write lost");

        // The fault was one-shot: the retried checkpoint goes through
        // and truncates the logs.
        app.checkpoint_quiescent(&dir).unwrap();
        assert_eq!(std::fs::metadata(dir.join(WAL_FILE)).unwrap().len(), 0);
        let mut again = note_app();
        again.restore_from(&dir).unwrap();
        assert_eq!(grid(&again, 3), before);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Tentpole scenario: an injected crash *after* the rename but
    /// before the log truncation leaves the new snapshot next to logs
    /// that double-record its writes — replay idempotence (generation
    /// stamps, label-index skips) must absorb the overlap so nothing
    /// applies twice.
    #[test]
    fn post_rename_crash_overlap_is_absorbed_by_replay() {
        let dir = temp_dir("postrename");
        let mut app = note_app();
        app.enable_persistence(&dir).unwrap();
        for i in 0..3 {
            app.create("note", vec![Value::Int(i), Value::from(format!("n{i}"))])
                .unwrap();
        }
        faults::arm_at(
            FaultPoint::CheckpointPostRename,
            0,
            FaultKind::Error,
            "jacq_ckpt_postrename",
        );
        let err = app.checkpoint_quiescent(&dir).unwrap_err();
        assert!(err.to_string().contains("injected"), "{err}");
        // The rename happened, the truncation did not: overlap.
        assert!(std::fs::metadata(dir.join(WAL_FILE)).unwrap().len() > 0);
        assert!(std::fs::metadata(dir.join(META_LOG_FILE)).unwrap().len() > 0);

        let mut restored = note_app();
        restored.restore_from(&dir).unwrap();
        assert_eq!(grid(&restored, 4), grid(&app, 4));
        assert_eq!(
            restored.db.physical_rows("note").unwrap(),
            app.db.physical_rows("note").unwrap(),
            "no doubly-applied rows from the snapshot/log overlap"
        );
        // Exactly-once across the recovery: a fresh create allocates
        // the same next jid in both worlds.
        let j1 = app
            .create("note", vec![Value::Int(9), Value::from("after")])
            .unwrap();
        let j2 = restored
            .create("note", vec![Value::Int(9), Value::from("after")])
            .unwrap();
        assert_eq!(j1, j2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Tentpole scenario: injected read faults on restore surface as
    /// clean errors (never a panic), and the app object stays usable.
    #[test]
    fn injected_restore_read_faults_error_cleanly() {
        let dir = temp_dir("restoreread");
        let app = note_app();
        app.create("note", vec![Value::Int(1), Value::from("kept")])
            .unwrap();
        app.checkpoint_quiescent(&dir).unwrap();

        // Error kind: the open itself fails.
        faults::arm_at(
            FaultPoint::RestoreRead,
            0,
            FaultKind::Error,
            "jacq_ckpt_restoreread",
        );
        let mut fresh = note_app();
        let err = fresh.restore_from(&dir).unwrap_err();
        assert!(err.to_string().contains("injected"), "{err}");
        fresh
            .create("note", vec![Value::Int(2), Value::from("usable")])
            .unwrap();

        // ShortWrite kind: the snapshot is physically truncated, and
        // the damage flows through the real parsers.
        faults::arm_at(
            FaultPoint::RestoreRead,
            0,
            FaultKind::ShortWrite,
            "jacq_ckpt_restoreread",
        );
        let mut torn = note_app();
        assert!(torn.restore_from(&dir).is_err(), "truncated file rejected");
        torn.create("note", vec![Value::Int(3), Value::from("usable")])
            .unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Satellite: hand-corrupted snapshots — header bit-flips,
    /// truncations, and a bit-flip sweep — must yield clean
    /// [`FormError`]s, never a panic, and leave the app usable.
    #[test]
    fn corrupted_or_truncated_snapshot_errors_without_panicking() {
        let dir = temp_dir("bitflip");
        let app = note_app();
        for i in 0..3 {
            app.create("note", vec![Value::Int(i), Value::from(format!("n{i}"))])
                .unwrap();
        }
        app.checkpoint_quiescent(&dir).unwrap();
        let path = dir.join(CHECKPOINT_FILE);
        let pristine = std::fs::read(&path).unwrap();

        // A flipped header byte is always structural damage.
        let mut bytes = pristine.clone();
        bytes[3] ^= 0x20;
        std::fs::write(&path, &bytes).unwrap();
        let mut r = note_app();
        let err = r.restore_from(&dir).unwrap_err();
        assert!(matches!(err, FormError::Db(microdb::DbError::Persist(_))));
        r.create("note", vec![Value::Int(9), Value::from("ok")])
            .unwrap();

        // Truncations that cut inside a sized section (a cut that
        // only drops the final newline is semantically complete and
        // may legitimately restore): empty, a third, half, two
        // thirds.
        for keep in [
            0,
            pristine.len() / 3,
            pristine.len() / 2,
            2 * pristine.len() / 3,
        ] {
            std::fs::write(&path, &pristine[..keep]).unwrap();
            let mut r = note_app();
            assert!(
                r.restore_from(&dir).is_err(),
                "truncation to {keep} bytes must be rejected"
            );
            r.create("note", vec![Value::Int(9), Value::from("ok")])
                .unwrap();
        }

        // Bit-flip sweep: a flip in a payload byte may legitimately
        // decode (the value merely differs), but no position may ever
        // panic the parser or poison the app.
        let stride = (pristine.len() / 40).max(1);
        for pos in (0..pristine.len()).step_by(stride) {
            let mut bytes = pristine.clone();
            bytes[pos] ^= 0x40;
            std::fs::write(&path, &bytes).unwrap();
            let mut r = note_app();
            let _ = r.restore_from(&dir); // Ok or clean Err — no panic
            r.create("note", vec![Value::Int(9), Value::from("ok")])
                .unwrap();
        }

        // The pristine bytes still restore (the sweep broke nothing
        // about the app-building path itself).
        std::fs::write(&path, &pristine).unwrap();
        let mut r = note_app();
        r.restore_from(&dir).unwrap();
        assert_eq!(grid(&r, 3), grid(&app, 3));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The degraded-mode arc, end to end through served routes: a WAL
    /// append fault fails a write and flips the app read-only; writes
    /// answer `503 Retry-After` while reads and `admin/health` keep
    /// serving; the (exempt) `admin/checkpoint` route re-establishes
    /// durability and clears the mode; the retried write then lands
    /// exactly once.
    #[test]
    fn wal_fault_degrades_to_read_only_and_checkpoint_recovers() {
        use crate::http::Request;
        use crate::Executor;
        let dir = temp_dir("degrade");
        let mut app = note_app();
        app.enable_persistence(&dir).unwrap();
        app.create("note", vec![Value::Int(1), Value::from("seed")])
            .unwrap();
        let mut router = Router::new();
        router.route_read_tables("notes", &["note"], |app: &App, req| {
            Response::ok(page(app, &req.viewer))
        });
        router.route_tables("note/add", &[], &["note"], |app: &App, req| {
            let owner = req.viewer.user_jid().unwrap_or(-1);
            let text = req.params.get("text").cloned().unwrap_or_default();
            match app.create("note", vec![Value::Int(owner), Value::from(text)]) {
                Ok(jid) => Response::ok(jid.to_string()),
                Err(e) => Response::error(&e.to_string()),
            }
        });
        add_checkpoint_route(&mut router, &dir);
        add_health_route(&mut router);
        let run =
            |app: &App, req: Request| Executor::sequential().run(app, &router, &[req]).remove(0);

        let healthy = run(&app, Request::new("admin/health", Viewer::Anonymous));
        assert_eq!(healthy.status, 200);
        assert!(healthy.body.starts_with("ok\n"), "{}", healthy.body);
        assert!(
            healthy.body.contains("render_cache hits="),
            "health publishes the render-cache counters: {}",
            healthy.body
        );

        // The fault: this write's WAL append fails; the rows roll
        // back and the app degrades.
        faults::arm_at(
            FaultPoint::WalAppend,
            0,
            FaultKind::Error,
            "jacq_ckpt_degrade",
        );
        let failed = run(
            &app,
            Request::new("note/add", Viewer::User(1)).with_param("text", "marker-lost"),
        );
        assert_eq!(failed.status, 500, "{}", failed.body);
        assert!(app.is_degraded());

        // Degraded: writes shed, reads and health keep serving.
        let shed = run(
            &app,
            Request::new("note/add", Viewer::User(1)).with_param("text", "marker-shed"),
        );
        assert_eq!(shed.status, 503);
        assert_eq!(shed.header("Retry-After"), Some("1"));
        let health = run(&app, Request::new("admin/health", Viewer::Anonymous));
        assert_eq!(health.status, 503);
        assert!(
            health.body.contains("degraded (read-only)"),
            "{}",
            health.body
        );
        let read = run(&app, Request::new("notes", Viewer::User(1)));
        assert_eq!(read.status, 200);
        assert!(
            !read.body.contains("marker"),
            "neither failed nor shed write is visible"
        );

        // Recovery: the exempt checkpoint route runs, re-establishes
        // durability, and clears the mode.
        let ckpt = run(&app, Request::new("admin/checkpoint", Viewer::User(1)));
        assert_eq!(ckpt.status, 200, "{}", ckpt.body);
        assert!(!app.is_degraded());
        assert_eq!(
            run(&app, Request::new("admin/health", Viewer::Anonymous)).status,
            200
        );

        // The retried write lands exactly once, durably.
        let retry = run(
            &app,
            Request::new("note/add", Viewer::User(1)).with_param("text", "marker-kept"),
        );
        assert_eq!(retry.status, 200, "{}", retry.body);
        let page_now = run(&app, Request::new("notes", Viewer::User(1))).body;
        assert_eq!(page_now.matches("marker-kept").count(), 1);
        assert_eq!(page_now.matches("marker-lost").count(), 0);

        let mut restored = note_app();
        restored.restore_from(&dir).unwrap();
        assert_eq!(grid(&restored, 3), grid(&app, 3), "durable across restore");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn restore_from_missing_or_corrupt_checkpoint_errors() {
        let dir = temp_dir("corrupt");
        let mut app = note_app();
        assert!(app.restore_from(&dir).is_err(), "missing dir");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(CHECKPOINT_FILE), "not a checkpoint\n").unwrap();
        assert!(app.restore_from(&dir).is_err(), "corrupt file");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_reports_gc_of_dead_nodes() {
        let dir = temp_dir("gc");
        let app = note_app();
        app.create("note", vec![Value::Int(1), Value::from("alive")])
            .unwrap();
        // Request-scoped garbage: DAGs built and dropped.
        for i in 0..50 {
            let v: faceted::Faceted<i64> = faceted::Faceted::split(
                faceted::Label::from_index(2_000_000 + i),
                faceted::Faceted::leaf(i64::from(i)),
                faceted::Faceted::leaf(-1),
            );
            drop(v);
        }
        let stats = app.checkpoint_quiescent(&dir).unwrap();
        assert!(
            stats.gc_reclaimed >= 50,
            "quiescent GC reclaims the dead DAGs, got {}",
            stats.gc_reclaimed
        );
        assert!(stats.interner_nodes_after <= stats.interner_nodes_before);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
