//! Durable checkpoints for a whole application: database, FORM
//! metadata, policy bindings, and the interned facet DAGs — with
//! crash-safe restore.
//!
//! # What a checkpoint contains
//!
//! One atomic file (`checkpoint.snap`, written to a temp name and
//! renamed into place) holding four sections:
//!
//! 1. the **database snapshot** ([`microdb::Snapshot`]): schemas,
//!    rows, hash-index declarations, auto-increment cursors, and the
//!    per-table generation stamps;
//! 2. the **FORM metadata** ([`form::FormMeta`]): label-registry
//!    names in allocation order and per-table `jid` cursors — the
//!    state that keeps restored label indices from ever being
//!    re-allocated;
//! 3. the **policy bindings**: for every live label, which model
//!    policy it re-binds to plus the creation-time row snapshot the
//!    check closes over (§2.1.2 — policies are evaluated against the
//!    creation-time row and the output-time database, so both halves
//!    must survive);
//! 4. the **facet DAGs** of every logical object, exported through
//!    the interner's topological node table
//!    ([`faceted::export_nodes`]): restore re-interns them, so a
//!    rebooted process starts with the same node sharing (and a warm
//!    object cache) instead of re-deriving every DAG from rows.
//!
//! # Between checkpoints
//!
//! [`App::enable_persistence`] attaches two append-only logs to the
//! checkpoint directory: the storage engine's row-level write log
//! (`wal.log`, see [`microdb::wal`]) and the application's meta
//! journal (`meta.log`), which records each `create`'s label
//! allocations and policy bindings *before* its rows are written —
//! so a crash can strand rows without metadata only in the harmless
//! direction (metadata without rows), never label-index aliasing.
//!
//! # Quiescence and garbage collection
//!
//! [`App::checkpoint_quiescent`] takes the executor's global request
//! lock shared plus **all** declared table locks shared — writers
//! drain, concurrent readers keep flowing — and snapshots at that
//! point, then runs the interner's [`faceted::collect_garbage`] while
//! the store is maximally quiet. The served variant is
//! [`add_checkpoint_route`]: `admin/checkpoint` registers as a
//! footprint-less **write** route, which the executor already
//! dispatches under the exclusive global lock — the same quiescent
//! point, reached through ordinary request scheduling.

use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::fmt;
use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use faceted::NodeTable;
use form::{FacetedObject, FormError, FormMeta, FormResult};
use microdb::chunkstore::{
    is_valid_hash, load_rows, write_dirty_row_chunks, write_row_chunks, ChunkRef, ChunkStore,
    ChunkWriteStats, DirtyRows,
};
use microdb::faults::{self, FaultKind, FaultPoint};
use microdb::snapshot::{
    decode_value, encode_column, encode_value, escape_token, parse_column, unescape_token,
};
use microdb::wal::LineLog;
use microdb::{Row, Snapshot, TableSnapshot, Value, WriteLog};

use crate::app::App;
use crate::http::{Response, Router};
use crate::model::Viewer;

/// The atomic checkpoint file inside a persistence directory.
pub const CHECKPOINT_FILE: &str = "checkpoint.snap";
/// The storage engine's append-only row log.
pub const WAL_FILE: &str = "wal.log";
/// The application's append-only metadata journal.
pub const META_LOG_FILE: &str = "meta.log";

fn persist_err(what: impl fmt::Display) -> FormError {
    FormError::Db(microdb::DbError::Persist(what.to_string()))
}

/// Counters describing one completed checkpoint.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CheckpointStats {
    /// Tables captured.
    pub tables: usize,
    /// Physical rows captured.
    pub rows: usize,
    /// Logical objects covered (exported or carried over).
    pub objects: usize,
    /// Interner nodes across the exported object-group tables (shared
    /// nodes are counted once per group holding them).
    pub facet_nodes: usize,
    /// Interner nodes (object-DAG store) before the quiescent GC.
    pub interner_nodes_before: usize,
    /// Interner nodes after the GC.
    pub interner_nodes_after: usize,
    /// Nodes reclaimed by [`faceted::collect_garbage`].
    pub gc_reclaimed: usize,
    /// Chunk files physically written by this checkpoint.
    pub chunks_written: usize,
    /// Chunks satisfied without writing bytes: carried over from the
    /// previous checkpoint, or re-encoded to content already stored.
    pub chunks_reused: usize,
    /// Whether this checkpoint ran the incremental (clean-chunk
    /// carry-over) path rather than a full re-export.
    pub incremental: bool,
}

impl fmt::Display for CheckpointStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "checkpoint: tables={} rows={} objects={} facet_nodes={} \
             interner_nodes={}->{} gc_reclaimed={} chunks_written={} \
             chunks_reused={} mode={}",
            self.tables,
            self.rows,
            self.objects,
            self.facet_nodes,
            self.interner_nodes_before,
            self.interner_nodes_after,
            self.gc_reclaimed,
            self.chunks_written,
            self.chunks_reused,
            if self.incremental {
                "incremental"
            } else {
                "full"
            }
        )
    }
}

/// Counters describing one completed restore.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct RestoreStats {
    /// Tables restored from the snapshot section.
    pub tables: usize,
    /// Physical rows restored from the snapshot section.
    pub rows: usize,
    /// Policy bindings restored (snapshot section + journal replay).
    pub policies: usize,
    /// Facet DAGs re-interned into the warm object cache.
    pub objects_primed: usize,
    /// Row-log records replayed on top of the snapshot.
    pub wal_applied: usize,
    /// Journal `create` records replayed.
    pub journal_applied: usize,
}

impl fmt::Display for RestoreStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "restore: tables={} rows={} policies={} objects_primed={} \
             wal_applied={} journal_applied={}",
            self.tables,
            self.rows,
            self.policies,
            self.objects_primed,
            self.wal_applied,
            self.journal_applied
        )
    }
}

// ---------------------------------------------------------------------
// The meta journal: append-only `create` records between checkpoints.
// ---------------------------------------------------------------------

/// One journal record: everything [`App::create`] changes outside the
/// database — the labels it allocated (index + stored name) and the
/// creation-time row its policies close over.
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct CreateRecord {
    pub(crate) model: String,
    pub(crate) jid: i64,
    /// `(label index, stored name)` per model policy, in policy order.
    pub(crate) labels: Vec<(u32, String)>,
    pub(crate) row: Row,
}

fn encode_create(record: &CreateRecord) -> String {
    let mut out = String::from("create ");
    out.push_str(&escape_token(&record.model));
    out.push_str(&format!(" {} {}", record.jid, record.labels.len()));
    for (ix, name) in &record.labels {
        out.push_str(&format!(" {ix} {}", escape_token(name)));
    }
    out.push_str(&format!(" {}", record.row.len()));
    for v in &record.row {
        out.push(' ');
        out.push_str(&encode_value(v));
    }
    out.push_str(" .");
    out
}

fn decode_create(line: &str) -> FormResult<CreateRecord> {
    let bad = |what: &str| persist_err(format!("bad meta-journal record: {what} in {line:?}"));
    let mut tokens = line.split_whitespace();
    if tokens.next() != Some("create") {
        return Err(bad("unknown record kind"));
    }
    let mut next = |what: &str| tokens.next().ok_or_else(|| bad(what));
    let model = unescape_token(next("model")?)?;
    let jid: i64 = next("jid")?.parse().map_err(|_| bad("jid"))?;
    let n_labels: usize = next("label count")?
        .parse()
        .map_err(|_| bad("label count"))?;
    let mut labels = Vec::with_capacity(n_labels);
    for _ in 0..n_labels {
        let ix: u32 = next("label index")?
            .parse()
            .map_err(|_| bad("label index"))?;
        labels.push((ix, unescape_token(next("label name")?)?));
    }
    let n_values: usize = next("value count")?
        .parse()
        .map_err(|_| bad("value count"))?;
    let mut row = Row::with_capacity(n_values);
    for _ in 0..n_values {
        row.push(decode_value(next("value")?)?);
    }
    if next("terminator")? != "." {
        return Err(bad("missing terminator"));
    }
    if tokens.next().is_some() {
        return Err(bad("trailing tokens"));
    }
    Ok(CreateRecord {
        model,
        jid,
        labels,
        row,
    })
}

/// The append-only application-metadata journal: [`CreateRecord`]s
/// over the storage engine's shared [`LineLog`] machinery (flushed
/// appends, truncation after checkpoints, torn-tail detection — one
/// implementation for both logs).
#[derive(Debug)]
pub(crate) struct MetaJournal {
    log: LineLog,
}

impl MetaJournal {
    pub(crate) fn open(path: impl AsRef<Path>) -> std::io::Result<MetaJournal> {
        Ok(MetaJournal {
            log: LineLog::open(path)?,
        })
    }

    pub(crate) fn append(&self, record: &CreateRecord) -> FormResult<()> {
        self.log
            .append_line(&encode_create(record))
            .map_err(|e| persist_err(format!("meta journal append: {e}")))
    }

    pub(crate) fn truncate(&self) -> std::io::Result<()> {
        self.log.truncate()
    }

    /// Reads the records at `path`; a torn final line (no trailing
    /// newline) is discarded, corruption elsewhere is an error. A
    /// missing file yields no records.
    pub(crate) fn read_records(path: &Path) -> FormResult<Vec<CreateRecord>> {
        let Some((lines, complete_tail)) = LineLog::read_lines(path)
            .map_err(|e| persist_err(format!("meta journal read: {e}")))?
        else {
            return Ok(Vec::new());
        };
        let mut records = Vec::with_capacity(lines.len());
        for (i, line) in lines.iter().enumerate() {
            match decode_create(line) {
                Ok(r) => records.push(r),
                Err(e) => {
                    if i + 1 == lines.len() && !complete_tail {
                        break; // torn tail: the crash was mid-append
                    }
                    return Err(e);
                }
            }
        }
        Ok(records)
    }
}

// ---------------------------------------------------------------------
// Facet-DAG section codecs: Option<Row> leaves as single-line strings.
// ---------------------------------------------------------------------

/// Encodes a [`FacetedObject`] leaf: `-` for absent, `+ v v …` for a
/// row of whitespace-free value tokens.
fn encode_object_leaf(leaf: &Option<Row>) -> String {
    match leaf {
        None => "-".to_owned(),
        Some(row) => {
            let mut out = String::from("+");
            for v in row {
                out.push(' ');
                out.push_str(&encode_value(v));
            }
            out
        }
    }
}

fn decode_object_leaf(payload: &str) -> Option<Option<Row>> {
    if payload == "-" {
        return Some(None);
    }
    let rest = payload.strip_prefix('+')?;
    let row: Result<Row, _> = rest.split_whitespace().map(decode_value).collect();
    row.ok().map(Some)
}

// ---------------------------------------------------------------------
// The chunked manifest (`checkpoint.snap` v2) and its chunk payloads.
// ---------------------------------------------------------------------

/// Logical objects per jid-range group chunk: group `g` covers jids
/// `(g·32, (g+1)·32]`. Jid ranges are stable across an object's whole
/// life (unlike physical row positions, which `save`'s re-insert
/// moves), so a single-object write dirties exactly one group.
const GROUP_JIDS: i64 = 32;

/// The group index a jid belongs to.
fn group_of(jid: i64) -> i64 {
    (jid - 1).div_euclid(GROUP_JIDS)
}

/// One object-group chunk as recorded in a manifest's model section.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct GroupRef {
    /// Group index (jid range `(group·32, (group+1)·32]`).
    pub(crate) group: i64,
    /// Content hash of the group chunk.
    pub(crate) hash: String,
    /// Logical objects in the group.
    pub(crate) objects: usize,
    /// Node-table entries in the group's exported DAG table.
    pub(crate) nodes: usize,
}

/// One table's entry in the manifest: everything `TableSnapshot`
/// carried except the rows themselves, which live in content-addressed
/// chunks.
pub(crate) struct TableManifest {
    pub(crate) name: String,
    pub(crate) generation: u64,
    pub(crate) next_auto: i64,
    pub(crate) rows: usize,
    pub(crate) columns: Vec<microdb::ColumnDef>,
    pub(crate) indexes: Vec<String>,
    pub(crate) chunks: Vec<ChunkRef>,
}

/// One model's object-group directory in the manifest.
pub(crate) struct ModelManifest {
    pub(crate) table: String,
    /// The model table's generation when the groups were captured —
    /// restore primes the warm object cache only while this still
    /// matches after WAL replay.
    pub(crate) generation: u64,
    pub(crate) groups: Vec<GroupRef>,
}

/// The root manifest: the one small file naming every chunk of a
/// checkpoint. Committed atomically via tmp + rename; everything
/// heavy lives in the `chunks/` store it points into.
pub(crate) struct Manifest {
    /// Hash of the app-meta chunk (FORM metadata + policy bindings).
    pub(crate) app_meta: String,
    pub(crate) tables: Vec<TableManifest>,
    pub(crate) models: Vec<ModelManifest>,
}

impl Manifest {
    fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "jacqueline-checkpoint v2");
        let _ = writeln!(out, "app-meta {}", self.app_meta);
        let _ = writeln!(out, "db-tables {}", self.tables.len());
        for t in &self.tables {
            let _ = writeln!(out, "table {}", escape_token(&t.name));
            let _ = writeln!(out, "meta {} {} {}", t.generation, t.next_auto, t.rows);
            let _ = writeln!(out, "columns {}", t.columns.len());
            for c in &t.columns {
                let _ = writeln!(out, "c {}", encode_column(c));
            }
            let _ = writeln!(out, "indexes {}", t.indexes.len());
            for x in &t.indexes {
                let _ = writeln!(out, "x {}", escape_token(x));
            }
            let _ = writeln!(out, "chunks {}", t.chunks.len());
            for c in &t.chunks {
                let _ = writeln!(out, "h {} {}", c.hash, c.rows);
            }
            let _ = writeln!(out, "end");
        }
        let _ = writeln!(out, "objects {}", self.models.len());
        for m in &self.models {
            let _ = writeln!(
                out,
                "model {} {} {}",
                escape_token(&m.table),
                m.generation,
                m.groups.len()
            );
            for g in &m.groups {
                let _ = writeln!(out, "g {} {} {} {}", g.group, g.hash, g.objects, g.nodes);
            }
            let _ = writeln!(out, "end");
        }
        // The terminator proves the manifest was not truncated: every
        // prefix of the file fails to parse.
        let _ = writeln!(out, "manifest-end");
        out
    }

    /// Every chunk hash the manifest references — the keep-set for the
    /// post-checkpoint store sweep.
    fn referenced_hashes(&self) -> HashSet<String> {
        let mut keep = HashSet::new();
        keep.insert(self.app_meta.clone());
        for t in &self.tables {
            for c in &t.chunks {
                keep.insert(c.hash.clone());
            }
        }
        for m in &self.models {
            for g in &m.groups {
                keep.insert(g.hash.clone());
            }
        }
        keep
    }

    fn from_lines<'a>(mut cursor: impl Iterator<Item = &'a str>) -> FormResult<Manifest> {
        let mut next = |what: &str| -> FormResult<&str> {
            cursor
                .next()
                .ok_or_else(|| persist_err(format!("manifest truncated at {what}")))
        };
        let field = |line: &str, prefix: &str| -> FormResult<String> {
            line.strip_prefix(prefix)
                .map(str::to_owned)
                .ok_or_else(|| persist_err(format!("expected {prefix:?} line, got {line:?}")))
        };
        let count = |line: &str, prefix: &str| -> FormResult<usize> {
            field(line, prefix)?
                .parse()
                .map_err(|_| persist_err(format!("bad count line {line:?}")))
        };
        let hash_of = |tok: &str| -> FormResult<String> {
            if is_valid_hash(tok) {
                Ok(tok.to_owned())
            } else {
                Err(persist_err(format!("malformed chunk hash {tok:?}")))
            }
        };
        let app_meta = hash_of(&field(next("app-meta")?, "app-meta ")?)?;
        let n_tables = count(next("db-tables")?, "db-tables ")?;
        let mut tables = Vec::with_capacity(n_tables);
        for _ in 0..n_tables {
            let name = unescape_token(&field(next("table")?, "table ")?)?;
            let meta = field(next("meta")?, "meta ")?;
            let mut parts = meta.split(' ');
            let bad_meta = || persist_err(format!("bad meta line {meta:?}"));
            let generation: u64 = parts
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(bad_meta)?;
            let next_auto: i64 = parts
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(bad_meta)?;
            let rows: usize = parts
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(bad_meta)?;
            if parts.next().is_some() {
                return Err(bad_meta());
            }
            let n_columns = count(next("columns")?, "columns ")?;
            let mut columns = Vec::with_capacity(n_columns);
            for _ in 0..n_columns {
                columns.push(parse_column(&field(next("column")?, "c ")?)?);
            }
            let n_indexes = count(next("indexes")?, "indexes ")?;
            let mut indexes = Vec::with_capacity(n_indexes);
            for _ in 0..n_indexes {
                indexes.push(unescape_token(&field(next("index")?, "x ")?)?);
            }
            let n_chunks = count(next("chunks")?, "chunks ")?;
            let mut chunks = Vec::with_capacity(n_chunks);
            for _ in 0..n_chunks {
                let spec = field(next("chunk")?, "h ")?;
                let (hash, rows) = spec
                    .split_once(' ')
                    .ok_or_else(|| persist_err(format!("bad chunk line {spec:?}")))?;
                chunks.push(ChunkRef {
                    hash: hash_of(hash)?,
                    rows: rows
                        .parse()
                        .map_err(|_| persist_err(format!("bad chunk rows {spec:?}")))?,
                });
            }
            if next("table end")? != "end" {
                return Err(persist_err(format!("unterminated table {name:?}")));
            }
            let chunk_rows: usize = chunks.iter().map(|c| c.rows).sum();
            if chunk_rows != rows {
                return Err(persist_err(format!(
                    "table {name:?} declares {rows} rows but its chunks hold {chunk_rows}"
                )));
            }
            tables.push(TableManifest {
                name,
                generation,
                next_auto,
                rows,
                columns,
                indexes,
                chunks,
            });
        }
        let n_models = count(next("objects")?, "objects ")?;
        let mut models = Vec::with_capacity(n_models);
        for _ in 0..n_models {
            let spec = field(next("model")?, "model ")?;
            let mut parts = spec.split(' ');
            let bad = || persist_err(format!("bad model line {spec:?}"));
            let table = unescape_token(parts.next().ok_or_else(bad)?)?;
            let generation: u64 = parts.next().and_then(|v| v.parse().ok()).ok_or_else(bad)?;
            let n_groups: usize = parts.next().and_then(|v| v.parse().ok()).ok_or_else(bad)?;
            if parts.next().is_some() {
                return Err(bad());
            }
            let mut groups = Vec::with_capacity(n_groups);
            for _ in 0..n_groups {
                let spec = field(next("group")?, "g ")?;
                let bad = || persist_err(format!("bad group line {spec:?}"));
                let mut parts = spec.split(' ');
                let group: i64 = parts.next().and_then(|v| v.parse().ok()).ok_or_else(bad)?;
                let hash = hash_of(parts.next().ok_or_else(bad)?)?;
                let objects: usize = parts.next().and_then(|v| v.parse().ok()).ok_or_else(bad)?;
                let nodes: usize = parts.next().and_then(|v| v.parse().ok()).ok_or_else(bad)?;
                if parts.next().is_some() {
                    return Err(bad());
                }
                groups.push(GroupRef {
                    group,
                    hash,
                    objects,
                    nodes,
                });
            }
            if next("model end")? != "end" {
                return Err(persist_err(format!("unterminated model {table:?}")));
            }
            models.push(ModelManifest {
                table,
                generation,
                groups,
            });
        }
        if next("manifest terminator")? != "manifest-end" {
            return Err(persist_err("manifest missing terminator"));
        }
        Ok(Manifest {
            app_meta,
            tables,
            models,
        })
    }
}

// ---------------------------------------------------------------------
// Chunk payload codecs.
// ---------------------------------------------------------------------

fn encode_binding(b: &(u32, String, usize, i64, Row)) -> String {
    let (ix, model, policy_ix, jid, row) = b;
    let mut out = format!(
        "b {ix} {} {policy_ix} {jid} {}",
        escape_token(model),
        row.len()
    );
    for v in row {
        out.push(' ');
        out.push_str(&encode_value(v));
    }
    out.push_str(" .");
    out
}

fn decode_binding(line: &str) -> FormResult<(u32, String, usize, i64, Row)> {
    let bad = || persist_err(format!("bad binding line {line:?}"));
    let mut tokens = line.split_whitespace();
    if tokens.next() != Some("b") {
        return Err(bad());
    }
    let mut tok = || tokens.next().ok_or_else(bad);
    let ix: u32 = tok()?.parse().map_err(|_| bad())?;
    let model = unescape_token(tok()?)?;
    let policy_ix: usize = tok()?.parse().map_err(|_| bad())?;
    let jid: i64 = tok()?.parse().map_err(|_| bad())?;
    let n_values: usize = tok()?.parse().map_err(|_| bad())?;
    let mut row = Row::with_capacity(n_values);
    for _ in 0..n_values {
        row.push(decode_value(tok()?)?);
    }
    if tok()? != "." {
        return Err(bad());
    }
    Ok((ix, model, policy_ix, jid, row))
}

/// The app-meta chunk: FORM metadata (label registry + jid cursors)
/// followed by the policy-binding section. One chunk for the whole
/// app — it is small, and it changes exactly when [`App::create`] or
/// a policy binding does (`meta_epoch`), so an idle metadata surface
/// costs nothing per checkpoint.
fn encode_app_meta_chunk(meta: &FormMeta, bindings: &[(u32, String, usize, i64, Row)]) -> Vec<u8> {
    let mut out = meta.to_text();
    out.push_str(&format!("app-meta v1 {}\n", bindings.len()));
    for b in bindings {
        out.push_str(&encode_binding(b));
        out.push('\n');
    }
    out.into_bytes()
}

type Bindings = Vec<(u32, String, usize, i64, Row)>;

fn decode_app_meta_chunk(bytes: &[u8]) -> FormResult<(FormMeta, Bindings)> {
    let text =
        std::str::from_utf8(bytes).map_err(|_| persist_err("app-meta chunk is not UTF-8"))?;
    let mut cursor = text.lines();
    let meta = FormMeta::from_lines(&mut cursor)?;
    let header = cursor
        .next()
        .ok_or_else(|| persist_err("app-meta chunk truncated at bindings header"))?;
    let n_bindings: usize = header
        .strip_prefix("app-meta v1 ")
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| persist_err(format!("bad app-meta header {header:?}")))?;
    let mut bindings = Vec::with_capacity(n_bindings);
    for _ in 0..n_bindings {
        let line = cursor
            .next()
            .ok_or_else(|| persist_err("app-meta chunk truncated at binding"))?;
        bindings.push(decode_binding(line)?);
    }
    if cursor.next().is_some() {
        return Err(persist_err("trailing lines in app-meta chunk"));
    }
    Ok((meta, bindings))
}

/// An object-group chunk: the group's jids (ascending) followed by the
/// exported node table of their facet DAGs, roots aligned with the
/// jid list.
fn encode_group_chunk(jids: &[i64], facets: &NodeTable) -> Vec<u8> {
    let mut out = format!("group v1 {}\n", jids.len());
    for jid in jids {
        out.push_str(&format!("f {jid}\n"));
    }
    out.push_str(&facets.to_text());
    out.into_bytes()
}

fn decode_group_chunk(bytes: &[u8]) -> FormResult<(Vec<i64>, NodeTable)> {
    let text = std::str::from_utf8(bytes).map_err(|_| persist_err("group chunk is not UTF-8"))?;
    let mut cursor = text.lines();
    let header = cursor
        .next()
        .ok_or_else(|| persist_err("empty group chunk"))?;
    let n_jids: usize = header
        .strip_prefix("group v1 ")
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| persist_err(format!("bad group header {header:?}")))?;
    let mut jids = Vec::with_capacity(n_jids);
    for _ in 0..n_jids {
        let line = cursor
            .next()
            .ok_or_else(|| persist_err("group chunk truncated at jid"))?;
        let jid: i64 = line
            .strip_prefix("f ")
            .and_then(|j| j.parse().ok())
            .ok_or_else(|| persist_err(format!("bad group jid line {line:?}")))?;
        jids.push(jid);
    }
    let facets = NodeTable::from_lines(&mut cursor).map_err(persist_err)?;
    if facets.roots.len() != jids.len() {
        return Err(persist_err(format!(
            "group chunk lists {} jids but its node table has {} roots",
            jids.len(),
            facets.roots.len()
        )));
    }
    if cursor.next().is_some() {
        return Err(persist_err("trailing lines in group chunk"));
    }
    Ok((jids, facets))
}

// ---------------------------------------------------------------------
// Clean-chunk memory and observability.
// ---------------------------------------------------------------------

/// What the last successful checkpoint wrote — held on the [`App`] so
/// the next checkpoint can prove chunks clean (by generation stamp /
/// `meta_epoch`) and carry them over without re-serializing. Dropping
/// it is always safe: the next checkpoint simply runs the full path.
pub(crate) struct CheckpointMemory {
    /// The directory the memory describes; a checkpoint to any other
    /// directory ignores it.
    pub(crate) dir: PathBuf,
    /// `meta_epoch` at app-meta export time; `None` forces re-export
    /// (set after a restore that replayed any log records).
    pub(crate) app_meta_epoch: Option<u64>,
    pub(crate) app_meta_hash: String,
    pub(crate) tables: BTreeMap<String, TableMemory>,
    pub(crate) models: BTreeMap<String, ModelMemory>,
    /// Chunk counters of the checkpoint that produced this memory.
    pub(crate) last_written: usize,
    pub(crate) last_reused: usize,
    pub(crate) last_incremental: bool,
}

pub(crate) struct TableMemory {
    pub(crate) generation: u64,
    pub(crate) rows: usize,
    pub(crate) chunks: Vec<ChunkRef>,
}

pub(crate) struct ModelMemory {
    pub(crate) generation: u64,
    pub(crate) groups: Vec<GroupRef>,
}

/// A snapshot of checkpoint observability for `admin/health` and
/// operator tooling.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckpointObservability {
    /// The generation vector the last checkpoint captured, per table.
    pub generations: BTreeMap<String, u64>,
    /// Chunk files the last checkpoint physically wrote.
    pub chunks_written: usize,
    /// Chunks the last checkpoint reused without writing bytes.
    pub chunks_reused: usize,
    /// Whether the last checkpoint ran the incremental path.
    pub incremental: bool,
}

// ---------------------------------------------------------------------
// Manifest file I/O (tmp + rename discipline, fault points).
// ---------------------------------------------------------------------

pub(crate) fn write_manifest_file(path: &Path, text: &str) -> FormResult<()> {
    let dir = path
        .parent()
        .ok_or_else(|| persist_err("checkpoint path has no parent directory"))?;
    let tmp = dir.join(format!(
        ".{}.tmp-{}",
        path.file_name()
            .and_then(|n| n.to_str())
            .unwrap_or(CHECKPOINT_FILE),
        std::process::id()
    ));
    let io_err = |e: std::io::Error| persist_err(format!("checkpoint write: {e}"));
    {
        let mut out = BufWriter::new(File::create(&tmp).map_err(io_err)?);
        out.write_all(text.as_bytes()).map_err(io_err)?;
        out.flush().map_err(io_err)?;
        out.get_ref().sync_all().map_err(io_err)?;
    }
    // Injected crash point: die *before* the rename. The tmp file is
    // left behind as debris (exactly what a real crash leaves) and
    // the previous `checkpoint.snap` must remain the valid one.
    if faults::check(FaultPoint::CheckpointPreRename, path).is_some() {
        return Err(io_err(faults::injected_err("checkpoint pre-rename crash")));
    }
    // The atomic step: readers see either the old checkpoint or the
    // complete new one, never a torn file.
    std::fs::rename(&tmp, path).map_err(io_err)?;
    // Make the rename itself durable before the caller truncates the
    // logs: without the directory fsync, a power loss could persist
    // the truncations but not the rename, leaving the *old* snapshot
    // next to *empty* logs — silently dropping every write since the
    // previous checkpoint.
    File::open(dir).and_then(|d| d.sync_all()).map_err(io_err)?;
    // Injected crash point: die *after* the rename but before the
    // caller truncates the logs — the new snapshot and the old logs
    // overlap, and replay idempotence (generation stamps) must absorb
    // every doubly-recorded write.
    if faults::check(FaultPoint::CheckpointPostRename, path).is_some() {
        return Err(io_err(faults::injected_err("checkpoint post-rename crash")));
    }
    Ok(())
}

pub(crate) fn read_manifest_file(path: &Path) -> FormResult<Manifest> {
    match faults::check(FaultPoint::RestoreRead, path) {
        Some(FaultKind::Error) => {
            return Err(persist_err(format!(
                "open {}: {}",
                path.display(),
                faults::injected_err("checkpoint read")
            )));
        }
        Some(FaultKind::ShortWrite) => {
            // Physically truncate the manifest to half its length so
            // the damage flows through the *real* parse paths below —
            // the injected analogue of a torn copy or a bad sector.
            let len = std::fs::metadata(path)
                .map_err(|e| persist_err(format!("checkpoint corrupt-inject: {e}")))?
                .len();
            std::fs::OpenOptions::new()
                .write(true)
                .open(path)
                .and_then(|f| f.set_len(len / 2))
                .map_err(|e| persist_err(format!("checkpoint corrupt-inject: {e}")))?;
        }
        None => {}
    }
    let text = std::fs::read_to_string(path)
        .map_err(|e| persist_err(format!("open {}: {e}", path.display())))?;
    let mut cursor = text.lines();
    let header = cursor
        .next()
        .ok_or_else(|| persist_err("empty checkpoint manifest"))?;
    if header != "jacqueline-checkpoint v2" {
        return Err(persist_err(format!("bad checkpoint header {header:?}")));
    }
    Manifest::from_lines(cursor)
}

// ---------------------------------------------------------------------
// App-level checkpoint / restore.
// ---------------------------------------------------------------------

impl App {
    /// Attaches the persistence logs (`wal.log` + `meta.log`) in
    /// `dir`, creating the directory if needed. From this point every
    /// row-level write and every `create`'s metadata append durable
    /// records, superseded at each checkpoint.
    ///
    /// # Errors
    ///
    /// I/O errors opening the logs.
    pub fn enable_persistence(&mut self, dir: impl AsRef<Path>) -> FormResult<()> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)
            .map_err(|e| persist_err(format!("create {}: {e}", dir.display())))?;
        let wal = WriteLog::open(dir.join(WAL_FILE))
            .map_err(|e| persist_err(format!("open write log: {e}")))?;
        self.db.attach_wal(Arc::new(wal));
        let journal = MetaJournal::open(dir.join(META_LOG_FILE))
            .map_err(|e| persist_err(format!("open meta journal: {e}")))?;
        self.journal = Some(Arc::new(journal));
        // Remember the durable home: the scheduler checkpoints here.
        *self.persist_dir.write().expect("persist dir") = Some(dir.to_path_buf());
        Ok(())
    }

    /// Observability snapshot of the last successful checkpoint (or
    /// restore) of this process: the captured generation vector and
    /// the chunk written/reused split. `None` before any checkpoint.
    #[must_use]
    pub fn checkpoint_observability(&self) -> Option<CheckpointObservability> {
        let guard = self.ckpt_memory.lock().expect("checkpoint memory");
        guard.as_ref().map(|m| CheckpointObservability {
            generations: m
                .tables
                .iter()
                .map(|(name, t)| (name.clone(), t.generation))
                .collect(),
            chunks_written: m.last_written,
            chunks_reused: m.last_reused,
            incremental: m.last_incremental,
        })
    }

    /// Takes a checkpoint **assuming the caller holds a quiescent
    /// point** (no concurrent writers): snapshots the database,
    /// exports FORM metadata, policy bindings and every object's
    /// facet DAG, atomically replaces `dir/checkpoint.snap`,
    /// truncates the attached logs (the checkpoint supersedes them),
    /// and finally runs the interner's garbage collector — the
    /// quiescent point is exactly when dead nodes from completed
    /// requests are collectable.
    ///
    /// Use [`App::checkpoint_quiescent`] unless you are already
    /// inside a quiescent context (the `admin/checkpoint` route is:
    /// the executor dispatches footprint-less write routes under the
    /// exclusive global lock).
    ///
    /// # Errors
    ///
    /// Export or I/O failures; the previous checkpoint file is left
    /// intact on any error.
    pub fn checkpoint_to(&self, dir: impl AsRef<Path>) -> FormResult<CheckpointStats> {
        use std::sync::atomic::Ordering;
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)
            .map_err(|e| persist_err(format!("create {}: {e}", dir.display())))?;
        let mut stats = CheckpointStats {
            interner_nodes_before: object_store_nodes(),
            ..CheckpointStats::default()
        };

        // Take the clean-chunk memory if it describes *this*
        // directory; its presence selects the incremental path. It is
        // held out of the app for the duration, so a failure part-way
        // leaves no memory behind and the next attempt runs full.
        let memory = {
            let mut guard = self.ckpt_memory.lock().expect("checkpoint memory");
            match guard.take() {
                Some(m) if m.dir == dir && self.incremental_checkpoints_enabled() => Some(m),
                _ => None,
            }
        };
        let incremental = memory.is_some();
        stats.incremental = incremental;

        let store =
            ChunkStore::open(dir).map_err(|e| persist_err(format!("open chunk store: {e}")))?;
        let mut chunk_stats = ChunkWriteStats::default();

        // App-meta chunk: clean exactly when no create/bind moved the
        // epoch since the last export to this store.
        let epoch = self.meta_epoch.load(Ordering::Acquire);
        let app_meta = match memory
            .as_ref()
            .filter(|m| m.app_meta_epoch == Some(epoch))
            .map(|m| m.app_meta_hash.clone())
        {
            Some(hash) => {
                chunk_stats.reused += 1;
                hash
            }
            None => {
                let meta = self.db.export_meta();
                let bindings = self.export_policy_bindings();
                let (hash, written) = store
                    .insert(&encode_app_meta_chunk(&meta, &bindings))
                    .map_err(|e| persist_err(format!("write app-meta chunk: {e}")))?;
                if written {
                    chunk_stats.written += 1;
                } else {
                    chunk_stats.reused += 1;
                }
                hash
            }
        };

        // Row chunks, table by table. Three tiers: an unchanged
        // generation reuses the previous chunk list without touching a
        // row; a changed table whose journal still reaches back folds
        // its deltas into per-chunk dirty bits and re-encodes only
        // those; a slid journal (or no memory) re-chunks the table —
        // where the content-addressed store still dedups untouched
        // spans by hash.
        let db = self.db.raw_ref();
        let mut tables = Vec::new();
        for name in db.table_names().iter().map(|s| (*s).to_owned()) {
            let t = db.table(&name)?;
            let generation = t.generation();
            stats.tables += 1;
            stats.rows += t.rows().len();
            let prev = memory.as_ref().and_then(|m| m.tables.get(&name));
            let chunks = match prev {
                Some(p) if p.generation == generation => {
                    chunk_stats.reused += p.chunks.len();
                    p.chunks.clone()
                }
                Some(p) => {
                    let dirty = t.deltas_since(p.generation).map(|deltas| {
                        let mut d = DirtyRows::new(p.rows);
                        for delta in deltas {
                            d.apply(delta);
                        }
                        d
                    });
                    let (chunks, s) = match dirty {
                        Some(d) => write_dirty_row_chunks(&store, t.rows(), &p.chunks, &d),
                        None => write_row_chunks(&store, t.rows()),
                    }
                    .map_err(|e| persist_err(format!("write chunks of {name:?}: {e}")))?;
                    chunk_stats.absorb(s);
                    chunks
                }
                None => {
                    let (chunks, s) = write_row_chunks(&store, t.rows())
                        .map_err(|e| persist_err(format!("write chunks of {name:?}: {e}")))?;
                    chunk_stats.absorb(s);
                    chunks
                }
            };
            tables.push(TableManifest {
                name: name.clone(),
                generation,
                next_auto: t.next_auto(),
                rows: t.rows().len(),
                columns: t.schema().columns().to_vec(),
                indexes: t
                    .indexed_columns()
                    .iter()
                    .map(|s| (*s).to_owned())
                    .collect(),
                chunks,
            });
        }

        // Object-group chunks: each model's objects partition into
        // fixed jid ranges; `touched_jids_since` names the groups a
        // write dirtied, everything else carries its previous
        // reference over without re-walking a DAG.
        let mut models = Vec::new();
        for model in self.model_names() {
            let generation = db.generation(&model)?;
            let jids = self.db.object_jids(&model)?;
            let prev = memory.as_ref().and_then(|m| m.models.get(&model));
            let prev_groups: BTreeMap<i64, &GroupRef> = prev
                .map(|p| p.groups.iter().map(|g| (g.group, g)).collect())
                .unwrap_or_default();
            // Which groups changed? `None` means "unknown — treat all
            // as dirty" (no memory, or the journal window slid).
            let touched: Option<BTreeSet<i64>> = match prev {
                Some(p) if p.generation == generation => Some(BTreeSet::new()),
                Some(p) => self
                    .db
                    .touched_jids_since(&model, p.generation)?
                    .map(|jids| jids.iter().map(|&j| group_of(j)).collect()),
                None => None,
            };
            let mut groups: Vec<GroupRef> = Vec::new();
            let mut ix = 0;
            while ix < jids.len() {
                let group = group_of(jids[ix]);
                let mut end = ix;
                while end < jids.len() && group_of(jids[end]) == group {
                    end += 1;
                }
                let members = &jids[ix..end];
                ix = end;
                let clean = match (&touched, prev_groups.get(&group)) {
                    (Some(t), Some(p)) => !t.contains(&group) && p.objects == members.len(),
                    _ => false,
                };
                if let Some(p) = clean.then(|| prev_groups[&group]) {
                    chunk_stats.reused += 1;
                    stats.objects += p.objects;
                    stats.facet_nodes += p.nodes;
                    groups.push((*p).clone());
                    continue;
                }
                let mut roots: Vec<FacetedObject> = Vec::with_capacity(members.len());
                for &jid in members {
                    roots.push(self.db.get(&model, jid)?);
                }
                let facets =
                    faceted::export_nodes(&roots, |leaf: &Option<Row>| encode_object_leaf(leaf));
                let (hash, written) = store
                    .insert(&encode_group_chunk(members, &facets))
                    .map_err(|e| persist_err(format!("write group chunk of {model:?}: {e}")))?;
                if written {
                    chunk_stats.written += 1;
                } else {
                    chunk_stats.reused += 1;
                }
                stats.objects += members.len();
                stats.facet_nodes += facets.entries.len();
                groups.push(GroupRef {
                    group,
                    hash,
                    objects: members.len(),
                    nodes: facets.entries.len(),
                });
            }
            models.push(ModelManifest {
                table: model,
                generation,
                groups,
            });
        }

        let manifest = Manifest {
            app_meta,
            tables,
            models,
        };
        stats.chunks_written = chunk_stats.written;
        stats.chunks_reused = chunk_stats.reused;
        write_manifest_file(&dir.join(CHECKPOINT_FILE), &manifest.to_text())?;

        // The durable manifest + chunks now cover everything the logs
        // recorded up to the captured generation vector — compact the
        // row log down to records newer than it (at a quiescent point
        // that is all of them, so the file empties) and drop the meta
        // journal.
        let floor: BTreeMap<String, u64> = manifest
            .tables
            .iter()
            .map(|t| (t.name.clone(), t.generation))
            .collect();
        if let Some(wal) = db.wal() {
            wal.compact(&floor)
                .map_err(|e| persist_err(format!("compact write log: {e}")))?;
        }
        if let Some(journal) = &self.journal {
            journal
                .truncate()
                .map_err(|e| persist_err(format!("truncate meta journal: {e}")))?;
        }
        // Durability is re-established: the checkpoint holds every
        // acknowledged write and the logs start clean, so a read-only
        // degraded app (a failed append flipped the flag; the failed
        // write was rolled back) can take writes again.
        self.clear_degraded();

        // Drop chunks no manifest references any more. Best-effort:
        // the manifest never points at a missing file, so a failed
        // unlink only leaves garbage, and the next sweep retries.
        let _ = store.sweep(&manifest.referenced_hashes());

        // GC at the quiescent point: request-scoped temporaries are
        // dead, the exported roots (and the caches) stay pinned. The
        // incremental path skips it — a scheduled checkpoint after one
        // small write should not pay a full-store sweep.
        if !incremental {
            stats.gc_reclaimed = faceted::collect_garbage::<Option<Row>>()
                + faceted::collect_garbage::<Value>()
                + faceted::collect_garbage::<bool>()
                + faceted::collect_garbage::<i64>();
        }
        stats.interner_nodes_after = object_store_nodes();

        // Remember what this checkpoint wrote for the next one.
        *self.ckpt_memory.lock().expect("checkpoint memory") = Some(CheckpointMemory {
            dir: dir.to_path_buf(),
            app_meta_epoch: Some(epoch),
            app_meta_hash: manifest.app_meta.clone(),
            tables: manifest
                .tables
                .iter()
                .map(|t| {
                    (
                        t.name.clone(),
                        TableMemory {
                            generation: t.generation,
                            rows: t.rows,
                            chunks: t.chunks.clone(),
                        },
                    )
                })
                .collect(),
            models: manifest
                .models
                .iter()
                .map(|m| {
                    (
                        m.table.clone(),
                        ModelMemory {
                            generation: m.generation,
                            groups: m.groups.clone(),
                        },
                    )
                })
                .collect(),
            last_written: chunk_stats.written,
            last_reused: chunk_stats.reused,
            last_incremental: incremental,
        });
        Ok(stats)
    }

    /// [`App::checkpoint_to`] under a self-acquired quiescent point:
    /// the executor's global request lock shared plus every declared
    /// table lock shared — declared writers drain and block for the
    /// duration, concurrent readers keep flowing. Do **not** call
    /// from inside a dispatched request (the locks are not
    /// reentrant); routes should use [`add_checkpoint_route`].
    ///
    /// # Errors
    ///
    /// Same as [`App::checkpoint_to`].
    pub fn checkpoint_quiescent(&self, dir: impl AsRef<Path>) -> FormResult<CheckpointStats> {
        self.request_locks.quiesce(|| self.checkpoint_to(dir))
    }

    /// [`App::checkpoint_quiescent`], but skipped (returning
    /// `Ok(None)`) while the app is in read-only degraded mode — the
    /// entry point for the executor's *scheduled* checkpoints.
    /// Degraded mode wants operator attention; a background
    /// checkpoint silently clearing it would hide the fault. The
    /// degraded check runs **under** the quiescent locks, so it can
    /// never interleave wrongly with the failing write that sets the
    /// flag: either the write applied first (flag visible, checkpoint
    /// skipped) or the checkpoint ran to completion first (the write
    /// was still blocked, so there was nothing to clear).
    ///
    /// # Errors
    ///
    /// Same as [`App::checkpoint_to`].
    pub fn checkpoint_scheduled(
        &self,
        dir: impl AsRef<Path>,
    ) -> FormResult<Option<CheckpointStats>> {
        self.request_locks.quiesce(|| {
            if self.is_degraded() {
                return Ok(None);
            }
            self.checkpoint_to(dir).map(Some)
        })
    }

    /// Restores this application from `dir`'s checkpoint: the
    /// snapshot is loaded (label registry first, so no index can
    /// alias), the meta journal and row log are replayed on top, the
    /// policy bindings re-bind to this app's registered models, and
    /// the exported facet DAGs are re-interned into the warm object
    /// cache. The app must already have its models registered — the
    /// same application code that produced the checkpoint.
    ///
    /// # Errors
    ///
    /// Missing/corrupt checkpoint, unknown models or policy indices
    /// (the checkpoint came from different application code), or
    /// replay failures.
    pub fn restore_from(&mut self, dir: impl AsRef<Path>) -> FormResult<RestoreStats> {
        use std::sync::atomic::Ordering;
        let dir = dir.as_ref();
        let manifest = read_manifest_file(&dir.join(CHECKPOINT_FILE))?;
        let store =
            ChunkStore::open(dir).map_err(|e| persist_err(format!("open chunk store: {e}")))?;

        // Materialize the chunked tables back into a snapshot. Every
        // chunk read re-hashes its bytes, so a flipped bit anywhere in
        // the store surfaces here as a clean persistence error.
        let meta_bytes = store
            .read(&manifest.app_meta)
            .map_err(|e| persist_err(format!("read app-meta chunk: {e}")))?;
        let (meta, bindings) = decode_app_meta_chunk(&meta_bytes)?;
        let mut snapshot = Snapshot { tables: Vec::new() };
        for t in &manifest.tables {
            let rows = load_rows(&store, &t.chunks)
                .map_err(|e| persist_err(format!("read chunks of {:?}: {e}", t.name)))?;
            snapshot.tables.push(TableSnapshot {
                name: t.name.clone(),
                columns: t.columns.clone(),
                indexes: t.indexes.clone(),
                generation: t.generation,
                next_auto: t.next_auto,
                rows,
            });
        }
        let mut stats = RestoreStats {
            tables: snapshot.tables.len(),
            rows: snapshot.total_rows(),
            ..RestoreStats::default()
        };

        // Structural cross-check before any mutation: every
        // registered model must appear in the snapshot under the
        // schema this application registered. Damage that still
        // parses — a case-flipped table or column name, say — must
        // not replace the app's tables with ones its models cannot
        // reach.
        for model in self.model_names() {
            let restored = snapshot
                .tables
                .iter()
                .find(|t| t.name == model)
                .ok_or_else(|| {
                    persist_err(format!("checkpoint is missing model table {model:?}"))
                })?;
            let live = self.db.raw_ref().table(&model)?;
            let live_cols = live.schema().columns();
            let matches = restored.columns.len() == live_cols.len()
                && restored
                    .columns
                    .iter()
                    .zip(live_cols)
                    .all(|(a, b)| a.name() == b.name() && a.column_type() == b.column_type());
            if !matches {
                return Err(persist_err(format!(
                    "checkpointed schema of {model:?} does not match the registered model"
                )));
            }
        }

        // 1. Metadata before rows: restored `jvars` reference label
        //    indices, which must exist before anything re-allocates.
        self.db.restore_meta(&meta);
        self.db.restore_database(&snapshot)?;

        // 2. Policy bindings from the app-meta chunk.
        self.clear_policy_state();
        for (ix, model, policy_ix, jid, row) in &bindings {
            self.bind_policy(
                faceted::Label::from_index(*ix),
                model,
                *policy_ix,
                *jid,
                row,
            )?;
            stats.policies += 1;
        }

        // 3. Journal replay: creates that happened after the
        //    checkpoint. Labels import in allocation order (creates
        //    journal under the app's create-order guard), then bind
        //    exactly like step 2. A label already present in the
        //    restored registry means the checkpoint raced ahead of
        //    the journal truncate and step 2 restored its binding —
        //    re-binding would push duplicate entries into the
        //    object's label list, so those are skipped wholesale.
        for record in MetaJournal::read_records(&dir.join(META_LOG_FILE))? {
            let mut replayed_any = false;
            for (policy_ix, (ix, name)) in record.labels.iter().enumerate() {
                if (*ix as usize) < self.db.labels().len() {
                    continue; // checkpointed: binding restored in step 2
                }
                let imported = self.db.import_label(name);
                if imported.index() != *ix {
                    return Err(persist_err(format!(
                        "meta journal out of order: expected label {ix}, got {}",
                        imported.index()
                    )));
                }
                self.bind_policy(imported, &record.model, policy_ix, record.jid, &record.row)?;
                stats.policies += 1;
                replayed_any = true;
            }
            self.db.bump_next_jid(&record.model, record.jid + 1);
            if replayed_any {
                stats.journal_applied += 1;
            }
        }

        // 4. Row-log replay on the raw engine (generation stamps skip
        //    anything the snapshot already contains).
        let replay = WriteLog::replay(dir.join(WAL_FILE), self.db.raw())?;
        stats.wal_applied = replay.applied;

        // 5. Defensive jid floor: even without a journal, cursors
        //    never fall below what the restored rows prove was
        //    allocated.
        for model in self.model_names() {
            if let Some(max) = self.db.object_jids(&model)?.last() {
                self.db.bump_next_jid(&model, max + 1);
            }
        }

        // 6. Warm start: re-intern the exported facet DAGs and prime
        //    the object cache, group chunk by group chunk — but only
        //    for models whose restored generation still matches the
        //    manifest (a WAL-replayed write supersedes the exported
        //    DAGs of its table).
        for m in &manifest.models {
            if self.db.raw_ref().generation(&m.table)? != m.generation {
                continue;
            }
            for g in &m.groups {
                let bytes = store
                    .read(&g.hash)
                    .map_err(|e| persist_err(format!("read group chunk of {:?}: {e}", m.table)))?;
                let (jids, facets) = decode_group_chunk(&bytes)?;
                if jids.len() != g.objects || facets.entries.len() != g.nodes {
                    return Err(persist_err(format!(
                        "group chunk of {:?} does not match its manifest entry",
                        m.table
                    )));
                }
                let imported =
                    faceted::import_nodes(&facets, decode_object_leaf).map_err(persist_err)?;
                for (jid, obj) in jids.iter().zip(&imported) {
                    self.db.prime_object(&m.table, *jid, obj)?;
                    stats.objects_primed += 1;
                }
            }
        }

        // 7. Seed the clean-chunk memory from the *manifest* (not the
        //    live tables): the row journal restarts right after each
        //    table's restored generation, so the next checkpoint's
        //    delta walk covers everything the logs replayed on top.
        //    The app-meta chunk stays reusable only if nothing
        //    replayed at all.
        let app_meta_epoch = (stats.journal_applied == 0 && stats.wal_applied == 0)
            .then(|| self.meta_epoch.load(Ordering::Acquire));
        *self.ckpt_memory.lock().expect("checkpoint memory") = Some(CheckpointMemory {
            dir: dir.to_path_buf(),
            app_meta_epoch,
            app_meta_hash: manifest.app_meta.clone(),
            tables: manifest
                .tables
                .iter()
                .map(|t| {
                    (
                        t.name.clone(),
                        TableMemory {
                            generation: t.generation,
                            rows: t.rows,
                            chunks: t.chunks.clone(),
                        },
                    )
                })
                .collect(),
            models: manifest
                .models
                .iter()
                .map(|m| {
                    (
                        m.table.clone(),
                        ModelMemory {
                            generation: m.generation,
                            groups: m.groups.clone(),
                        },
                    )
                })
                .collect(),
            last_written: 0,
            last_reused: 0,
            last_incremental: false,
        });
        Ok(stats)
    }
}

/// Distinct nodes currently interned in the object-DAG store
/// (`Faceted<Option<Row>>` — the store the FORM's objects live in).
#[must_use]
pub fn object_store_nodes() -> usize {
    let stats = faceted::intern_stats::<Option<Row>>();
    stats.leaves + stats.splits
}

/// Registers the `admin/checkpoint` route: a **footprint-less write
/// route**, which the executor dispatches under the exclusive global
/// request lock — every declared route drains first, so the
/// checkpoint observes a quiescent application without any extra
/// locking. Any authenticated viewer may trigger it (a production
/// deployment would restrict this to an operator role; the
/// reproduction's auth model has no roles).
///
/// `POST /admin/checkpoint` answers `200` with the
/// [`CheckpointStats`] summary line, `403` for anonymous callers,
/// `500` with the error text on failure.
pub fn add_checkpoint_route(router: &mut Router, dir: impl Into<PathBuf>) {
    let dir = dir.into();
    router.route("admin/checkpoint", move |app: &App, req| {
        if req.viewer == Viewer::Anonymous {
            return Response::forbidden("checkpoint requires an authenticated session");
        }
        match app.checkpoint_to(&dir) {
            Ok(stats) => Response::ok(format!("{stats}\n")),
            Err(e) => Response::error(&format!("checkpoint failed: {e}")),
        }
    });
    // The checkpoint is the *recovery* action of read-only degraded
    // mode — it must keep dispatching while ordinary writes shed.
    router.exempt_from_degraded("admin/checkpoint");
}

/// Registers the `admin/health` route: a footprint-less **read**
/// route (dispatched under all-shared locks, never render-cached)
/// answering `200 ok` while the app is healthy and
/// `503 Retry-After: 1` with the degradation reason while a failed
/// durable write has it in read-only mode. Load balancers and the
/// chaos harness poll this to observe degradation and recovery.
///
/// The second body line publishes the live
/// [`RenderCacheStats`](crate::RenderCacheStats) counters; the third
/// and fourth cover checkpoint observability — the last checkpoint's
/// generation vector and chunk written/reused split, and the WAL
/// pressure (records/bytes appended since the last truncation) the
/// scheduler watches.
pub fn add_health_route(router: &mut Router) {
    router.route_read("admin/health", |app: &App, _req| {
        let s = app.render_cache_stats();
        let mut stats = format!(
            "render_cache hits={} misses={} repairs={} repaired_fragments={} \
             invalidated={} uncacheable={}\n",
            s.hits, s.misses, s.repairs, s.repaired_fragments, s.invalidated, s.uncacheable
        );
        match app.checkpoint_observability() {
            Some(o) => {
                let gens: Vec<String> = o
                    .generations
                    .iter()
                    .map(|(table, g)| format!("{table}:{g}"))
                    .collect();
                stats.push_str(&format!(
                    "checkpoint mode={} chunks_written={} chunks_reused={} generations={}\n",
                    if o.incremental { "incremental" } else { "full" },
                    o.chunks_written,
                    o.chunks_reused,
                    gens.join(",")
                ));
            }
            None => stats.push_str("checkpoint none\n"),
        }
        let (records, bytes) = app.wal_pressure();
        stats.push_str(&format!(
            "wal records={records} bytes={bytes} scheduled_checkpoints={}\n",
            app.scheduled_checkpoint_count()
        ));
        match app.degraded_reason() {
            None => Response::ok(format!("ok\n{stats}")),
            Some(reason) => {
                Response::unavailable(&format!("degraded (read-only): {reason}\n{stats}"))
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{simple_policy, ModelDef};
    use microdb::{ColumnDef, ColumnType};

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("jacq_ckpt_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn note_model() -> ModelDef {
        ModelDef::public(
            "note",
            vec![
                ColumnDef::new("owner", ColumnType::Int),
                ColumnDef::new("text", ColumnType::Str),
            ],
        )
        .with_policy(simple_policy(
            "note_owner",
            vec![1],
            |_| vec![Value::from("[private]")],
            |args| args.viewer.user_jid() == args.row[0].as_int(),
        ))
    }

    fn note_app() -> App {
        let mut app = App::new();
        app.register_model(note_model()).unwrap();
        app
    }

    fn page(app: &App, viewer: &Viewer) -> String {
        let rows = app.all("note").unwrap();
        let mut session = crate::Session::new(viewer.clone());
        session
            .view_rows(app, &rows)
            .into_iter()
            .map(|r| format!("{}|{}\n", r[0], r[1]))
            .collect()
    }

    fn grid(app: &App, users: i64) -> Vec<String> {
        std::iter::once(Viewer::Anonymous)
            .chain((0..users).map(Viewer::User))
            .map(|v| page(app, &v))
            .collect()
    }

    #[test]
    fn checkpoint_restore_round_trips_the_differential_grid() {
        let dir = temp_dir("grid");
        let app = note_app();
        for i in 0..5 {
            app.create("note", vec![Value::Int(i), Value::from(format!("n{i}"))])
                .unwrap();
        }
        let before = grid(&app, 5);
        let stats = app.checkpoint_quiescent(&dir).unwrap();
        assert_eq!(stats.tables, 1);
        assert_eq!(stats.rows, 10, "5 notes × 2 facet rows");
        assert_eq!(stats.objects, 5);
        assert!(stats.facet_nodes > 0);

        // "Kill" the process state: a brand-new app, models re-registered.
        let mut restored = note_app();
        let rstats = restored.restore_from(&dir).unwrap();
        assert_eq!(rstats.rows, 10);
        assert_eq!(rstats.policies, 5);
        assert_eq!(rstats.objects_primed, 5);
        assert_eq!(grid(&restored, 5), before, "byte-identical grid");

        // Policies still live: a *new* viewer-owned note behaves
        // identically in both worlds, with no label aliasing.
        let j1 = app
            .create("note", vec![Value::Int(99), Value::from("after")])
            .unwrap();
        let j2 = restored
            .create("note", vec![Value::Int(99), Value::from("after")])
            .unwrap();
        assert_eq!(j1, j2, "jid cursors restored");
        assert_eq!(grid(&restored, 5), grid(&app, 5));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn logs_replay_creates_and_writes_after_the_checkpoint() {
        let dir = temp_dir("logs");
        let mut app = note_app();
        app.enable_persistence(&dir).unwrap();
        app.create("note", vec![Value::Int(0), Value::from("pre")])
            .unwrap();
        app.checkpoint_quiescent(&dir).unwrap();
        // Post-checkpoint state lives only in the logs.
        app.create("note", vec![Value::Int(1), Value::from("post")])
            .unwrap();
        app.update_fields("note", 1, &[(1, Value::from("PRE"))], &Default::default())
            .unwrap();

        let mut restored = note_app();
        let stats = restored.restore_from(&dir).unwrap();
        assert_eq!(stats.journal_applied, 1, "one post-checkpoint create");
        assert!(stats.wal_applied >= 2, "create rows + update rows");
        assert_eq!(grid(&restored, 3), grid(&app, 3));
        // The restored app allocates *fresh* labels/jids past both
        // the checkpoint and the logs.
        let j = restored
            .create("note", vec![Value::Int(2), Value::from("fresh")])
            .unwrap();
        assert_eq!(j, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Reconciliation between restored generation stamps and the
    /// change journals: restoring over a live app retains warm decode
    /// slots whose generation matches the snapshot, and the restored
    /// table's journal window restarts at `snapshot_generation + 1`,
    /// so WAL-replayed writes land as deltas. The first read after
    /// restore is then served by delta repair — not a full re-decode —
    /// and must equal what a cold restore decodes from scratch.
    #[test]
    fn restore_reconciles_journals_so_warm_slots_delta_repair() {
        let dir = temp_dir("delta_reconcile");
        let mut app = note_app();
        app.enable_persistence(&dir).unwrap();
        for i in 0..4 {
            app.create("note", vec![Value::Int(i), Value::from(format!("n{i}"))])
                .unwrap();
        }
        app.checkpoint_quiescent(&dir).unwrap();
        // Warm the decode cache at exactly the snapshot generation.
        app.all("note").unwrap();
        // A post-checkpoint write lives only in the WAL.
        app.create("note", vec![Value::Int(9), Value::from("post")])
            .unwrap();

        // Crash-safe restore over the same app: the table rewinds to
        // the snapshot (the warm slot's generation matches and is
        // retained), then WAL replay rolls it forward again.
        app.restore_from(&dir).unwrap();
        let before = app.db.decode_cache_stats();
        let rows = app.all("note").unwrap();
        assert_eq!(rows.len(), 10, "5 notes × 2 facet rows, replay included");
        let stats = app.db.decode_cache_stats();
        assert_eq!(
            stats.misses, before.misses,
            "the retained slot must not pay a full re-decode"
        );
        assert_eq!(
            stats.delta_applies,
            before.delta_applies + 1,
            "the replayed write patches the snapshot as a delta"
        );

        // Byte-identity against the cold path: a fresh app restoring
        // the same directory decodes everything from scratch.
        let mut cold = note_app();
        cold.restore_from(&dir).unwrap();
        assert_eq!(grid(&app, 5), grid(&cold, 5));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The render-cache restore contract, same as the decode cache's:
    /// `restore_from` never flushes — it *revalidates*. An entry whose
    /// generation vector matches the restored table stamps stays warm,
    /// so the first read after a kill/restore round trip is a byte
    /// hit, not a re-render; and a post-restore write still
    /// invalidates it through the ordinary generation check.
    #[test]
    fn restore_keeps_matching_render_cache_entries_warm() {
        use crate::http::{Request, Response, Router};
        use crate::Executor;
        let dir = temp_dir("render_warm");
        let mut app = note_app();
        app.enable_persistence(&dir).unwrap();
        for i in 0..4 {
            app.create("note", vec![Value::Int(i), Value::from(format!("n{i}"))])
                .unwrap();
        }
        app.checkpoint_quiescent(&dir).unwrap();

        let mut router = Router::new();
        router.route_read_tables("notes", &["note"], |app: &App, req| {
            Response::ok(page(app, &req.viewer))
        });
        let request = [Request::new("notes", Viewer::User(1))];
        let cold = Executor::sequential()
            .run(&app, &router, &request)
            .remove(0);
        let before = app.render_cache_stats();
        assert_eq!((before.hits, before.misses), (0, 1));

        // Kill/restore over the same live app: the table rewinds to
        // the snapshot and WAL replay rolls it forward to exactly the
        // generation the page was stamped under.
        app.restore_from(&dir).unwrap();
        let warm = Executor::sequential()
            .run(&app, &router, &request)
            .remove(0);
        assert_eq!(warm, cold, "the warm hit serves the pre-kill bytes");
        let stats = app.render_cache_stats();
        assert_eq!(stats.hits, before.hits + 1, "warm across the restore");
        assert_eq!(stats.misses, before.misses, "no re-render happened");
        assert_eq!(stats.invalidated, 0);

        // Revalidate, not blind trust: a post-restore write moves the
        // generation and the stale page is dropped, not served.
        app.create("note", vec![Value::Int(1), Value::from("post-restore")])
            .unwrap();
        let fresh = Executor::sequential()
            .run(&app, &router, &request)
            .remove(0);
        assert!(fresh.body.contains("post-restore"));
        assert_eq!(app.render_cache_stats().invalidated, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Concurrent creates must leave the meta journal replayable:
    /// label allocation and the journal append happen under one
    /// guard, so records can never appear out of label-index order
    /// (which the strictly sequential replay would reject, bricking
    /// restore).
    #[test]
    fn concurrent_creates_keep_the_journal_replayable() {
        let dir = temp_dir("concurrent_creates");
        let mut app = note_app();
        app.enable_persistence(&dir).unwrap();
        app.checkpoint_quiescent(&dir).unwrap();
        let threads = 4i64;
        let per_thread = 16;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let app = &app;
                scope.spawn(move || {
                    for i in 0..per_thread {
                        app.create(
                            "note",
                            vec![Value::Int(t), Value::from(format!("c{t}-{i}"))],
                        )
                        .unwrap();
                    }
                });
            }
        });
        let mut restored = note_app();
        let stats = restored.restore_from(&dir).unwrap();
        assert_eq!(stats.journal_applied as i64, threads * per_thread);
        assert_eq!(grid(&restored, threads), grid(&app, threads));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_truncates_logs_and_is_atomic() {
        let dir = temp_dir("truncate");
        let mut app = note_app();
        app.enable_persistence(&dir).unwrap();
        app.create("note", vec![Value::Int(0), Value::from("x")])
            .unwrap();
        assert!(std::fs::metadata(dir.join(WAL_FILE)).unwrap().len() > 0);
        assert!(std::fs::metadata(dir.join(META_LOG_FILE)).unwrap().len() > 0);
        app.checkpoint_quiescent(&dir).unwrap();
        assert_eq!(std::fs::metadata(dir.join(WAL_FILE)).unwrap().len(), 0);
        assert_eq!(std::fs::metadata(dir.join(META_LOG_FILE)).unwrap().len(), 0);
        // No stray tmp files: the write was renamed into place.
        let stray: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains("tmp"))
            .collect();
        assert!(stray.is_empty(), "{stray:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn restore_preserves_facet_dag_sharing() {
        let dir = temp_dir("sharing");
        let app = note_app();
        for i in 0..8 {
            app.create("note", vec![Value::Int(i % 2), Value::from("same text")])
                .unwrap();
        }
        let stats = app.checkpoint_quiescent(&dir).unwrap();
        // 8 objects share leaf structure ("same text" rows differ only
        // in owner): the node table must be far smaller than
        // 8 × nodes-per-object.
        assert!(stats.facet_nodes > 0);

        let mut restored = note_app();
        restored.restore_from(&dir).unwrap();
        let again = restored.checkpoint_quiescent(temp_dir("sharing2")).unwrap();
        assert_eq!(
            again.facet_nodes, stats.facet_nodes,
            "re-interned DAGs have identical node counts (sharing preserved)"
        );
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(temp_dir("sharing2"));
    }

    #[test]
    fn admin_route_checkpoints_under_the_executor() {
        let dir = temp_dir("route");
        let app = note_app();
        app.create("note", vec![Value::Int(1), Value::from("served")])
            .unwrap();
        let mut router = Router::new();
        add_checkpoint_route(&mut router, &dir);
        let requests = vec![
            crate::Request::new("admin/checkpoint", Viewer::Anonymous),
            crate::Request::new("admin/checkpoint", Viewer::User(1)),
        ];
        let responses = crate::Executor::sequential().run(&app, &router, &requests);
        assert_eq!(responses[0].status, 403, "anonymous may not checkpoint");
        assert_eq!(responses[1].status, 200, "{}", responses[1].body);
        assert!(responses[1].body.starts_with("checkpoint:"));
        assert!(dir.join(CHECKPOINT_FILE).exists());
        let mut restored = note_app();
        restored.restore_from(&dir).unwrap();
        assert_eq!(grid(&restored, 2), grid(&app, 2));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Tentpole scenario: an injected crash *before* the tmp→snap
    /// rename must leave the previous checkpoint file the valid one —
    /// restore still reproduces the full pre-crash state from the old
    /// snapshot plus the (untruncated) logs, and a retried checkpoint
    /// succeeds.
    #[test]
    fn pre_rename_crash_leaves_the_previous_checkpoint_valid() {
        let dir = temp_dir("prerename");
        let mut app = note_app();
        app.enable_persistence(&dir).unwrap();
        app.create("note", vec![Value::Int(0), Value::from("base")])
            .unwrap();
        app.checkpoint_quiescent(&dir).unwrap();
        app.create("note", vec![Value::Int(1), Value::from("walled")])
            .unwrap();
        let before = grid(&app, 3);

        faults::arm_at(
            FaultPoint::CheckpointPreRename,
            0,
            FaultKind::Error,
            "jacq_ckpt_prerename",
        );
        let err = app.checkpoint_quiescent(&dir).unwrap_err();
        assert!(err.to_string().contains("injected"), "{err}");
        // The old snapshot + the untouched logs restore everything.
        let mut restored = note_app();
        restored.restore_from(&dir).unwrap();
        assert_eq!(grid(&restored, 3), before, "no acknowledged write lost");

        // The fault was one-shot: the retried checkpoint goes through
        // and truncates the logs.
        app.checkpoint_quiescent(&dir).unwrap();
        assert_eq!(std::fs::metadata(dir.join(WAL_FILE)).unwrap().len(), 0);
        let mut again = note_app();
        again.restore_from(&dir).unwrap();
        assert_eq!(grid(&again, 3), before);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Tentpole scenario: an injected crash *after* the rename but
    /// before the log truncation leaves the new snapshot next to logs
    /// that double-record its writes — replay idempotence (generation
    /// stamps, label-index skips) must absorb the overlap so nothing
    /// applies twice.
    #[test]
    fn post_rename_crash_overlap_is_absorbed_by_replay() {
        let dir = temp_dir("postrename");
        let mut app = note_app();
        app.enable_persistence(&dir).unwrap();
        for i in 0..3 {
            app.create("note", vec![Value::Int(i), Value::from(format!("n{i}"))])
                .unwrap();
        }
        faults::arm_at(
            FaultPoint::CheckpointPostRename,
            0,
            FaultKind::Error,
            "jacq_ckpt_postrename",
        );
        let err = app.checkpoint_quiescent(&dir).unwrap_err();
        assert!(err.to_string().contains("injected"), "{err}");
        // The rename happened, the truncation did not: overlap.
        assert!(std::fs::metadata(dir.join(WAL_FILE)).unwrap().len() > 0);
        assert!(std::fs::metadata(dir.join(META_LOG_FILE)).unwrap().len() > 0);

        let mut restored = note_app();
        restored.restore_from(&dir).unwrap();
        assert_eq!(grid(&restored, 4), grid(&app, 4));
        assert_eq!(
            restored.db.physical_rows("note").unwrap(),
            app.db.physical_rows("note").unwrap(),
            "no doubly-applied rows from the snapshot/log overlap"
        );
        // Exactly-once across the recovery: a fresh create allocates
        // the same next jid in both worlds.
        let j1 = app
            .create("note", vec![Value::Int(9), Value::from("after")])
            .unwrap();
        let j2 = restored
            .create("note", vec![Value::Int(9), Value::from("after")])
            .unwrap();
        assert_eq!(j1, j2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Tentpole scenario: injected read faults on restore surface as
    /// clean errors (never a panic), and the app object stays usable.
    #[test]
    fn injected_restore_read_faults_error_cleanly() {
        let dir = temp_dir("restoreread");
        let app = note_app();
        app.create("note", vec![Value::Int(1), Value::from("kept")])
            .unwrap();
        app.checkpoint_quiescent(&dir).unwrap();

        // Error kind: the open itself fails.
        faults::arm_at(
            FaultPoint::RestoreRead,
            0,
            FaultKind::Error,
            "jacq_ckpt_restoreread",
        );
        let mut fresh = note_app();
        let err = fresh.restore_from(&dir).unwrap_err();
        assert!(err.to_string().contains("injected"), "{err}");
        fresh
            .create("note", vec![Value::Int(2), Value::from("usable")])
            .unwrap();

        // ShortWrite kind: the snapshot is physically truncated, and
        // the damage flows through the real parsers.
        faults::arm_at(
            FaultPoint::RestoreRead,
            0,
            FaultKind::ShortWrite,
            "jacq_ckpt_restoreread",
        );
        let mut torn = note_app();
        assert!(torn.restore_from(&dir).is_err(), "truncated file rejected");
        torn.create("note", vec![Value::Int(3), Value::from("usable")])
            .unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Satellite: hand-corrupted snapshots — header bit-flips,
    /// truncations, and a bit-flip sweep — must yield clean
    /// [`FormError`]s, never a panic, and leave the app usable.
    #[test]
    fn corrupted_or_truncated_snapshot_errors_without_panicking() {
        let dir = temp_dir("bitflip");
        let app = note_app();
        for i in 0..3 {
            app.create("note", vec![Value::Int(i), Value::from(format!("n{i}"))])
                .unwrap();
        }
        app.checkpoint_quiescent(&dir).unwrap();
        let path = dir.join(CHECKPOINT_FILE);
        let pristine = std::fs::read(&path).unwrap();

        // A flipped header byte is always structural damage.
        let mut bytes = pristine.clone();
        bytes[3] ^= 0x20;
        std::fs::write(&path, &bytes).unwrap();
        let mut r = note_app();
        let err = r.restore_from(&dir).unwrap_err();
        assert!(matches!(err, FormError::Db(microdb::DbError::Persist(_))));
        r.create("note", vec![Value::Int(9), Value::from("ok")])
            .unwrap();

        // Truncations that cut inside a sized section (a cut that
        // only drops the final newline is semantically complete and
        // may legitimately restore): empty, a third, half, two
        // thirds.
        for keep in [
            0,
            pristine.len() / 3,
            pristine.len() / 2,
            2 * pristine.len() / 3,
        ] {
            std::fs::write(&path, &pristine[..keep]).unwrap();
            let mut r = note_app();
            assert!(
                r.restore_from(&dir).is_err(),
                "truncation to {keep} bytes must be rejected"
            );
            r.create("note", vec![Value::Int(9), Value::from("ok")])
                .unwrap();
        }

        // Bit-flip sweep: a flip in a payload byte may legitimately
        // decode (the value merely differs), but no position may ever
        // panic the parser or poison the app.
        let stride = (pristine.len() / 40).max(1);
        for pos in (0..pristine.len()).step_by(stride) {
            let mut bytes = pristine.clone();
            bytes[pos] ^= 0x40;
            std::fs::write(&path, &bytes).unwrap();
            let mut r = note_app();
            let _ = r.restore_from(&dir); // Ok or clean Err — no panic
            r.create("note", vec![Value::Int(9), Value::from("ok")])
                .unwrap();
        }

        // The pristine bytes still restore (the sweep broke nothing
        // about the app-building path itself).
        std::fs::write(&path, &pristine).unwrap();
        let mut r = note_app();
        r.restore_from(&dir).unwrap();
        assert_eq!(grid(&r, 3), grid(&app, 3));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The degraded-mode arc, end to end through served routes: a WAL
    /// append fault fails a write and flips the app read-only; writes
    /// answer `503 Retry-After` while reads and `admin/health` keep
    /// serving; the (exempt) `admin/checkpoint` route re-establishes
    /// durability and clears the mode; the retried write then lands
    /// exactly once.
    #[test]
    fn wal_fault_degrades_to_read_only_and_checkpoint_recovers() {
        use crate::http::Request;
        use crate::Executor;
        let dir = temp_dir("degrade");
        let mut app = note_app();
        app.enable_persistence(&dir).unwrap();
        app.create("note", vec![Value::Int(1), Value::from("seed")])
            .unwrap();
        let mut router = Router::new();
        router.route_read_tables("notes", &["note"], |app: &App, req| {
            Response::ok(page(app, &req.viewer))
        });
        router.route_tables("note/add", &[], &["note"], |app: &App, req| {
            let owner = req.viewer.user_jid().unwrap_or(-1);
            let text = req.params.get("text").cloned().unwrap_or_default();
            match app.create("note", vec![Value::Int(owner), Value::from(text)]) {
                Ok(jid) => Response::ok(jid.to_string()),
                Err(e) => Response::error(&e.to_string()),
            }
        });
        add_checkpoint_route(&mut router, &dir);
        add_health_route(&mut router);
        let run =
            |app: &App, req: Request| Executor::sequential().run(app, &router, &[req]).remove(0);

        let healthy = run(&app, Request::new("admin/health", Viewer::Anonymous));
        assert_eq!(healthy.status, 200);
        assert!(healthy.body.starts_with("ok\n"), "{}", healthy.body);
        assert!(
            healthy.body.contains("render_cache hits="),
            "health publishes the render-cache counters: {}",
            healthy.body
        );

        // The fault: this write's WAL append fails; the rows roll
        // back and the app degrades.
        faults::arm_at(
            FaultPoint::WalAppend,
            0,
            FaultKind::Error,
            "jacq_ckpt_degrade",
        );
        let failed = run(
            &app,
            Request::new("note/add", Viewer::User(1)).with_param("text", "marker-lost"),
        );
        assert_eq!(failed.status, 500, "{}", failed.body);
        assert!(app.is_degraded());

        // Degraded: writes shed, reads and health keep serving.
        let shed = run(
            &app,
            Request::new("note/add", Viewer::User(1)).with_param("text", "marker-shed"),
        );
        assert_eq!(shed.status, 503);
        assert_eq!(shed.header("Retry-After"), Some("1"));
        let health = run(&app, Request::new("admin/health", Viewer::Anonymous));
        assert_eq!(health.status, 503);
        assert!(
            health.body.contains("degraded (read-only)"),
            "{}",
            health.body
        );
        let read = run(&app, Request::new("notes", Viewer::User(1)));
        assert_eq!(read.status, 200);
        assert!(
            !read.body.contains("marker"),
            "neither failed nor shed write is visible"
        );

        // Recovery: the exempt checkpoint route runs, re-establishes
        // durability, and clears the mode.
        let ckpt = run(&app, Request::new("admin/checkpoint", Viewer::User(1)));
        assert_eq!(ckpt.status, 200, "{}", ckpt.body);
        assert!(!app.is_degraded());
        assert_eq!(
            run(&app, Request::new("admin/health", Viewer::Anonymous)).status,
            200
        );

        // The retried write lands exactly once, durably.
        let retry = run(
            &app,
            Request::new("note/add", Viewer::User(1)).with_param("text", "marker-kept"),
        );
        assert_eq!(retry.status, 200, "{}", retry.body);
        let page_now = run(&app, Request::new("notes", Viewer::User(1))).body;
        assert_eq!(page_now.matches("marker-kept").count(), 1);
        assert_eq!(page_now.matches("marker-lost").count(), 0);

        let mut restored = note_app();
        restored.restore_from(&dir).unwrap();
        assert_eq!(grid(&restored, 3), grid(&app, 3), "durable across restore");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn restore_from_missing_or_corrupt_checkpoint_errors() {
        let dir = temp_dir("corrupt");
        let mut app = note_app();
        assert!(app.restore_from(&dir).is_err(), "missing dir");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(CHECKPOINT_FILE), "not a checkpoint\n").unwrap();
        assert!(app.restore_from(&dir).is_err(), "corrupt file");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_reports_gc_of_dead_nodes() {
        let dir = temp_dir("gc");
        let app = note_app();
        app.create("note", vec![Value::Int(1), Value::from("alive")])
            .unwrap();
        // Request-scoped garbage: DAGs built and dropped.
        for i in 0..50 {
            let v: faceted::Faceted<i64> = faceted::Faceted::split(
                faceted::Label::from_index(2_000_000 + i),
                faceted::Faceted::leaf(i64::from(i)),
                faceted::Faceted::leaf(-1),
            );
            drop(v);
        }
        let stats = app.checkpoint_quiescent(&dir).unwrap();
        assert!(
            stats.gc_reclaimed >= 50,
            "quiescent GC reclaims the dead DAGs, got {}",
            stats.gc_reclaimed
        );
        assert!(stats.interner_nodes_after <= stats.interner_nodes_before);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The filenames in `dir/chunks/` (content hashes) plus the
    /// manifest bytes.
    fn chunk_files(dir: &Path) -> std::collections::BTreeSet<String> {
        std::fs::read_dir(dir.join("chunks"))
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect()
    }

    /// Satellite: the chunked export is a fixpoint — checkpoint,
    /// restore into a fresh app, checkpoint again to a fresh
    /// directory, and both the manifest bytes and the chunk-file sets
    /// are identical.
    #[test]
    fn checkpoint_restore_checkpoint_is_a_byte_fixpoint() {
        let dir_a = temp_dir("fix_a");
        let dir_b = temp_dir("fix_b");
        let app = note_app();
        for i in 0..70 {
            app.create(
                "note",
                vec![Value::Int(i % 3), Value::from(format!("n{i}"))],
            )
            .unwrap();
        }
        app.checkpoint_quiescent(&dir_a).unwrap();

        let mut restored = note_app();
        restored.restore_from(&dir_a).unwrap();
        restored.checkpoint_quiescent(&dir_b).unwrap();

        assert_eq!(
            std::fs::read(dir_a.join(CHECKPOINT_FILE)).unwrap(),
            std::fs::read(dir_b.join(CHECKPOINT_FILE)).unwrap(),
            "manifest bytes are a fixpoint across restore"
        );
        assert_eq!(
            chunk_files(&dir_a),
            chunk_files(&dir_b),
            "chunk stores hold identical content-addressed sets"
        );
        let _ = std::fs::remove_dir_all(&dir_a);
        let _ = std::fs::remove_dir_all(&dir_b);
    }

    /// Satellite: consecutive checkpoints of a barely-changed app
    /// share almost all chunks — the second writes O(one chunk)
    /// after a single-row write and reuses the rest by hash.
    #[test]
    fn incremental_checkpoint_writes_only_dirty_chunks() {
        let dir = temp_dir("incr");
        let app = note_app();
        for i in 0..200 {
            app.create(
                "note",
                vec![Value::Int(i % 5), Value::from(format!("n{i}"))],
            )
            .unwrap();
        }
        let first = app.checkpoint_quiescent(&dir).unwrap();
        assert!(!first.incremental, "first checkpoint runs the full path");
        assert!(first.chunks_written > 4, "enough rows for several chunks");
        let before = chunk_files(&dir);

        // One-row write, then checkpoint again.
        app.update_fields(
            "note",
            7,
            &[(1, Value::from("edited"))],
            &Default::default(),
        )
        .unwrap();
        let second = app.checkpoint_quiescent(&dir).unwrap();
        assert!(second.incremental);
        assert!(
            second.chunks_written <= 3,
            "a single-row write dirties O(one chunk) per layer, wrote {}",
            second.chunks_written
        );
        assert!(
            second.chunks_reused > first.chunks_written / 2,
            "clean chunks carried over: reused {} of {}",
            second.chunks_reused,
            first.chunks_written
        );
        let after = chunk_files(&dir);
        let shared = before.intersection(&after).count();
        assert!(
            shared >= before.len() - 4,
            "consecutive checkpoints byte-share clean chunks: {shared}/{}",
            before.len()
        );

        // Observability reflects the incremental pass.
        let obs = app.checkpoint_observability().unwrap();
        assert!(obs.incremental);
        assert_eq!(obs.chunks_written, second.chunks_written);
        assert_eq!(obs.chunks_reused, second.chunks_reused);
        assert!(!obs.generations.is_empty());

        // A restored app answers the same grid the live one does.
        let mut restored = note_app();
        restored.restore_from(&dir).unwrap();
        assert_eq!(grid(&restored, 5), grid(&app, 5));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Satellite: the ablation knob — with incremental checkpoints
    /// off, every checkpoint runs the full path, and the chunk store
    /// still dedups identical content by hash.
    #[test]
    fn incremental_ablation_falls_back_to_full_checkpoints() {
        let dir = temp_dir("ablate");
        let app = note_app();
        assert!(app.incremental_checkpoints_enabled());
        app.set_incremental_checkpoints(false);
        for i in 0..40 {
            app.create("note", vec![Value::Int(i), Value::from(format!("n{i}"))])
                .unwrap();
        }
        app.checkpoint_quiescent(&dir).unwrap();
        let second = app.checkpoint_quiescent(&dir).unwrap();
        assert!(!second.incremental, "ablated: full path every time");
        assert_eq!(
            second.chunks_written, 0,
            "identical content dedups by hash even on the full path"
        );
        assert!(second.chunks_reused > 0);
        app.set_incremental_checkpoints(true);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Satellite: a bit-flipped chunk *file* (the manifest is intact)
    /// fails restore with a clean persistence error — the read-back
    /// hash verification catches it — and the app stays usable.
    #[test]
    fn bit_flipped_chunk_file_yields_clean_error() {
        let dir = temp_dir("chunkflip");
        let app = note_app();
        for i in 0..80 {
            app.create("note", vec![Value::Int(i), Value::from(format!("n{i}"))])
                .unwrap();
        }
        app.checkpoint_quiescent(&dir).unwrap();
        for name in chunk_files(&dir) {
            let path = dir.join("chunks").join(&name);
            let pristine = std::fs::read(&path).unwrap();
            let mut bytes = pristine.clone();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x01;
            std::fs::write(&path, &bytes).unwrap();

            let mut r = note_app();
            let err = r.restore_from(&dir).unwrap_err();
            assert!(
                matches!(err, FormError::Db(microdb::DbError::Persist(_))),
                "flip in {name} must surface as a Persist error, got {err:?}"
            );
            r.create("note", vec![Value::Int(9), Value::from("ok")])
                .unwrap();
            std::fs::write(&path, &pristine).unwrap();
        }
        // Pristine bytes restore again.
        let mut r = note_app();
        r.restore_from(&dir).unwrap();
        assert_eq!(grid(&r, 3), grid(&app, 3));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Satellite: WAL compaction — the row log is truncated to
    /// records newer than the manifest's generation vector after
    /// every checkpoint, and the pressure counters the scheduler
    /// watches reset with it.
    #[test]
    fn checkpoint_compacts_the_wal_and_resets_pressure() {
        let dir = temp_dir("compact");
        let mut app = note_app();
        app.enable_persistence(&dir).unwrap();
        assert_eq!(app.persist_dir().as_deref(), Some(dir.as_path()));
        for i in 0..10 {
            app.create("note", vec![Value::Int(i), Value::from(format!("n{i}"))])
                .unwrap();
        }
        let (records, bytes) = app.wal_pressure();
        assert!(records > 0 && bytes > 0, "writes build WAL pressure");
        app.checkpoint_quiescent(&dir).unwrap();
        assert_eq!(
            std::fs::metadata(dir.join(WAL_FILE)).unwrap().len(),
            0,
            "a quiescent checkpoint covers every record: the WAL empties"
        );
        assert_eq!(app.wal_pressure(), (0, 0), "pressure counters reset");

        // Writes after the checkpoint rebuild pressure; the next
        // (incremental) checkpoint compacts again.
        app.update_fields("note", 3, &[(1, Value::from("x"))], &Default::default())
            .unwrap();
        assert!(app.wal_pressure().0 > 0);
        let stats = app.checkpoint_quiescent(&dir).unwrap();
        assert!(stats.incremental);
        assert_eq!(std::fs::metadata(dir.join(WAL_FILE)).unwrap().len(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
