//! The concurrent request executor: many [`Session`]-style requests
//! against one shared [`App`], with **table-granular** locking.
//!
//! The paper evaluates Jacqueline under FunkLoad-generated HTTP load;
//! this module supplies the server side of that story for the Rust
//! reproduction. One [`App`] (whose faceted database shards storage
//! per table) is shared by all worker threads. Instead of a single
//! app-wide reader-writer lock, the executor keeps one lock *per
//! declared table*: each route's [`Footprint`] says which tables it
//! reads and writes, and a request acquires exactly those locks — in
//! canonical (sorted) order, so acquisition cannot deadlock. A write
//! to `review` therefore no longer blocks readers of `user_profile`;
//! only true conflicts on the same table serialize. Routes that
//! declare no footprint fall back to whole-app exclusion via a global
//! lock, preserving the old conservative behavior.
//!
//! Per-request Early-Pruning state lives inside each request's
//! [`Session`], so worker threads never share resolution state.
//!
//! Determinism: [`Executor::sequential`] processes requests in
//! submission order on the calling thread and is bit-for-bit
//! identical to dispatching through [`Router::handle`] one request at
//! a time — the mode the differential λJDB semantics tests pin.
//! Multi-threaded runs return responses in submission order too; the
//! per-response bytes are identical whenever requests are independent
//! (read-only, or writes that commute), which the executor stress
//! tests assert against the sequential mode.
//!
//! [`Session`]: crate::Session
//! [`Footprint`]: crate::Footprint

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, OnceLock, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::{Duration, Instant};

use crate::app::App;
use crate::http::{Footprint, Request, Response, Router};
use crate::rendercache::{FragmentedPage, Lookup, RenderCacheStatus, RenderKey, StaleEntry};

/// The application's request-lock table: one reader-writer lock per
/// table ever declared by a route footprint, plus a global fallback
/// lock. Owned by the [`App`] (not created per `run` call), so **any
/// number of concurrent [`Executor::run`] calls against the same app
/// share one lock table** and isolate against each other exactly as
/// requests within a single run do.
///
/// Protocol (all requests, in this order):
/// 1. the global lock — *shared* for footprint-declared requests,
///    *exclusive* for write routes with no footprint;
/// 2. the declared tables, in sorted-name order — shared for tables
///    only read, exclusive for tables written. Read routes with no
///    footprint take shared locks on every declared table.
///
/// Every request acquires locks along the same global → sorted-tables
/// chain, and holders of the exclusive global lock take nothing else,
/// so the acquisition order is a total order and deadlock is
/// impossible. (The lock-table map itself is extended only by
/// [`RequestLocks::ensure`] at `run` start, while the extender holds
/// no other lock; requests hold the map's read guard for their
/// duration, which a concurrent `ensure` simply waits out.)
/// Data-level safety never depends on footprints (the storage layer
/// locks per table internally); footprints buy *request-level
/// isolation* — a reader cannot observe half of a declared write's
/// multi-statement update.
#[derive(Debug, Default)]
pub(crate) struct RequestLocks {
    global: RwLock<()>,
    tables: RwLock<BTreeMap<String, RwLock<()>>>,
}

/// A held per-table lock, either side. The guards exist purely for
/// their RAII release; nothing reads them.
#[allow(dead_code)]
enum TableGuard<'a> {
    Shared(RwLockReadGuard<'a, ()>),
    Exclusive(RwLockWriteGuard<'a, ()>),
}

impl RequestLocks {
    /// Makes sure every name has a lock, before any of them is taken
    /// (called once per `run`, never during a request).
    fn ensure<I: IntoIterator<Item = String>>(&self, names: I) {
        let mut map = self.tables.write().expect("lock-table map");
        for name in names {
            map.entry(name).or_default();
        }
    }

    /// Acquires the declared footprint: shared on `reads`, exclusive
    /// on `writes`, in canonical order.
    fn acquire<'a>(
        map: &'a BTreeMap<String, RwLock<()>>,
        footprint: &Footprint,
    ) -> Vec<TableGuard<'a>> {
        // BTreeMap iteration is sorted-by-name: the canonical order.
        map.iter()
            .filter_map(|(name, lock)| {
                if footprint.writes_table(name) {
                    Some(TableGuard::Exclusive(lock.write().expect("table lock")))
                } else if footprint.reads.contains(name) {
                    Some(TableGuard::Shared(lock.read().expect("table lock")))
                } else {
                    None
                }
            })
            .collect()
    }

    /// Shared locks on every declared table (undeclared read routes).
    fn acquire_all_shared(map: &BTreeMap<String, RwLock<()>>) -> Vec<TableGuard<'_>> {
        map.values()
            .map(|lock| TableGuard::Shared(lock.read().expect("table lock")))
            .collect()
    }

    /// Runs `f` at a **quiescent point**: the global lock shared plus
    /// every declared table lock shared, i.e. exactly the lock set of
    /// a footprint-less read route. Declared writers drain and block
    /// for the duration; concurrent readers keep flowing. This is
    /// what the checkpoint subsystem snapshots (and garbage-collects
    /// the interner) under.
    pub(crate) fn quiesce<R>(&self, f: impl FnOnce() -> R) -> R {
        let _global = self.global.read().expect("global lock");
        let map = self.tables.read().expect("lock-table map");
        let _tables = RequestLocks::acquire_all_shared(&map);
        f()
    }
}

/// Runs batches of requests against a shared application.
///
/// # Examples
///
/// ```
/// use jacqueline::{App, Executor, Request, Response, Router, Viewer};
///
/// let mut router = Router::new();
/// router.route_read("ping", |_, req| Response::ok(format!("pong {}", req.viewer)));
///
/// let app = App::new();
/// let requests: Vec<Request> =
///     (0..8).map(|i| Request::new("ping", Viewer::User(i))).collect();
/// let responses = Executor::with_threads(4).run(&app, &router, &requests);
/// assert_eq!(responses.len(), 8);
/// assert!(responses.iter().all(|r| r.status == 200));
/// ```
#[derive(Copy, Clone, Debug)]
pub struct Executor {
    threads: usize,
}

impl Executor {
    /// The deterministic single-thread mode: requests are processed in
    /// submission order on the calling thread, with responses
    /// bit-for-bit identical to a loop over [`Router::handle`].
    /// Footprint locks are still acquired per request (uncontended
    /// they cost nanoseconds), so a sequential run overlapping a
    /// threaded run on the same app keeps full request isolation.
    #[must_use]
    pub fn sequential() -> Executor {
        Executor { threads: 1 }
    }

    /// A pool of `threads` workers (clamped to at least 1). Workers
    /// pull requests from a shared queue; each request runs under the
    /// footprint locks its route declares.
    #[must_use]
    pub fn with_threads(threads: usize) -> Executor {
        Executor {
            threads: threads.max(1),
        }
    }

    /// The configured worker count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Processes every request, returning responses in submission
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if a lock is poisoned (a prior request panicked) or a
    /// worker thread panics.
    #[must_use]
    pub fn run(&self, app: &App, router: &Router, requests: &[Request]) -> Vec<Response> {
        let locks = &app.request_locks;
        locks.ensure(router.declared_tables());
        if self.threads == 1 {
            return requests
                .iter()
                .map(|r| Executor::dispatch(app, router, locks, r))
                .collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<OnceLock<Response>> = requests.iter().map(|_| OnceLock::new()).collect();
        std::thread::scope(|scope| {
            for _ in 0..self.threads {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(request) = requests.get(i) else {
                        break;
                    };
                    let response = Executor::dispatch(app, router, locks, request);
                    slots[i]
                        .set(response)
                        .unwrap_or_else(|_| unreachable!("slot {i} claimed once"));
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("every claimed slot was filled before scope exit")
            })
            .collect()
    }

    /// Dispatches one request under its footprint locks. Unknown
    /// paths answer 404 without taking any lock, so stray requests
    /// cannot stall anyone.
    fn dispatch(app: &App, router: &Router, locks: &RequestLocks, request: &Request) -> Response {
        Executor::dispatch_traced(app, router, locks, request).0
    }

    /// The render-cache key for a request: path, canonicalized params,
    /// viewer. Canonicalization runs on a *copy* of the params — the
    /// controller always sees the originals.
    fn render_key(router: &Router, request: &Request) -> RenderKey {
        let mut params = request.params.clone();
        if let Some(canonicalize) = router.canonicalizer(&request.path) {
            canonicalize(&mut params);
        }
        RenderKey {
            path: request.path.clone(),
            params: params.into_iter().collect(),
            viewer: request.viewer.clone(),
        }
    }

    /// [`Executor::dispatch`] plus how the render cache handled the
    /// request (the server's `X-Render-Cache` header).
    ///
    /// Declared read routes consult the [`rendercache`] **after**
    /// acquiring their shared footprint locks: a hit serves the stored
    /// bytes without running the controller at all; a stale entry on a
    /// fragment-registered route first attempts a journal-driven
    /// repair ([`Executor::try_repair`]); a miss renders, then stamps
    /// the entry with the footprint tables' generations — read *while
    /// the locks are still held*, so no writer can bump a generation
    /// between render and stamp and leave a stale page validating as
    /// fresh.
    ///
    /// The debug-build `form::touched` checker stays honest across
    /// hits even though a hit records nothing: cached bytes are only
    /// ever produced by a checked render at miss time, and a route
    /// whose footprint is under-declared panics on that first miss —
    /// an unchecked render can never populate the cache.
    ///
    /// [`rendercache`]: crate::rendercache
    pub(crate) fn dispatch_traced(
        app: &App,
        router: &Router,
        locks: &RequestLocks,
        request: &Request,
    ) -> (Response, RenderCacheStatus) {
        if let Some(controller) = router.read_controller(&request.path) {
            let _global = locks.global.read().expect("global lock");
            let map = locks.tables.read().expect("lock-table map");
            let footprint = router.footprint(&request.path);
            match footprint {
                Some(fp) => {
                    let _tables = RequestLocks::acquire(&map, fp);
                    let cache = &app.render_cache;
                    if !cache.enabled() {
                        let response = Executor::call_checked(&request.path, footprint, || {
                            controller(app, request)
                        });
                        return (response, RenderCacheStatus::Bypass);
                    }
                    let key = Executor::render_key(router, request);
                    let db = app.db.raw_ref();
                    match cache.lookup(&key, |table| db.generation(table).ok()) {
                        Lookup::Hit(response) => return (response, RenderCacheStatus::Hit),
                        Lookup::Stale(stale) => {
                            if let Some(response) =
                                Executor::try_repair(app, router, request, fp, &key, stale)
                            {
                                return (response, RenderCacheStatus::Repair);
                            }
                            cache.note_invalidated();
                        }
                        Lookup::Cold => {}
                    }
                    // Cold miss (or unrepairable stale): render.
                    // Fragment-registered routes render *by fragments*
                    // — one pass that is simultaneously the response
                    // bytes and the stored decomposition, so a cold
                    // miss costs a single render. Debug builds run the
                    // controller too and assert byte-identity, the
                    // same contract the differential grids and the
                    // chaos cached-vs-uncached oracle pin end-to-end.
                    let (response, fragments) =
                        match Executor::render_fragmented(app, router, request) {
                            Some((page, body)) => {
                                #[cfg(debug_assertions)]
                                {
                                    let checked =
                                        Executor::call_checked(&request.path, footprint, || {
                                            controller(app, request)
                                        });
                                    assert!(
                                        checked.status == 200
                                            && checked.headers.is_empty()
                                            && checked.body == body,
                                        "route {:?}: the registered fragment renderer does \
                                         not reproduce the controller's page (controller: \
                                         status {}, {} bytes; fragments: {} bytes) — fix \
                                         the fragment renderer or unregister it",
                                        request.path,
                                        checked.status,
                                        checked.body.len(),
                                        body.len(),
                                    );
                                }
                                (Response::ok(body), Some(page))
                            }
                            None => {
                                let response =
                                    Executor::call_checked(&request.path, footprint, || {
                                        controller(app, request)
                                    });
                                (response, None)
                            }
                        };
                    // The stamp: footprint-table generations observed
                    // under the same shared locks the render ran
                    // under. A table the footprint names but the
                    // database lacks (possible in synthetic tests)
                    // makes the page unstampable — skip the store.
                    let generations: Option<Vec<(String, u64)>> = fp
                        .tables()
                        .map(|t| db.generation(t).ok().map(|g| (t.to_owned(), g)))
                        .collect();
                    if let Some(generations) = generations {
                        cache.store(key, generations, &response, fragments);
                    }
                    (response, RenderCacheStatus::Miss)
                }
                None => {
                    // Footprint-less read route: all-tables shared
                    // locks. The debug-build checker still runs under
                    // this (global-lock) fallback — such a route must
                    // not *write*, since it holds no exclusive lock
                    // anywhere and would race declared readers. With
                    // no declared table set there is nothing to stamp
                    // a cache entry with, so the route is uncacheable:
                    // counted, never stored.
                    if app.render_cache.enabled() {
                        app.render_cache.note_uncacheable();
                    }
                    let _tables = RequestLocks::acquire_all_shared(&map);
                    let response = Executor::call_read_only_checked(&request.path, || {
                        controller(app, request)
                    });
                    (response, RenderCacheStatus::Bypass)
                }
            }
        } else if router.has_write_route(&request.path) {
            // The read-only degraded gate: after a durable-write
            // failure the app sheds ordinary writes with `503
            // Retry-After` *before* taking any lock; reads (above)
            // keep flowing, and exempted recovery routes
            // (`admin/checkpoint`) still dispatch so the mode can be
            // cleared.
            if !router.is_degraded_exempt(&request.path) {
                if let Some(reason) = app.degraded_reason() {
                    let response = Response::unavailable(&format!(
                        "service degraded (read-only): {reason}; \
                         writes resume after the next successful checkpoint"
                    ));
                    return (response, RenderCacheStatus::Bypass);
                }
            }
            let response = match router.footprint(&request.path) {
                Some(fp) => {
                    let _global = locks.global.read().expect("global lock");
                    let map = locks.tables.read().expect("lock-table map");
                    let _tables = RequestLocks::acquire(&map, fp);
                    Executor::call_checked(&request.path, Some(fp), || router.handle(app, request))
                }
                None => {
                    // No footprint: conservative whole-app exclusion.
                    let _global = locks.global.write().expect("global lock");
                    router.handle(app, request)
                }
            };
            (response, RenderCacheStatus::Bypass)
        } else {
            (Response::not_found(), RenderCacheStatus::Bypass)
        }
    }

    /// Renders a fragment-registered page **fragment-wise**: the
    /// shell plus every fragment of the table in first-appearance jid
    /// order, each through full faceted projection under the
    /// request's viewer. One pass produces both the response bytes
    /// and the decomposition the repair path needs — a cold miss on a
    /// fragment route costs a single render, not a render plus a
    /// decompose. Byte-identity with the route's own controller is
    /// the registration contract ([`Router::route_fragments`]):
    /// asserted against a real controller render in debug builds at
    /// every miss, and pinned end-to-end by the differential grids.
    /// Returns `None` (controller renders instead) when the route has
    /// no spec, fragments are disabled, or the table is unreadable.
    fn render_fragmented(
        app: &App,
        router: &Router,
        request: &Request,
    ) -> Option<(FragmentedPage, String)> {
        if !app.render_cache.fragments_enabled() {
            return None;
        }
        let spec = router.fragment_spec(&request.path)?;
        let order = app.db.jid_order(&spec.table).ok()?;
        let (prefix, suffix) = (spec.shell)(app, request);
        let mut body = prefix.clone();
        let mut fragments = Vec::with_capacity(order.len());
        for jid in order {
            let piece = (spec.fragment)(app, request, jid);
            body.push_str(&piece);
            fragments.push((jid, piece));
        }
        body.push_str(&suffix);
        Some((
            FragmentedPage {
                table: spec.table.clone(),
                prefix,
                suffix,
                fragments,
            },
            body,
        ))
    }

    /// Attempts to repair a stale fragmented entry from the write
    /// journal instead of discarding it. Succeeds only when:
    ///
    /// * the route still registers a fragment spec over the entry's
    ///   table, and fragments are enabled;
    /// * the fragment table is the **only** footprint table whose
    ///   generation moved (other tables feed fragment policies, so
    ///   movement there can change untouched fragments' bytes);
    /// * the table's journal still covers the window since the stamp
    ///   (`deltas_since`), naming every touched jid.
    ///
    /// On success, only the touched jids' fragments re-render — full
    /// faceted projection under the entry's viewer, so no bytes are
    /// spliced that didn't pass policy enforcement — the shell and
    /// untouched fragments are reused, and the entry is restored with
    /// a fresh generation vector read under the caller's still-held
    /// shared footprint locks. Any failure returns `None` and the
    /// caller falls back to the full re-render: correctness never
    /// depends on the journal.
    fn try_repair(
        app: &App,
        router: &Router,
        request: &Request,
        fp: &Footprint,
        key: &RenderKey,
        stale: StaleEntry,
    ) -> Option<Response> {
        let cache = &app.render_cache;
        if !cache.fragments_enabled() {
            return None;
        }
        let page = stale.fragments?;
        let spec = router.fragment_spec(&request.path)?;
        if spec.table != page.table {
            return None;
        }
        let db = app.db.raw_ref();
        let mut stamped = None;
        for (table, gen) in &stale.generations {
            let live = db.generation(table).ok()?;
            if *table == page.table {
                stamped = Some(*gen);
            } else if live != *gen {
                return None;
            }
        }
        let touched = app.db.touched_jids_since(&page.table, stamped?).ok()??;
        let order = app.db.jid_order(&page.table).ok()?;
        let stored: BTreeMap<i64, &str> = page
            .fragments
            .iter()
            .map(|(jid, piece)| (*jid, piece.as_str()))
            .collect();
        let (prefix, suffix) = (spec.shell)(app, request);
        let mut body = prefix.clone();
        let mut fragments = Vec::with_capacity(order.len());
        let mut rerendered = 0u64;
        for jid in order {
            let piece = if touched.binary_search(&jid).is_ok() {
                rerendered += 1;
                (spec.fragment)(app, request, jid)
            } else {
                // An untouched jid absent from the stored decomposition
                // would mean the journal missed a write; treat it like
                // a decode error and fall back.
                (*stored.get(&jid)?).to_owned()
            };
            body.push_str(&piece);
            fragments.push((jid, piece));
        }
        body.push_str(&suffix);
        let generations: Vec<(String, u64)> = fp
            .tables()
            .map(|t| db.generation(t).ok().map(|g| (t.to_owned(), g)))
            .collect::<Option<_>>()?;
        let response = Response::ok(body);
        cache.note_repaired(rerendered);
        cache.store(
            key.clone(),
            generations,
            &response,
            Some(FragmentedPage {
                table: page.table,
                prefix,
                suffix,
                fragments,
            }),
        );
        Some(response)
    }

    /// Runs a controller with debug-build footprint verification:
    /// the FORM records every table the request actually touches
    /// (`form::touched`), and a touch outside the route's declared
    /// [`Footprint`] **panics** — an under-declared footprint means
    /// the executor took too few locks, which would race silently in
    /// release. Release builds run the controller directly; routes
    /// with no footprint are exempt (they hold conservative locks).
    fn call_checked(
        path: &str,
        footprint: Option<&Footprint>,
        run: impl FnOnce() -> Response,
    ) -> Response {
        #[cfg(debug_assertions)]
        if let Some(fp) = footprint {
            let previous = form::touched::begin_recording();
            let response = run();
            if let Some(touched) = form::touched::end_recording(previous) {
                for table in &touched.writes {
                    assert!(
                        fp.writes.contains(table),
                        "route {path:?} wrote table {table:?} outside its declared \
                         footprint (writes: {:?}) — the executor held no exclusive \
                         lock for it; declare it via route_tables",
                        fp.writes
                    );
                }
                for table in &touched.reads {
                    assert!(
                        fp.reads.contains(table) || fp.writes.contains(table),
                        "route {path:?} read table {table:?} outside its declared \
                         footprint (reads: {:?}, writes: {:?}) — remember tables \
                         consulted by policies at output time",
                        fp.reads,
                        fp.writes
                    );
                }
            }
            return response;
        }
        let _ = (path, footprint);
        run()
    }

    /// Debug-build checker for the **footprint-less read-route
    /// fallback**: the route runs under shared locks on every table,
    /// so any *write* it performs races concurrently dispatched
    /// declared readers (nobody holds an exclusive lock for it). The
    /// FORM's touch recording catches exactly that: a footprint-less
    /// read route that mutates any table panics in debug builds.
    /// Reads are unconstrained — all-shared covers every table by
    /// construction.
    fn call_read_only_checked(path: &str, run: impl FnOnce() -> Response) -> Response {
        #[cfg(debug_assertions)]
        {
            let previous = form::touched::begin_recording();
            let response = run();
            if let Some(touched) = form::touched::end_recording(previous) {
                assert!(
                    touched.writes.is_empty(),
                    "footprint-less read route {path:?} wrote table(s) {:?} while \
                     holding only shared locks — register it as a write route \
                     (route/route_tables), or declare a footprint",
                    touched.writes
                );
            }
            response
        }
        #[cfg(not(debug_assertions))]
        {
            let _ = path;
            run()
        }
    }
}

/// A response that went through the [`ExecutorService`] job queue,
/// annotated with where its latency went: queue wait (submit →
/// worker pickup) vs service time (controller under footprint
/// locks). The HTTP server exports both as `X-Queue-Us` /
/// `X-Service-Us` response headers, which is what the open-loop load
/// harness aggregates into percentiles.
#[derive(Clone, Debug)]
pub struct ServedResponse {
    /// The controller's response.
    pub response: Response,
    /// Time the request sat in the job queue.
    pub queued: Duration,
    /// Time the request spent executing (including footprint-lock
    /// acquisition — lock contention is service time, not queueing).
    pub service: Duration,
    /// How the render cache handled the request (`X-Render-Cache`).
    pub render_cache: RenderCacheStatus,
}

/// One queued request plus the channel its response goes back on.
struct RequestJob {
    request: Request,
    enqueued: Instant,
    reply: mpsc::SyncSender<ServedResponse>,
}

/// A unit of worker work: an ordinary request, or a scheduled
/// checkpoint riding the same queue — a checkpoint is dispatched by
/// whichever worker pops it, exactly like a request, and takes its
/// quiescent point through the ordinary footprint-lock protocol.
enum Job {
    Request(Box<RequestJob>),
    Checkpoint,
}

/// When the [`ExecutorService`] enqueues an automatic checkpoint:
/// after `every_records` WAL records have accumulated since the last
/// truncation, or `every` wall-clock time since the last scheduled
/// checkpoint — whichever fires first. Both `None` disables
/// scheduling. Policies are evaluated after each served request (the
/// executor is the scheduling substrate; an idle service takes no
/// checkpoints), and at most one scheduled checkpoint is queued or
/// running at a time.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Checkpoint once this many WAL records sit above the last
    /// checkpoint (compared against
    /// [`App::wal_pressure`](crate::App::wal_pressure)).
    pub every_records: Option<u64>,
    /// Checkpoint once this much time has passed since the last
    /// scheduled checkpoint.
    pub every: Option<Duration>,
}

impl CheckpointPolicy {
    /// Whether any trigger is configured.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.every_records.is_some() || self.every.is_some()
    }
}

/// The scheduling state behind a [`CheckpointPolicy`].
struct Scheduler {
    policy: CheckpointPolicy,
    /// When the last scheduled checkpoint finished (or the service
    /// started) — the time-based trigger's reference point.
    last: Mutex<Instant>,
    /// One scheduled checkpoint queued or running at a time: set by
    /// the CAS in [`ExecutorService::maybe_enqueue_checkpoint`],
    /// cleared when the checkpoint job finishes.
    in_flight: AtomicBool,
}

struct ServiceShared {
    app: Arc<App>,
    router: Arc<Router>,
    queue: Mutex<VecDeque<Job>>,
    ready: Condvar,
    shutdown: AtomicBool,
    /// Jobs the queue will hold before [`ExecutorService::submit`]
    /// sheds with `503 Retry-After` (in-flight requests don't count —
    /// they left the queue).
    max_queue: usize,
    /// Requests shed because the queue was full.
    sheds: AtomicUsize,
    /// Automatic checkpoint scheduling, when configured.
    scheduler: Option<Scheduler>,
}

/// The executor's **job-queue mode**: a persistent worker pool
/// serving requests submitted one at a time, instead of
/// [`Executor::run`]'s pre-collected batches.
///
/// This is what a socket front-end needs: each accepted connection
/// [`submit`](ExecutorService::submit)s requests as they arrive on
/// the wire and the fixed pool dispatches them under the same
/// footprint locks batch mode uses — connections never spawn
/// threads, and a burst of arrivals queues instead of oversubscribing
/// the machine. Responses carry queue-wait and service timings for
/// the load harness.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use jacqueline::{App, ExecutorService, Request, Response, Router, Viewer};
///
/// let mut router = Router::new();
/// router.route_read("ping", |_, req| Response::ok(format!("pong {}", req.viewer)));
/// let service = ExecutorService::start(Arc::new(App::new()), Arc::new(router), 2);
/// let served = service.serve(Request::new("ping", Viewer::User(1)));
/// assert_eq!(served.response.body, "pong user#1");
/// service.shutdown();
/// ```
pub struct ExecutorService {
    shared: Arc<ServiceShared>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

/// The default [`ExecutorService`] queue bound: deep enough that a
/// burst never sheds in ordinary operation, shallow enough that a
/// stalled pool fails fast instead of buffering unbounded memory.
pub const DEFAULT_QUEUE_DEPTH: usize = 1024;

impl ExecutorService {
    /// Starts `threads` workers (clamped to at least 1) over a shared
    /// app and router, with the [`DEFAULT_QUEUE_DEPTH`] job-queue
    /// bound.
    #[must_use]
    pub fn start(app: Arc<App>, router: Arc<Router>, threads: usize) -> ExecutorService {
        ExecutorService::start_bounded(app, router, threads, DEFAULT_QUEUE_DEPTH)
    }

    /// [`ExecutorService::start`] with an explicit queue bound
    /// (clamped to at least 1): once `max_queue` jobs are waiting,
    /// further submissions are **shed** immediately with
    /// `503 Retry-After: 1` instead of queueing — backpressure
    /// reaches the client while the server is still healthy, rather
    /// than as an unbounded latency tail.
    #[must_use]
    pub fn start_bounded(
        app: Arc<App>,
        router: Arc<Router>,
        threads: usize,
        max_queue: usize,
    ) -> ExecutorService {
        ExecutorService::start_scheduled(
            app,
            router,
            threads,
            max_queue,
            CheckpointPolicy::default(),
        )
    }

    /// [`ExecutorService::start_bounded`] plus automatic checkpoint
    /// scheduling: when `policy` has a trigger and the app has a
    /// persistence directory ([`App::enable_persistence`]), workers
    /// enqueue a checkpoint job through the ordinary queue whenever
    /// the policy says one is due. The checkpoint runs
    /// [`App::checkpoint_quiescent`] — incremental after the first —
    /// and truncates the WAL, resetting the record trigger.
    ///
    /// [`App::enable_persistence`]: crate::App::enable_persistence
    /// [`App::checkpoint_quiescent`]: crate::App::checkpoint_quiescent
    #[must_use]
    pub fn start_scheduled(
        app: Arc<App>,
        router: Arc<Router>,
        threads: usize,
        max_queue: usize,
        policy: CheckpointPolicy,
    ) -> ExecutorService {
        app.request_locks.ensure(router.declared_tables());
        let shared = Arc::new(ServiceShared {
            app,
            router,
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
            max_queue: max_queue.max(1),
            sheds: AtomicUsize::new(0),
            scheduler: policy.is_enabled().then(|| Scheduler {
                policy,
                last: Mutex::new(Instant::now()),
                in_flight: AtomicBool::new(false),
            }),
        });
        let workers = (0..threads.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("executor-worker-{i}"))
                    .spawn(move || ExecutorService::worker(&shared))
                    .expect("spawn executor worker")
            })
            .collect();
        ExecutorService {
            shared,
            workers: Mutex::new(workers),
        }
    }

    fn worker(shared: &ServiceShared) {
        let locks = &shared.app.request_locks;
        loop {
            let job = {
                let mut queue = shared.queue.lock().expect("job queue");
                loop {
                    if let Some(job) = queue.pop_front() {
                        break job;
                    }
                    if shared.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    queue = shared.ready.wait(queue).expect("job queue");
                }
            };
            match job {
                Job::Request(job) => {
                    let picked_up = Instant::now();
                    let queued = picked_up.duration_since(job.enqueued);
                    let (response, render_cache) =
                        Executor::dispatch_traced(&shared.app, &shared.router, locks, &job.request);
                    let served = ServedResponse {
                        response,
                        queued,
                        service: picked_up.elapsed(),
                        render_cache,
                    };
                    // The submitter may have hung up (a dropped
                    // connection); that loses the response, not the
                    // worker.
                    let _ = job.reply.send(served);
                    ExecutorService::maybe_enqueue_checkpoint(shared);
                }
                Job::Checkpoint => ExecutorService::run_scheduled_checkpoint(shared),
            }
        }
    }

    /// Evaluated by a worker after each served request: if the
    /// scheduling policy says a checkpoint is due and none is already
    /// queued or running, push a checkpoint job. Runs outside any
    /// lock the request held; the CAS on `in_flight` makes the check
    /// race-free across workers.
    fn maybe_enqueue_checkpoint(shared: &ServiceShared) {
        let Some(sched) = &shared.scheduler else {
            return;
        };
        if shared.app.is_degraded() {
            // Pressure can't drain while writes are shed, and the
            // checkpoint job would skip anyway (see
            // `App::checkpoint_scheduled`) — don't churn the queue.
            return;
        }
        let due_records = sched
            .policy
            .every_records
            .is_some_and(|n| shared.app.wal_pressure().0 >= n);
        let due_time = sched
            .policy
            .every
            .is_some_and(|d| sched.last.lock().expect("scheduler clock").elapsed() >= d);
        if !(due_records || due_time) {
            return;
        }
        if sched
            .in_flight
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return; // one scheduled checkpoint at a time
        }
        {
            let mut queue = shared.queue.lock().expect("job queue");
            if shared.shutdown.load(Ordering::Acquire) {
                sched.in_flight.store(false, Ordering::Release);
                return;
            }
            // The checkpoint job bypasses the submit() bound: it
            // *reduces* pending durability debt, and there is at most
            // one.
            queue.push_back(Job::Checkpoint);
        }
        shared.ready.notify_one();
    }

    /// Runs a scheduled checkpoint job: `checkpoint_scheduled` into
    /// the app's persistence directory (a no-op while degraded —
    /// clearing that flag is the operator's `admin/checkpoint` call,
    /// not a background task). Errors are swallowed — a failed
    /// checkpoint leaves the logs for the next attempt; scheduling
    /// must never take a worker down.
    fn run_scheduled_checkpoint(shared: &ServiceShared) {
        let Some(sched) = &shared.scheduler else {
            return;
        };
        if let Some(dir) = shared.app.persist_dir() {
            if let Ok(Some(_)) = shared.app.checkpoint_scheduled(&dir) {
                shared
                    .app
                    .scheduled_checkpoints
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
        *sched.last.lock().expect("scheduler clock") = Instant::now();
        sched.in_flight.store(false, Ordering::Release);
    }

    /// Enqueues a request; the returned channel yields the response
    /// once a worker has served it. If the queue is already at its
    /// bound, the request is **shed**: the channel yields an
    /// immediate `503` with `Retry-After: 1` and no worker ever sees
    /// the job.
    ///
    /// # Panics
    ///
    /// Panics if the service is already shut down.
    pub fn submit(&self, request: Request) -> mpsc::Receiver<ServedResponse> {
        let (tx, rx) = mpsc::sync_channel(1);
        let job = RequestJob {
            request,
            enqueued: Instant::now(),
            reply: tx,
        };
        {
            // The shutdown flag is only ever *set* while this lock is
            // held, so checking it under the same lock closes the
            // submit/shutdown race: a job either lands before the
            // flag (workers drain it) or the submit panics — it can
            // never slip into the queue after the drain and leave its
            // caller blocked forever.
            let mut queue = self.shared.queue.lock().expect("job queue");
            assert!(
                !self.shared.shutdown.load(Ordering::Acquire),
                "submit on a shut-down ExecutorService"
            );
            if queue.len() >= self.shared.max_queue {
                drop(queue);
                self.shared.sheds.fetch_add(1, Ordering::Relaxed);
                let _ = job.reply.send(ServedResponse {
                    response: Response::unavailable("server overloaded: the request queue is full"),
                    queued: Duration::ZERO,
                    service: Duration::ZERO,
                    render_cache: RenderCacheStatus::Bypass,
                });
                return rx;
            }
            queue.push_back(Job::Request(Box::new(job)));
        }
        self.shared.ready.notify_one();
        rx
    }

    /// Submits and blocks for the response (the connection handler's
    /// path).
    ///
    /// # Panics
    ///
    /// Panics if the serving worker died (it panicked mid-request).
    #[must_use]
    pub fn serve(&self, request: Request) -> ServedResponse {
        self.submit(request)
            .recv()
            .expect("executor worker dropped the reply channel")
    }

    /// Requests currently waiting for a worker.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.lock().expect("job queue").len()
    }

    /// The configured queue bound.
    #[must_use]
    pub fn max_queue(&self) -> usize {
        self.shared.max_queue
    }

    /// Requests shed (answered `503` without queueing) since start.
    #[must_use]
    pub fn sheds(&self) -> usize {
        self.shared.sheds.load(Ordering::Relaxed)
    }

    /// The worker-pool size.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.workers.lock().expect("worker registry").len()
    }

    /// Stops accepting work, lets in-flight requests finish (workers
    /// drain the queue before exiting), answers anything left `503`,
    /// and joins the workers. Idempotent.
    pub fn shutdown(&self) {
        {
            // Set the flag under the queue lock — see submit() for
            // why this ordering matters.
            let _queue = self.shared.queue.lock().expect("job queue");
            self.shared.shutdown.store(true, Ordering::Release);
        }
        self.shared.ready.notify_all();
        let workers: Vec<_> = self
            .workers
            .lock()
            .expect("worker registry")
            .drain(..)
            .collect();
        for worker in workers {
            if worker.join().is_err() {
                // A worker panicked mid-request (e.g. a debug-build
                // footprint violation); keep joining the rest.
            }
        }
        let drained: Vec<Job> = self
            .shared
            .queue
            .lock()
            .expect("job queue")
            .drain(..)
            .collect();
        for job in drained {
            // A drained checkpoint job has no reply channel and no
            // caller: it is simply dropped.
            let Job::Request(job) = job else { continue };
            let _ = job.reply.send(ServedResponse {
                response: Response {
                    status: 503,
                    body: "server shutting down".to_owned(),
                    headers: Vec::new(),
                },
                queued: job.enqueued.elapsed(),
                service: Duration::ZERO,
                render_cache: RenderCacheStatus::Bypass,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{simple_policy, ModelDef, Viewer};
    use microdb::{ColumnDef, ColumnType, Value};

    fn note_app() -> App {
        let mut app = App::new();
        app.register_model(
            ModelDef::public(
                "note",
                vec![
                    ColumnDef::new("owner", ColumnType::Int),
                    ColumnDef::new("text", ColumnType::Str),
                ],
            )
            .with_policy(simple_policy(
                "note_owner",
                vec![1],
                |_| vec![Value::from("[private]")],
                |args| args.viewer.user_jid() == args.row[0].as_int(),
            )),
        )
        .unwrap();
        for i in 0..6 {
            app.create("note", vec![Value::Int(i), Value::from(format!("n{i}"))])
                .unwrap();
        }
        app
    }

    fn note_router() -> Router {
        let mut router = Router::new();
        router.route_read_tables("notes", &["note"], |app: &App, req| {
            let rows = app.all("note").unwrap_or_default();
            let mut session = crate::Session::new(req.viewer.clone());
            let mut body = String::new();
            for row in session.view_rows(app, &rows) {
                body.push_str(row[1].as_str().unwrap_or("?"));
                body.push('\n');
            }
            Response::ok(body)
        });
        router.route_tables("note/add", &[], &["note"], |app: &App, req| {
            let owner = req.viewer.user_jid().unwrap_or(-1);
            match app.create("note", vec![Value::Int(owner), Value::from("added")]) {
                Ok(jid) => Response::ok(jid.to_string()),
                Err(e) => Response::error(&e.to_string()),
            }
        });
        router
    }

    /// [`note_router`] plus a fragment renderer over `note` for the
    /// `notes` page — one line per note, byte-identical to the full
    /// page's slice for that note.
    fn fragment_router() -> Router {
        let mut router = note_router();
        router.route_fragments(
            "notes",
            "note",
            |_, _| (String::new(), String::new()),
            |app: &App, req, jid| {
                let Ok(obj) = app.get("note", jid) else {
                    return String::new();
                };
                let mut session = crate::Session::new(req.viewer.clone());
                session
                    .view_object(app, &obj)
                    .map_or_else(String::new, |row| {
                        format!("{}\n", row[1].as_str().unwrap_or("?"))
                    })
            },
        );
        router
    }

    fn read_mix() -> Vec<Request> {
        (0..24)
            .map(|i| Request::new("notes", Viewer::User(i % 7)))
            .collect()
    }

    #[test]
    fn sequential_matches_direct_router_dispatch() {
        let app = note_app();
        let router = note_router();
        let requests = read_mix();
        let executed = Executor::sequential().run(&app, &router, &requests);
        let direct_app = note_app();
        let direct: Vec<Response> = requests
            .iter()
            .map(|r| router.handle(&direct_app, r))
            .collect();
        assert_eq!(executed, direct);
    }

    #[test]
    fn concurrent_reads_match_sequential() {
        let app = note_app();
        let router = note_router();
        let requests = read_mix();
        let sequential = Executor::sequential().run(&app, &router, &requests);
        for threads in [2, 4, 8] {
            let concurrent = Executor::with_threads(threads).run(&app, &router, &requests);
            assert_eq!(concurrent, sequential, "{threads} threads");
        }
    }

    #[test]
    fn writes_take_effect_and_unknown_paths_404() {
        let app = note_app();
        let router = note_router();
        let requests = vec![
            Request::new("note/add", Viewer::User(1)),
            Request::new("nope", Viewer::Anonymous),
            Request::new("notes", Viewer::User(1)),
        ];
        let responses = Executor::sequential().run(&app, &router, &requests);
        assert_eq!(responses[0].status, 200);
        assert_eq!(responses[1].status, 404);
        assert!(responses[2].body.contains("added"));
    }

    #[test]
    fn executor_shares_one_app_across_threads() {
        // Mixed reads and (commuting) writes across 4 threads: every
        // write lands exactly once in the shared database.
        let app = note_app();
        let router = note_router();
        let writes = 12;
        let requests: Vec<Request> = (0..writes)
            .map(|i| Request::new("note/add", Viewer::User(i)))
            .collect();
        let responses = Executor::with_threads(4).run(&app, &router, &requests);
        assert!(responses.iter().all(|r| r.status == 200));
        let total = app
            .all("note")
            .unwrap()
            .iter()
            .filter(|(_, r)| r.fields[1] == Value::from("added"))
            .map(|(_, r)| r.jid)
            .collect::<std::collections::BTreeSet<_>>()
            .len();
        assert_eq!(total as i64, writes);
    }

    #[test]
    fn undeclared_write_routes_still_serialize() {
        // A router registered entirely through the legacy (no
        // footprint) API keeps the old conservative semantics.
        let app = note_app();
        let mut router = Router::new();
        router.route("note/add", |app: &App, req| {
            let owner = req.viewer.user_jid().unwrap_or(-1);
            match app.create("note", vec![Value::Int(owner), Value::from("added")]) {
                Ok(jid) => Response::ok(jid.to_string()),
                Err(e) => Response::error(&e.to_string()),
            }
        });
        router.route_read("notes", |app: &App, req| {
            let rows = app.all("note").unwrap_or_default();
            let mut session = crate::Session::new(req.viewer.clone());
            Response::ok(format!("{}", session.view_rows(app, &rows).len()))
        });
        let mut requests: Vec<Request> = (0..8)
            .map(|i| Request::new("note/add", Viewer::User(i)))
            .collect();
        requests.extend((0..8).map(|i| Request::new("notes", Viewer::User(i))));
        let responses = Executor::with_threads(4).run(&app, &router, &requests);
        assert!(responses.iter().all(|r| r.status == 200));
        assert_eq!(app.db.physical_rows("note").unwrap(), (6 + 8) * 2);
    }

    #[test]
    fn concurrent_run_calls_on_one_app_share_footprint_locks() {
        // Two separate Executor::run invocations against the same App
        // must isolate against each other: `save` is a delete +
        // re-insert, so if the runs did not share a lock table, the
        // reader run could observe the object mid-save as absent.
        let app = note_app();
        let jid = 1i64;
        let mut writer_router = Router::new();
        writer_router.route_tables(
            "note/rewrite",
            &[],
            &["note"],
            move |app: &App, _| match app.update_fields(
                "note",
                jid,
                &[(1, Value::from("rewritten"))],
                &Default::default(),
            ) {
                Ok(()) => Response::ok("ok".into()),
                Err(e) => Response::error(&e.to_string()),
            },
        );
        let mut reader_router = Router::new();
        reader_router.route_read_tables("note/present", &["note"], move |app: &App, _| {
            match app.get("note", jid) {
                Ok(_) => Response::ok("present".into()),
                Err(e) => Response::error(&e.to_string()),
            }
        });
        let writes: Vec<Request> = (0..50)
            .map(|_| Request::new("note/rewrite", Viewer::User(0)))
            .collect();
        let reads: Vec<Request> = (0..200)
            .map(|_| Request::new("note/present", Viewer::User(0)))
            .collect();
        std::thread::scope(|scope| {
            let w = scope.spawn(|| Executor::with_threads(2).run(&app, &writer_router, &writes));
            let r = scope.spawn(|| Executor::with_threads(2).run(&app, &reader_router, &reads));
            let write_responses = w.join().unwrap();
            let read_responses = r.join().unwrap();
            assert!(write_responses.iter().all(|resp| resp.status == 200));
            for resp in &read_responses {
                assert_eq!(
                    (resp.status, resp.body.as_str()),
                    (200, "present"),
                    "a reader observed a torn save across executor runs"
                );
            }
        });
    }

    #[test]
    fn service_mode_serves_submitted_requests() {
        let app = Arc::new(note_app());
        let router = Arc::new(note_router());
        let service = ExecutorService::start(Arc::clone(&app), router, 3);
        assert_eq!(service.threads(), 3);
        // Interleave reads and writes through the queue.
        let mut receivers = Vec::new();
        for i in 0..8 {
            receivers.push(service.submit(Request::new("note/add", Viewer::User(i))));
        }
        for rx in receivers {
            let served = rx.recv().unwrap();
            assert_eq!(served.response.status, 200);
            assert!(served.service >= Duration::ZERO);
        }
        let read = service.serve(Request::new("notes", Viewer::User(1)));
        assert_eq!(read.response.status, 200);
        // 6 seeded notes + 8 added = 14 rows; the viewer reads their
        // own note's text, every other row shows the public facet.
        assert_eq!(read.response.body.lines().count(), 6 + 8);
        assert_eq!(read.response.body.matches("added").count(), 1);
        let miss = service.serve(Request::new("nope", Viewer::Anonymous));
        assert_eq!(miss.response.status, 404);
        service.shutdown();
    }

    #[test]
    fn service_mode_matches_batch_mode_bytes() {
        let service_app = Arc::new(note_app());
        let service = ExecutorService::start(Arc::clone(&service_app), Arc::new(note_router()), 4);
        let batch_app = note_app();
        let router = note_router();
        let requests = read_mix();
        let batch = Executor::sequential().run(&batch_app, &router, &requests);
        for (request, expected) in requests.iter().zip(batch) {
            let served = service.serve(request.clone());
            assert_eq!(served.response, expected);
        }
        service.shutdown();
    }

    #[test]
    fn service_shutdown_joins_workers_and_drains() {
        let service = ExecutorService::start(Arc::new(note_app()), Arc::new(note_router()), 2);
        let rx = service.submit(Request::new("notes", Viewer::User(1)));
        service.shutdown();
        // The submitted request was either served before shutdown or
        // drained with 503 — it is never silently dropped.
        let served = rx.recv().unwrap();
        assert!(served.response.status == 200 || served.response.status == 503);
    }

    /// The debug-build footprint checker: a route that reads a table
    /// it never declared must panic the dispatch (under-declared
    /// footprints silently break request isolation otherwise).
    /// Release builds skip the check, so this test is debug-only.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "outside its declared footprint")]
    fn under_declared_read_footprint_panics_in_debug() {
        let app = note_app();
        let mut router = Router::new();
        // Declares nothing but reads `note`.
        router.route_read_tables("sneaky", &[], |app: &App, _req| {
            let rows = app.all("note").unwrap_or_default();
            Response::ok(rows.len().to_string())
        });
        let requests = vec![Request::new("sneaky", Viewer::User(1))];
        let _ = Executor::sequential().run(&app, &router, &requests);
    }

    /// The satellite fix: footprint-less routes used to skip the
    /// checker entirely — a *read* route that writes would race
    /// declared readers silently (it holds only shared locks). Now
    /// the global-lock fallback path records too, and the write
    /// panics the dispatch.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "footprint-less read route")]
    fn footprint_less_read_route_that_writes_panics_in_debug() {
        let app = note_app();
        let mut router = Router::new();
        // Registered through the legacy no-footprint *read* API, but
        // it mutates the database.
        router.route_read("sneaky/mutating-page", |app: &App, _req| {
            app.create("note", vec![Value::Int(5), Value::from("x")])
                .unwrap();
            Response::ok(String::new())
        });
        let requests = vec![Request::new("sneaky/mutating-page", Viewer::User(1))];
        let _ = Executor::sequential().run(&app, &router, &requests);
    }

    /// Footprint-less read routes that only *read* still pass under
    /// the new fallback checker.
    #[test]
    fn footprint_less_read_route_that_reads_passes() {
        let app = note_app();
        let mut router = Router::new();
        router.route_read("legacy/list", |app: &App, _req| {
            Response::ok(app.all("note").map(|r| r.len()).unwrap_or(0).to_string())
        });
        let requests = vec![Request::new("legacy/list", Viewer::User(1))];
        let responses = Executor::sequential().run(&app, &router, &requests);
        assert_eq!(responses[0].status, 200);
        assert_eq!(responses[0].body, "12", "6 notes × 2 facet rows");
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "wrote table")]
    fn under_declared_write_footprint_panics_in_debug() {
        let app = note_app();
        let mut router = Router::new();
        // Declares `note` as a *read*, then writes it.
        router.route_tables("sneaky/add", &["note"], &[], |app: &App, _req| {
            app.create("note", vec![Value::Int(9), Value::from("x")])
                .unwrap();
            Response::ok(String::new())
        });
        let requests = vec![Request::new("sneaky/add", Viewer::User(1))];
        let _ = Executor::sequential().run(&app, &router, &requests);
    }

    #[test]
    fn declared_footprints_pass_the_debug_check() {
        // The canonical routers run under the checker in every debug
        // test run; this pins the simplest positive case explicitly.
        let app = note_app();
        let router = note_router();
        let requests = vec![
            Request::new("notes", Viewer::User(1)),
            Request::new("note/add", Viewer::User(1)),
        ];
        let responses = Executor::sequential().run(&app, &router, &requests);
        assert!(responses.iter().all(|r| r.status == 200));
    }

    #[test]
    fn render_cache_serves_hits_until_a_write_invalidates() {
        let app = note_app();
        let router = note_router();
        let read = |app: &App| {
            Executor::sequential()
                .run(app, &router, &[Request::new("notes", Viewer::User(1))])
                .remove(0)
        };
        let cold = read(&app);
        let warm = read(&app);
        assert_eq!(warm, cold, "a hit serves the same bytes as the render");
        let stats = app.render_cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.invalidated), (1, 1, 0));
        // A real write to the footprint table moves its generation:
        // the next read invalidates, re-renders, and re-caches.
        let responses = Executor::sequential().run(
            &app,
            &router,
            &[
                Request::new("note/add", Viewer::User(1)),
                Request::new("notes", Viewer::User(1)),
                Request::new("notes", Viewer::User(1)),
            ],
        );
        assert!(responses[1].body.contains("added"));
        assert_eq!(responses[2], responses[1]);
        let stats = app.render_cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.invalidated), (2, 2, 1));
    }

    #[test]
    fn render_cache_keys_are_per_viewer() {
        let app = note_app();
        let router = note_router();
        let pages: Vec<Response> = Executor::sequential().run(
            &app,
            &router,
            &[
                Request::new("notes", Viewer::User(1)),
                Request::new("notes", Viewer::User(2)),
                Request::new("notes", Viewer::Anonymous),
            ],
        );
        // Three viewers, three private projections — none may share.
        assert!(pages[0].body.contains("n1") && !pages[0].body.contains("n2"));
        assert!(pages[1].body.contains("n2") && !pages[1].body.contains("n1"));
        assert!(!pages[2].body.contains("n1") && !pages[2].body.contains("n2"));
        let stats = app.render_cache_stats();
        assert_eq!((stats.hits, stats.misses), (0, 3), "no cross-viewer hits");
    }

    #[test]
    fn render_cache_ablation_bypasses_and_restores() {
        let app = note_app();
        let router = note_router();
        assert!(app.set_render_cache(false), "default is enabled");
        let requests = vec![
            Request::new("notes", Viewer::User(1)),
            Request::new("notes", Viewer::User(1)),
        ];
        let off = Executor::sequential().run(&app, &router, &requests);
        let stats = app.render_cache_stats();
        assert_eq!((stats.hits, stats.misses), (0, 0), "disabled = untouched");
        assert!(!app.set_render_cache(true));
        let on = Executor::sequential().run(&app, &router, &requests);
        assert_eq!(on, off, "ablation changes cost, never bytes");
        assert_eq!(app.render_cache_stats().hits, 1);
    }

    #[test]
    fn footprint_less_read_routes_are_counted_uncacheable() {
        let app = note_app();
        let mut router = note_router();
        router.route_read("legacy/count", |app: &App, _| {
            Response::ok(app.all("note").map(|r| r.len()).unwrap_or(0).to_string())
        });
        let requests = vec![
            Request::new("legacy/count", Viewer::User(1)),
            Request::new("legacy/count", Viewer::User(1)),
        ];
        let responses = Executor::sequential().run(&app, &router, &requests);
        assert_eq!(responses[0], responses[1]);
        let stats = app.render_cache_stats();
        assert_eq!(stats.uncacheable, 2, "counted, not cached");
        assert_eq!((stats.hits, stats.misses), (0, 0));
    }

    /// The PR 6 interaction pin: generation-silent no-op writes
    /// (`update_where`/`delete_where` touching zero rows) must leave
    /// render-cache entries valid — the generation vector never moved,
    /// so hits keep hitting.
    #[test]
    fn no_op_writes_leave_render_cache_hits_hitting() {
        use microdb::{Operand, Predicate};
        let app = note_app();
        let router = note_router();
        let request = [Request::new("notes", Viewer::User(1))];
        let _ = Executor::sequential().run(&app, &router, &request);
        let _ = Executor::sequential().run(&app, &router, &request);
        let before = app.render_cache_stats();
        assert_eq!((before.hits, before.invalidated), (1, 0));
        // Zero-row update and delete: PR 6 made these generation-silent.
        let nobody = Predicate::eq(Operand::col("owner"), Operand::Lit(Value::Int(999)));
        let updated = app
            .db
            .raw_ref()
            .update(
                "note",
                &nobody,
                &[("text".to_owned(), Value::from("never"))],
            )
            .unwrap();
        let deleted = app.db.raw_ref().delete("note", &nobody).unwrap();
        assert_eq!((updated, deleted), (0, 0));
        let _ = Executor::sequential().run(&app, &router, &request);
        let after = app.render_cache_stats();
        assert_eq!(after.hits, before.hits + 1, "no-op writes must not evict");
        assert_eq!(after.invalidated, 0);
    }

    #[test]
    fn service_mode_reports_render_cache_status() {
        let app = Arc::new(note_app());
        let service = ExecutorService::start(Arc::clone(&app), Arc::new(note_router()), 2);
        let first = service.serve(Request::new("notes", Viewer::User(1)));
        assert_eq!(first.render_cache, RenderCacheStatus::Miss);
        let second = service.serve(Request::new("notes", Viewer::User(1)));
        assert_eq!(second.render_cache, RenderCacheStatus::Hit);
        assert_eq!(second.response, first.response);
        let write = service.serve(Request::new("note/add", Viewer::User(1)));
        assert_eq!(write.render_cache, RenderCacheStatus::Bypass);
        let miss = service.serve(Request::new("nope", Viewer::Anonymous));
        assert_eq!(miss.render_cache, RenderCacheStatus::Bypass);
        service.shutdown();
    }

    #[test]
    fn fragment_repair_repairs_in_place_with_one_fragment() {
        let app = Arc::new(note_app());
        let service = ExecutorService::start(Arc::clone(&app), Arc::new(fragment_router()), 2);
        let cold = service.serve(Request::new("notes", Viewer::User(1)));
        assert_eq!(cold.render_cache, RenderCacheStatus::Miss);
        let warm = service.serve(Request::new("notes", Viewer::User(1)));
        assert_eq!(warm.render_cache, RenderCacheStatus::Hit);

        let write = service.serve(Request::new("note/add", Viewer::User(1)));
        assert_eq!(write.response.status, 200, "{}", write.response.body);
        let repaired = service.serve(Request::new("notes", Viewer::User(1)));
        assert_eq!(repaired.render_cache, RenderCacheStatus::Repair);
        assert!(repaired.response.body.contains("added"));
        // Byte-identity with a full, uncached render of the live state.
        let fresh = fragment_router().handle(&app, &Request::new("notes", Viewer::User(1)));
        assert_eq!(repaired.response.body, fresh.body);

        let stats = app.render_cache_stats();
        assert_eq!(
            (stats.repairs, stats.repaired_fragments),
            (1, 1),
            "one single-note write re-rendered exactly one fragment"
        );
        assert_eq!(
            (stats.hits, stats.misses, stats.invalidated),
            (1, 1, 0),
            "a repair is neither a miss nor an invalidation"
        );
        // The repaired entry is restamped: the next read is a hit.
        let hot = service.serve(Request::new("notes", Viewer::User(1)));
        assert_eq!(hot.render_cache, RenderCacheStatus::Hit);
        assert_eq!(hot.response, repaired.response);
        service.shutdown();
    }

    #[test]
    fn fragment_repair_disabled_falls_back_to_invalidation() {
        let app = Arc::new(note_app());
        assert!(app.set_fragment_repair(false), "fragments default on");
        let service = ExecutorService::start(Arc::clone(&app), Arc::new(fragment_router()), 2);
        let _ = service.serve(Request::new("notes", Viewer::User(1)));
        let _ = service.serve(Request::new("note/add", Viewer::User(1)));
        let after = service.serve(Request::new("notes", Viewer::User(1)));
        assert_eq!(
            after.render_cache,
            RenderCacheStatus::Miss,
            "with fragments off a stale entry is discarded, PR 7 style"
        );
        let stats = app.render_cache_stats();
        assert_eq!((stats.repairs, stats.invalidated), (0, 1));
        assert!(!app.fragment_repair_enabled());
        assert!(!app.set_fragment_repair(true), "reports previous setting");
        service.shutdown();
    }

    #[test]
    fn fragment_repair_falls_back_when_the_journal_window_slides() {
        let app = Arc::new(note_app());
        let service = ExecutorService::start(Arc::clone(&app), Arc::new(fragment_router()), 2);
        let _ = service.serve(Request::new("notes", Viewer::User(1)));
        // Push the note table's journal past its 1024-row budget: each
        // note is two facet rows, so 600 creates overflow the window.
        for i in 0..600 {
            app.create("note", vec![Value::Int(i), Value::from("bulk")])
                .unwrap();
        }
        let after = service.serve(Request::new("notes", Viewer::User(1)));
        assert_eq!(
            after.render_cache,
            RenderCacheStatus::Miss,
            "a slid-past journal window must fall back to a full render"
        );
        let fresh = fragment_router().handle(&app, &Request::new("notes", Viewer::User(1)));
        assert_eq!(after.response.body, fresh.body);
        let stats = app.render_cache_stats();
        assert_eq!((stats.repairs, stats.invalidated), (0, 1));
        service.shutdown();
    }

    #[test]
    fn fragment_repair_requires_the_fragment_table_to_be_the_only_mover() {
        // Two-table page: notes joined with a `tag` table the
        // fragments also read. A tag write moves a non-fragment
        // footprint table, so repair must refuse (untouched fragments'
        // bytes could depend on it) and fall back to a full render.
        let mut app = note_app();
        app.register_model(ModelDef::public(
            "tag",
            vec![ColumnDef::new("label", ColumnType::Str)],
        ))
        .unwrap();
        app.create("tag", vec![Value::from("v1")]).unwrap();
        let app = Arc::new(app);
        let mut router = Router::new();
        let page = |app: &App, req: &Request| {
            let tag = app
                .all("tag")
                .ok()
                .and_then(|rows| {
                    let mut session = crate::Session::new(req.viewer.clone());
                    session
                        .view_rows(app, &rows)
                        .last()
                        .map(|r| r[0].as_str().unwrap_or("?").to_owned())
                })
                .unwrap_or_default();
            let rows = app.all("note").unwrap_or_default();
            let mut session = crate::Session::new(req.viewer.clone());
            let mut body = String::new();
            for row in session.view_rows(app, &rows) {
                body.push_str(&format!("{} [{tag}]\n", row[1].as_str().unwrap_or("?")));
            }
            body
        };
        router.route_read_tables("tagged", &["note", "tag"], move |app: &App, req| {
            Response::ok(page(app, req))
        });
        router.route_tables("tag/set", &[], &["tag"], |app: &App, req| {
            let label = req.params.get("label").cloned().unwrap_or_default();
            match app.create("tag", vec![Value::from(label)]) {
                Ok(jid) => Response::ok(jid.to_string()),
                Err(e) => Response::error(&e.to_string()),
            }
        });
        router.route_tables("note/add", &[], &["note"], |app: &App, req| {
            let owner = req.viewer.user_jid().unwrap_or(-1);
            match app.create("note", vec![Value::Int(owner), Value::from("added")]) {
                Ok(jid) => Response::ok(jid.to_string()),
                Err(e) => Response::error(&e.to_string()),
            }
        });
        router.route_fragments(
            "tagged",
            "note",
            |_, _| (String::new(), String::new()),
            |app: &App, req, jid| {
                let tag = app
                    .all("tag")
                    .ok()
                    .and_then(|rows| {
                        let mut session = crate::Session::new(req.viewer.clone());
                        session
                            .view_rows(app, &rows)
                            .last()
                            .map(|r| r[0].as_str().unwrap_or("?").to_owned())
                    })
                    .unwrap_or_default();
                let Ok(obj) = app.get("note", jid) else {
                    return String::new();
                };
                let mut session = crate::Session::new(req.viewer.clone());
                session
                    .view_object(app, &obj)
                    .map_or_else(String::new, |row| {
                        format!("{} [{tag}]\n", row[1].as_str().unwrap_or("?"))
                    })
            },
        );
        let router = Arc::new(router);
        let service = ExecutorService::start(Arc::clone(&app), Arc::clone(&router), 2);
        let _ = service.serve(Request::new("tagged", Viewer::User(1)));
        let tag_write =
            service.serve(Request::new("tag/set", Viewer::User(1)).with_param("label", "v2"));
        assert_eq!(tag_write.response.status, 200);
        let after = service.serve(Request::new("tagged", Viewer::User(1)));
        assert_eq!(
            after.render_cache,
            RenderCacheStatus::Miss,
            "a non-fragment footprint table moved: full re-render, no splice"
        );
        assert!(
            after.response.body.contains("[v2]"),
            "{}",
            after.response.body
        );
        // A note write with the tag table quiescent *does* repair.
        let _ = service.serve(Request::new("note/add", Viewer::User(1)));
        let repaired = service.serve(Request::new("tagged", Viewer::User(1)));
        assert_eq!(repaired.render_cache, RenderCacheStatus::Repair);
        let fresh = router.handle(&app, &Request::new("tagged", Viewer::User(1)));
        assert_eq!(repaired.response.body, fresh.body);
        service.shutdown();
    }

    #[test]
    fn canonicalized_params_share_one_cache_entry() {
        let app = note_app();
        let mut router = note_router();
        router.route_read_tables("note/one", &["note"], |app: &App, req| {
            let Some(jid) = req.int_param("id") else {
                return Response::bad_request("id required");
            };
            match app.get("note", jid) {
                Ok(obj) => {
                    let mut session = crate::Session::new(req.viewer.clone());
                    let row = session.view_object(app, &obj);
                    Response::ok(
                        row.map_or_else(String::new, |r| r[1].as_str().unwrap_or("?").to_owned()),
                    )
                }
                Err(e) => Response::error(&e.to_string()),
            }
        });
        router.canonicalize_int_params("note/one", &["id"]);
        let responses = Executor::sequential().run(
            &app,
            &router,
            &[
                Request::new("note/one", Viewer::User(1)).with_param("id", "1"),
                // Same object, denormalized id plus a stray param: the
                // canonicalizer folds it onto the warm entry.
                Request::new("note/one", Viewer::User(1))
                    .with_param("id", "01")
                    .with_param("utm", "x"),
            ],
        );
        assert_eq!(responses[0], responses[1]);
        let stats = app.render_cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn degraded_mode_sheds_writes_serves_reads_and_recovers() {
        let app = note_app();
        let router = note_router();
        app.enter_degraded("disk full (test)".to_owned());
        let responses = Executor::sequential().run(
            &app,
            &router,
            &[
                Request::new("note/add", Viewer::User(1)),
                Request::new("notes", Viewer::User(1)),
            ],
        );
        assert_eq!(responses[0].status, 503, "writes shed while degraded");
        assert_eq!(responses[0].header("Retry-After"), Some("1"));
        assert!(responses[0].body.contains("disk full (test)"));
        assert_eq!(responses[1].status, 200, "reads keep serving");
        assert_eq!(
            app.db.physical_rows("note").unwrap(),
            12,
            "the shed write never reached storage"
        );
        app.clear_degraded();
        let retry =
            Executor::sequential().run(&app, &router, &[Request::new("note/add", Viewer::User(1))]);
        assert_eq!(retry[0].status, 200, "writes resume once cleared");
    }

    #[test]
    fn degraded_exempt_routes_still_dispatch() {
        let app = note_app();
        let mut router = note_router();
        router.route("admin/fix", |_, _| Response::ok("fixed".into()));
        router.exempt_from_degraded("admin/fix");
        app.enter_degraded("disk full (test)".to_owned());
        let responses = Executor::sequential().run(
            &app,
            &router,
            &[
                Request::new("admin/fix", Viewer::User(1)),
                Request::new("note/add", Viewer::User(1)),
            ],
        );
        assert_eq!(responses[0].status, 200, "the recovery route runs");
        assert_eq!(responses[1].status, 503, "ordinary writes still shed");
    }

    #[test]
    fn bounded_queue_sheds_with_retry_after_and_recovers() {
        // One worker, queue bound 2. A parked request occupies the
        // worker; two more fill the queue; the fourth must shed
        // immediately with 503 + Retry-After, and once the queue
        // drains the service takes work again.
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let release_rx = Mutex::new(release_rx);
        let mut router = Router::new();
        router.route_read("park", move |_, _| {
            release_rx.lock().unwrap().recv().unwrap();
            Response::ok("parked".into())
        });
        router.route_read("ping", |_, _| Response::ok("pong".into()));
        let service = ExecutorService::start_bounded(Arc::new(App::new()), Arc::new(router), 1, 2);
        assert_eq!(service.max_queue(), 2);
        let parked = service.submit(Request::new("park", Viewer::User(1)));
        // Wait for the worker to pick the parked job up, so the two
        // fillers below land in the queue rather than on the worker.
        while service.queue_depth() > 0 {
            std::thread::yield_now();
        }
        let fill_a = service.submit(Request::new("ping", Viewer::User(1)));
        let fill_b = service.submit(Request::new("ping", Viewer::User(2)));
        let shed = service.serve(Request::new("ping", Viewer::User(3)));
        assert_eq!(shed.response.status, 503, "{}", shed.response.body);
        assert_eq!(shed.response.header("Retry-After"), Some("1"));
        assert_eq!(service.sheds(), 1);
        release_tx.send(()).unwrap();
        assert_eq!(parked.recv().unwrap().response.body, "parked");
        assert_eq!(fill_a.recv().unwrap().response.status, 200);
        assert_eq!(fill_b.recv().unwrap().response.status, 200);
        // Recovery: the drained queue accepts and serves new work.
        let after = service.serve(Request::new("ping", Viewer::User(4)));
        assert_eq!(after.response.status, 200);
        assert_eq!(service.sheds(), 1, "no further sheds after recovery");
        service.shutdown();
    }

    #[test]
    fn write_to_one_table_does_not_block_readers_of_another() {
        // The table-granular locking headline, demonstrated
        // deterministically: a write controller on table `a` parks
        // until a reader of table `b` has completed. Under the old
        // app-wide write lock this deadlocks (the reader can never
        // start while the writer holds the app); with footprint locks
        // the reader proceeds and both finish.
        use std::sync::mpsc;
        let mut app = App::new();
        for t in ["a", "b"] {
            app.register_model(ModelDef::public(
                t,
                vec![ColumnDef::new("x", ColumnType::Int)],
            ))
            .unwrap();
        }
        app.create("b", vec![Value::Int(7)]).unwrap();

        let (reader_done_tx, reader_done_rx) = mpsc::channel::<()>();
        let reader_done_rx = std::sync::Mutex::new(reader_done_rx);
        let reader_done_tx = std::sync::Mutex::new(Some(reader_done_tx));
        let mut router = Router::new();
        router.route_tables("a/slow_add", &[], &["a"], move |app: &App, _req| {
            app.create("a", vec![Value::Int(1)]).unwrap();
            // Park until the reader of `b` reports completion; if the
            // reader were blocked behind this writer, this would time
            // out and fail rather than deadlock forever.
            let ok = reader_done_rx
                .lock()
                .unwrap()
                .recv_timeout(std::time::Duration::from_secs(10))
                .is_ok();
            Response::ok(format!("reader_finished_first={ok}"))
        });
        router.route_read_tables("b/read", &["b"], move |app: &App, _req| {
            let n = app.all("b").map(|r| r.len()).unwrap_or(0);
            if let Some(tx) = reader_done_tx.lock().unwrap().take() {
                let _ = tx.send(());
            }
            Response::ok(n.to_string())
        });

        let requests = vec![
            Request::new("a/slow_add", Viewer::User(1)),
            Request::new("b/read", Viewer::User(2)),
        ];
        let responses = Executor::with_threads(2).run(&app, &router, &requests);
        assert_eq!(
            responses[0].body, "reader_finished_first=true",
            "the b-reader must complete while the a-writer is mid-request"
        );
        assert_eq!(responses[1].body, "1");
    }

    #[test]
    fn scheduled_checkpoints_fire_on_record_pressure_and_compact_the_wal() {
        let dir = std::env::temp_dir().join(format!("jacq_exec_sched_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut app = note_app();
        app.enable_persistence(&dir).unwrap();
        let app = Arc::new(app);
        let policy = CheckpointPolicy {
            every_records: Some(1),
            every: None,
        };
        let service = ExecutorService::start_scheduled(
            Arc::clone(&app),
            Arc::new(note_router()),
            2,
            DEFAULT_QUEUE_DEPTH,
            policy,
        );
        let mut receivers = Vec::new();
        for i in 0..6 {
            receivers.push(service.submit(Request::new("note/add", Viewer::User(i))));
        }
        for rx in receivers {
            assert_eq!(rx.recv().unwrap().response.status, 200);
        }
        // The checkpoint rides the same queue as requests, so give
        // the workers a bounded window to reach it.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while app.scheduled_checkpoint_count() == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(
            app.scheduled_checkpoint_count() > 0,
            "record pressure above the policy threshold must trigger a checkpoint"
        );
        // The service keeps serving while and after checkpoints run.
        let read = service.serve(Request::new("notes", Viewer::User(1)));
        assert_eq!(read.response.status, 200);
        assert_eq!(read.response.body.lines().count(), 6 + 6);
        service.shutdown();
        // The scheduled checkpoint committed the chunked snapshot and
        // compacted the WAL below its pre-checkpoint record count.
        assert!(dir.join(crate::checkpoint::CHECKPOINT_FILE).exists());
        assert!(dir.join("chunks").is_dir());
        let (records, _) = app.wal_pressure();
        assert!(
            records < 6,
            "WAL must have been compacted at the last checkpoint (records={records})"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disabled_policy_never_schedules_checkpoints() {
        let dir = std::env::temp_dir().join(format!("jacq_exec_nosched_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut app = note_app();
        app.enable_persistence(&dir).unwrap();
        let app = Arc::new(app);
        assert!(!CheckpointPolicy::default().is_enabled());
        let service = ExecutorService::start_scheduled(
            Arc::clone(&app),
            Arc::new(note_router()),
            2,
            DEFAULT_QUEUE_DEPTH,
            CheckpointPolicy::default(),
        );
        let mut receivers = Vec::new();
        for i in 0..4 {
            receivers.push(service.submit(Request::new("note/add", Viewer::User(i))));
        }
        for rx in receivers {
            assert_eq!(rx.recv().unwrap().response.status, 200);
        }
        service.shutdown();
        assert_eq!(app.scheduled_checkpoint_count(), 0);
        assert!(!dir.join(crate::checkpoint::CHECKPOINT_FILE).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
