//! The concurrent request executor: many [`Session`]-style requests
//! against one shared [`App`].
//!
//! The paper evaluates Jacqueline under FunkLoad-generated HTTP load;
//! this module supplies the server side of that story for the Rust
//! reproduction. One [`App`] (and its `Send + Sync` faceted database)
//! sits behind a reader-writer lock; read-only page requests — the
//! overwhelming majority of web traffic — dispatch in parallel under
//! the read side, while mutating actions take the exclusive side.
//! Per-request Early-Pruning state lives inside each request's
//! [`Session`], so worker threads never share resolution state.
//!
//! Determinism: [`Executor::sequential`] processes requests in
//! submission order on the calling thread and is bit-for-bit
//! identical to dispatching through [`Router::handle`] one request at
//! a time — the mode the differential λJDB semantics tests pin.
//! Multi-threaded runs return responses in submission order too; the
//! per-response bytes are identical whenever requests are independent
//! (read-only, or writes that commute), which the executor stress
//! tests assert against the sequential mode.
//!
//! [`Session`]: crate::Session

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{OnceLock, RwLock};

use crate::app::App;
use crate::http::{Request, Response, Router};

/// Runs batches of requests against a shared application.
///
/// # Examples
///
/// ```
/// use std::sync::RwLock;
/// use jacqueline::{App, Executor, Request, Response, Router, Viewer};
///
/// let mut router = Router::new();
/// router.route_read("ping", |_, req| Response::ok(format!("pong {}", req.viewer)));
///
/// let app = RwLock::new(App::new());
/// let requests: Vec<Request> =
///     (0..8).map(|i| Request::new("ping", Viewer::User(i))).collect();
/// let responses = Executor::with_threads(4).run(&app, &router, &requests);
/// assert_eq!(responses.len(), 8);
/// assert!(responses.iter().all(|r| r.status == 200));
/// ```
#[derive(Copy, Clone, Debug)]
pub struct Executor {
    threads: usize,
}

impl Executor {
    /// The deterministic single-thread mode: requests are processed in
    /// submission order on the calling thread, exactly like a loop
    /// over [`Router::handle`].
    #[must_use]
    pub fn sequential() -> Executor {
        Executor { threads: 1 }
    }

    /// A pool of `threads` workers (clamped to at least 1). Workers
    /// pull requests from a shared queue; read routes run under the
    /// app's read lock, write routes under the write lock.
    #[must_use]
    pub fn with_threads(threads: usize) -> Executor {
        Executor {
            threads: threads.max(1),
        }
    }

    /// The configured worker count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Processes every request, returning responses in submission
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if the app lock is poisoned (a prior request panicked)
    /// or a worker thread panics.
    #[must_use]
    pub fn run(&self, app: &RwLock<App>, router: &Router, requests: &[Request]) -> Vec<Response> {
        if self.threads == 1 {
            return requests
                .iter()
                .map(|r| Executor::dispatch(app, router, r))
                .collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<OnceLock<Response>> = requests.iter().map(|_| OnceLock::new()).collect();
        std::thread::scope(|scope| {
            for _ in 0..self.threads {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(request) = requests.get(i) else {
                        break;
                    };
                    let response = Executor::dispatch(app, router, request);
                    slots[i]
                        .set(response)
                        .unwrap_or_else(|_| unreachable!("slot {i} claimed once"));
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("every claimed slot was filled before scope exit")
            })
            .collect()
    }

    /// Dispatches one request with the appropriate lock side. Unknown
    /// paths answer 404 without taking any lock, so stray requests
    /// cannot stall the parallel readers behind the write side.
    fn dispatch(app: &RwLock<App>, router: &Router, request: &Request) -> Response {
        if let Some(controller) = router.read_controller(&request.path) {
            let guard = app.read().expect("app lock poisoned");
            controller(&guard, request)
        } else if router.has_write_route(&request.path) {
            let mut guard = app.write().expect("app lock poisoned");
            router.handle(&mut guard, request)
        } else {
            Response::not_found()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{simple_policy, ModelDef, Viewer};
    use microdb::{ColumnDef, ColumnType, Value};

    fn note_app() -> App {
        let mut app = App::new();
        app.register_model(
            ModelDef::public(
                "note",
                vec![
                    ColumnDef::new("owner", ColumnType::Int),
                    ColumnDef::new("text", ColumnType::Str),
                ],
            )
            .with_policy(simple_policy(
                "note_owner",
                vec![1],
                |_| vec![Value::from("[private]")],
                |args| args.viewer.user_jid() == args.row[0].as_int(),
            )),
        )
        .unwrap();
        for i in 0..6 {
            app.create("note", vec![Value::Int(i), Value::from(format!("n{i}"))])
                .unwrap();
        }
        app
    }

    fn note_router() -> Router {
        let mut router = Router::new();
        router.route_read("notes", |app: &App, req| {
            let rows = app.all("note").unwrap_or_default();
            let mut session = crate::Session::new(req.viewer.clone());
            let mut body = String::new();
            for row in session.view_rows(app, &rows) {
                body.push_str(row[1].as_str().unwrap_or("?"));
                body.push('\n');
            }
            Response::ok(body)
        });
        router.route("note/add", |app: &mut App, req| {
            let owner = req.viewer.user_jid().unwrap_or(-1);
            match app.create("note", vec![Value::Int(owner), Value::from("added")]) {
                Ok(jid) => Response::ok(jid.to_string()),
                Err(e) => Response::error(&e.to_string()),
            }
        });
        router
    }

    fn read_mix() -> Vec<Request> {
        (0..24)
            .map(|i| Request::new("notes", Viewer::User(i % 7)))
            .collect()
    }

    #[test]
    fn sequential_matches_direct_router_dispatch() {
        let app = RwLock::new(note_app());
        let router = note_router();
        let requests = read_mix();
        let executed = Executor::sequential().run(&app, &router, &requests);
        let mut direct_app = note_app();
        let direct: Vec<Response> = requests
            .iter()
            .map(|r| router.handle(&mut direct_app, r))
            .collect();
        assert_eq!(executed, direct);
    }

    #[test]
    fn concurrent_reads_match_sequential() {
        let app = RwLock::new(note_app());
        let router = note_router();
        let requests = read_mix();
        let sequential = Executor::sequential().run(&app, &router, &requests);
        for threads in [2, 4, 8] {
            let concurrent = Executor::with_threads(threads).run(&app, &router, &requests);
            assert_eq!(concurrent, sequential, "{threads} threads");
        }
    }

    #[test]
    fn writes_take_effect_and_unknown_paths_404() {
        let app = RwLock::new(note_app());
        let router = note_router();
        let requests = vec![
            Request::new("note/add", Viewer::User(1)),
            Request::new("nope", Viewer::Anonymous),
            Request::new("notes", Viewer::User(1)),
        ];
        let responses = Executor::sequential().run(&app, &router, &requests);
        assert_eq!(responses[0].status, 200);
        assert_eq!(responses[1].status, 404);
        assert!(responses[2].body.contains("added"));
    }

    #[test]
    fn executor_shares_one_app_across_threads() {
        // Mixed reads and (commuting) writes across 4 threads: every
        // write lands exactly once in the shared database.
        let app = RwLock::new(note_app());
        let router = note_router();
        let writes = 12;
        let requests: Vec<Request> = (0..writes)
            .map(|i| Request::new("note/add", Viewer::User(i)))
            .collect();
        let responses = Executor::with_threads(4).run(&app, &router, &requests);
        assert!(responses.iter().all(|r| r.status == 200));
        let total = app
            .read()
            .unwrap()
            .all("note")
            .unwrap()
            .iter()
            .filter(|(_, r)| r.fields[1] == Value::from("added"))
            .map(|(_, r)| r.jid)
            .collect::<std::collections::BTreeSet<_>>()
            .len();
        assert_eq!(total as i64, writes);
    }
}
