//! The HTTP/1.1 wire layer: incremental request parsing and response
//! serialization, with no external dependencies.
//!
//! The paper's evaluation (§6) serves real HTTP traffic; this module
//! is the byte-level half of that story for the Rust reproduction.
//! [`read_request`] parses one request off a buffered socket —
//! request line, headers, percent-decoded query parameters, and
//! `application/x-www-form-urlencoded` POST bodies — into a
//! [`WireRequest`]; [`Response::serialize`] renders the framework's
//! [`Response`] back into bytes. The [`server`](crate::server) module
//! glues the two around the executor's job queue.
//!
//! Hard limits (request-line length, header count/size, body size)
//! are enforced *during* parsing, so a hostile peer cannot make the
//! server buffer unbounded input. Every malformed-input case maps to
//! a concrete status code: `400` for syntax errors (bad escapes,
//! missing `Host`, truncated bodies), `405` unknown method, `413`
//! oversized body, `414` oversized request line, `431` oversized
//! header block, `505` unknown HTTP version.
//!
//! Parameter precedence is defined (and pinned by tests): duplicate
//! query keys resolve to the **last** occurrence, and form-body
//! parameters override query parameters of the same name.

use std::collections::BTreeMap;
use std::io::BufRead;

use crate::http::Response;

/// Longest accepted request line (method + target + version).
pub const MAX_REQUEST_LINE: usize = 8 * 1024;
/// Longest accepted single header line.
pub const MAX_HEADER_LINE: usize = 8 * 1024;
/// Most headers accepted on one request.
pub const MAX_HEADERS: usize = 100;
/// Largest accepted request body.
pub const MAX_BODY: usize = 1024 * 1024;

/// Why a request could not be read.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The peer closed the connection before sending any byte — the
    /// clean end of a keep-alive session, not an error to answer.
    Closed,
    /// The socket timed out before the first byte of a request (an
    /// idle keep-alive connection); the caller decides whether to
    /// keep waiting or hang up.
    Idle,
    /// A malformed request: the status code to answer with, plus a
    /// human-readable reason (sent as the body).
    Bad {
        /// Response status (400/405/408/413/414/431/505).
        status: u16,
        /// What was wrong.
        reason: String,
    },
    /// The transport failed mid-request (reset, broken pipe …).
    Io(String),
}

impl WireError {
    fn bad(status: u16, reason: impl Into<String>) -> WireError {
        WireError::Bad {
            status,
            reason: reason.into(),
        }
    }

    /// The error response to answer a [`WireError::Bad`] with. A 405
    /// names the implemented methods, per RFC 9110 §15.5.6.
    #[must_use]
    pub fn response(&self) -> Option<Response> {
        match self {
            WireError::Bad { status, reason } => {
                let response = Response {
                    status: *status,
                    body: reason.clone(),
                    headers: Vec::new(),
                };
                Some(if *status == 405 {
                    response.with_header("Allow", "GET, HEAD, POST")
                } else {
                    response
                })
            }
            _ => None,
        }
    }
}

/// One parsed HTTP request, before authentication and routing.
///
/// Deliberately *not* the framework's [`Request`](crate::Request):
/// the wire request carries no viewer. Viewer identity is resolved
/// from the session cookie/header by the
/// [`Authenticator`](crate::Authenticator) at the connection
/// boundary — application code never sees an unauthenticated
/// request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireRequest {
    /// Upper-cased method (`GET`, `HEAD`, `POST`).
    pub method: String,
    /// Percent-decoded path with the leading `/` stripped — the route
    /// name (`papers/all`).
    pub path: String,
    /// Merged query + form parameters (form wins on conflicts;
    /// duplicate keys resolve to the last occurrence).
    pub params: BTreeMap<String, String>,
    /// Raw headers in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Parsed `Cookie:` pairs (malformed fragments are skipped).
    pub cookies: BTreeMap<String, String>,
    /// Raw request body (empty unless `POST` with a `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the connection should stay open after the response.
    pub keep_alive: bool,
}

impl WireRequest {
    /// The first header with this (case-insensitive) name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Percent-decodes `%XX` escapes (and, when `plus_as_space`, `+`).
///
/// # Errors
///
/// Describes the first invalid escape or non-UTF-8 result.
pub fn percent_decode(s: &str, plus_as_space: bool) -> Result<String, String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes
                    .get(i + 1..i + 3)
                    .ok_or_else(|| format!("truncated %-escape in {s:?}"))?;
                let hi = hex_digit(hex[0]).ok_or_else(|| format!("bad %-escape in {s:?}"))?;
                let lo = hex_digit(hex[1]).ok_or_else(|| format!("bad %-escape in {s:?}"))?;
                out.push(hi * 16 + lo);
                i += 3;
            }
            b'+' if plus_as_space => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).map_err(|_| format!("%-escapes in {s:?} decode to invalid UTF-8"))
}

fn hex_digit(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

/// Parses a query string / form body into parameters. Duplicate keys:
/// last occurrence wins (pinned by a test — callers must not depend
/// on first-wins silently).
///
/// # Errors
///
/// Propagates percent-decoding failures.
pub fn parse_form_params(s: &str, into: &mut BTreeMap<String, String>) -> Result<(), String> {
    for pair in s.split('&') {
        if pair.is_empty() {
            continue;
        }
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        let key = percent_decode(k, true)?;
        let value = percent_decode(v, true)?;
        if key.is_empty() {
            continue;
        }
        into.insert(key, value);
    }
    Ok(())
}

/// Parses a `Cookie:` header value. Malformed fragments (no `=`,
/// empty name) are skipped rather than failing the request — cookie
/// jars routinely hold junk the server never set.
#[must_use]
pub fn parse_cookies(header: &str) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    for part in header.split(';') {
        let Some((name, value)) = part.split_once('=') else {
            continue;
        };
        let name = name.trim();
        if name.is_empty() {
            continue;
        }
        out.insert(name.to_owned(), value.trim().to_owned());
    }
    out
}

/// Reads one `\r\n`-terminated line, refusing to buffer more than
/// `limit` bytes. `Ok(None)` means EOF before any byte.
fn read_line(
    reader: &mut impl BufRead,
    limit: usize,
    over_limit: WireError,
) -> Result<Option<String>, WireError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Ok(None);
                }
                return Err(WireError::bad(400, "connection closed mid-line"));
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return String::from_utf8(line)
                        .map(Some)
                        .map_err(|_| WireError::bad(400, "non-UTF-8 request line or header"));
                }
                line.push(byte[0]);
                if line.len() > limit {
                    return Err(over_limit);
                }
            }
            Err(e) if is_timeout(&e) => {
                return Err(if line.is_empty() {
                    WireError::Idle
                } else {
                    WireError::bad(408, "timed out mid-request")
                });
            }
            Err(e) => return Err(WireError::Io(e.to_string())),
        }
    }
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Reads and parses one HTTP request off `reader` (incremental: it
/// consumes exactly one request, leaving any pipelined follow-up
/// untouched for the next call — this is what keep-alive loops on).
///
/// # Errors
///
/// [`WireError::Closed`]/[`WireError::Idle`] before the first byte;
/// [`WireError::Bad`] (with the status to answer) on malformed input;
/// [`WireError::Io`] on transport failures.
pub fn read_request(reader: &mut impl BufRead) -> Result<WireRequest, WireError> {
    let Some(request_line) = read_line(
        reader,
        MAX_REQUEST_LINE,
        WireError::bad(414, "request line too long"),
    )?
    else {
        return Err(WireError::Closed);
    };
    if request_line.is_empty() {
        return Err(WireError::bad(400, "empty request line"));
    }
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m.to_ascii_uppercase(), t, v),
        _ => {
            return Err(WireError::bad(
                400,
                format!("malformed request line {request_line:?}"),
            ))
        }
    };
    if !matches!(method.as_str(), "GET" | "HEAD" | "POST") {
        return Err(WireError::bad(405, format!("method {method} not allowed")));
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        other => {
            return Err(WireError::bad(505, format!("unsupported version {other}")));
        }
    };

    // Headers.
    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        let Some(line) = read_line(
            reader,
            MAX_HEADER_LINE,
            WireError::bad(431, "header line too long"),
        )?
        else {
            return Err(WireError::bad(400, "connection closed inside headers"));
        };
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(WireError::bad(431, "too many headers"));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(WireError::bad(400, format!("malformed header {line:?}")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }
    let header = |name: &str| {
        headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    };
    if http11 && header("host").is_none() {
        return Err(WireError::bad(400, "HTTP/1.1 request without Host header"));
    }
    // Framing must be unambiguous, or this parser and an intermediary
    // could disagree about where the request ends (request smuggling):
    // chunked bodies are not implemented, so any Transfer-Encoding is
    // refused rather than ignored, and repeated Content-Length
    // headers must agree (RFC 7230 §3.3.3).
    if header("transfer-encoding").is_some() {
        return Err(WireError::bad(
            501,
            "Transfer-Encoding is not supported; use Content-Length",
        ));
    }
    {
        let mut lengths = headers
            .iter()
            .filter(|(n, _)| n == "content-length")
            .map(|(_, v)| v.trim());
        if let Some(first) = lengths.next() {
            if lengths.any(|l| l != first) {
                return Err(WireError::bad(400, "conflicting Content-Length headers"));
            }
        }
    }
    let keep_alive = match header("connection").map(str::to_ascii_lowercase) {
        Some(c) if c == "close" => false,
        Some(c) if c == "keep-alive" => true,
        _ => http11, // the version's default
    };

    // Target: split query off, decode the path.
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let path = percent_decode(raw_path, false)
        .map_err(|e| WireError::bad(400, e))?
        .trim_start_matches('/')
        .to_owned();
    let mut params = BTreeMap::new();
    if let Some(q) = raw_query {
        parse_form_params(q, &mut params).map_err(|e| WireError::bad(400, e))?;
    }

    // Body (POST only): exactly Content-Length bytes. A body on any
    // other method is refused outright — silently *ignoring* a
    // GET/HEAD Content-Length would leave the body bytes in the
    // buffer to be parsed as the next pipelined request (the classic
    // request-smuggling desync).
    let mut body = Vec::new();
    if method != "POST" {
        let has_body = header("content-length").is_some_and(|v| v.trim() != "0");
        if has_body {
            return Err(WireError::bad(
                400,
                format!("{method} requests must not carry a body"),
            ));
        }
    }
    if method == "POST" {
        let length: usize = match header("content-length") {
            None => 0,
            Some(v) => v
                .trim()
                .parse()
                .map_err(|_| WireError::bad(400, format!("bad Content-Length {v:?}")))?,
        };
        if length > MAX_BODY {
            return Err(WireError::bad(413, format!("body of {length} bytes")));
        }
        body.resize(length, 0);
        if let Err(e) = reader.read_exact(&mut body) {
            return Err(match e.kind() {
                std::io::ErrorKind::UnexpectedEof => {
                    WireError::bad(400, "body shorter than Content-Length")
                }
                _ if is_timeout(&e) => WireError::bad(408, "timed out reading body"),
                _ => WireError::Io(e.to_string()),
            });
        }
        let is_form = header("content-type")
            .is_some_and(|ct| ct.starts_with("application/x-www-form-urlencoded"));
        if is_form && !body.is_empty() {
            let text = std::str::from_utf8(&body)
                .map_err(|_| WireError::bad(400, "non-UTF-8 form body"))?;
            // Form parameters override query parameters of the same
            // name (pinned by a test).
            parse_form_params(text, &mut params).map_err(|e| WireError::bad(400, e))?;
        }
    }

    let cookies = header("cookie").map(parse_cookies).unwrap_or_default();
    Ok(WireRequest {
        method,
        path,
        params,
        headers,
        cookies,
        body,
        keep_alive,
    })
}

impl Response {
    /// Serializes the response as HTTP/1.1 bytes. `Content-Type`
    /// defaults to `text/plain; charset=utf-8` unless a header
    /// overrides it; `Content-Length` and `Connection` are always
    /// emitted. With `head` the body is framed (correct
    /// `Content-Length`) but not sent.
    #[must_use]
    pub fn serialize(&self, keep_alive: bool, head: bool) -> Vec<u8> {
        let mut out = format!(
            "HTTP/1.1 {} {}\r\n",
            self.status,
            Response::status_text(self.status)
        );
        if self.header("content-type").is_none() {
            out.push_str("Content-Type: text/plain; charset=utf-8\r\n");
        }
        for (name, value) in &self.headers {
            // Framing headers are owned by the serializer: a
            // controller-supplied Content-Length/Connection would
            // conflict with the authoritative copies emitted below
            // and desync keep-alive clients.
            if name.eq_ignore_ascii_case("content-length")
                || name.eq_ignore_ascii_case("connection")
            {
                continue;
            }
            out.push_str(name);
            out.push_str(": ");
            out.push_str(value);
            out.push_str("\r\n");
        }
        out.push_str(&format!("Content-Length: {}\r\n", self.body.len()));
        out.push_str(if keep_alive {
            "Connection: keep-alive\r\n"
        } else {
            "Connection: close\r\n"
        });
        out.push_str("\r\n");
        let mut bytes = out.into_bytes();
        if !head {
            bytes.extend_from_slice(self.body.as_bytes());
        }
        bytes
    }
}

/// A parsed HTTP response — the *client* half of the wire layer, used
/// by the integration tests, the load harness, and the CI smoke
/// script (the server never parses responses).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Headers, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The body, exactly `Content-Length` bytes.
    pub body: Vec<u8>,
}

impl WireResponse {
    /// The first header with this (case-insensitive) name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    #[must_use]
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Reads one HTTP response off `reader` (client side).
///
/// # Errors
///
/// [`WireError::Closed`] on immediate EOF, [`WireError::Bad`] on a
/// malformed status line / headers, [`WireError::Io`] on transport
/// failures.
pub fn read_response(reader: &mut impl BufRead) -> Result<WireResponse, WireError> {
    let Some(status_line) = read_line(
        reader,
        MAX_HEADER_LINE,
        WireError::bad(400, "status line too long"),
    )?
    else {
        return Err(WireError::Closed);
    };
    let status: u16 = status_line
        .strip_prefix("HTTP/1.1 ")
        .or_else(|| status_line.strip_prefix("HTTP/1.0 "))
        .and_then(|rest| rest.split(' ').next())
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| WireError::bad(400, format!("malformed status line {status_line:?}")))?;
    let mut headers = Vec::new();
    loop {
        let Some(line) = read_line(
            reader,
            MAX_HEADER_LINE,
            WireError::bad(431, "header line too long"),
        )?
        else {
            return Err(WireError::bad(400, "connection closed inside headers"));
        };
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
        }
    }
    let length: usize = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .and_then(|(_, v)| v.parse().ok())
        .unwrap_or(0);
    let mut body = vec![0u8; length];
    reader
        .read_exact(&mut body)
        .map_err(|e| WireError::Io(e.to_string()))?;
    Ok(WireResponse {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<WireRequest, WireError> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    fn parse_bytes(raw: &[u8]) -> Result<WireRequest, WireError> {
        read_request(&mut BufReader::new(raw))
    }

    #[test]
    fn parses_a_plain_get() {
        let r = parse("GET /papers/all?id=3 HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "papers/all");
        assert_eq!(r.params.get("id").map(String::as_str), Some("3"));
        assert!(r.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn parses_a_form_post_and_body_overrides_query() {
        let body = "title=Faceted+Systems&x=%32";
        let raw = format!(
            "POST /papers/submit?x=1&q=keep HTTP/1.1\r\nHost: x\r\n\
             Content-Type: application/x-www-form-urlencoded\r\n\
             Content-Length: {}\r\n\r\n{body}",
            body.len()
        );
        let r = parse(&raw).unwrap();
        assert_eq!(
            r.params.get("title").map(String::as_str),
            Some("Faceted Systems")
        );
        assert_eq!(
            r.params.get("x").map(String::as_str),
            Some("2"),
            "body wins"
        );
        assert_eq!(r.params.get("q").map(String::as_str), Some("keep"));
    }

    /// The satellite's table of malformed-input cases: each row is
    /// (raw request bytes, expected status).
    #[test]
    fn malformed_requests_map_to_distinct_statuses() {
        let oversized_line = format!(
            "GET /{} HTTP/1.1\r\nHost: x\r\n\r\n",
            "a".repeat(MAX_REQUEST_LINE + 10)
        );
        let oversized_header = format!(
            "GET / HTTP/1.1\r\nHost: x\r\nX-Big: {}\r\n\r\n",
            "b".repeat(MAX_HEADER_LINE + 10)
        );
        let too_many_headers = format!(
            "GET / HTTP/1.1\r\nHost: x\r\n{}\r\n",
            "X-N: 1\r\n".repeat(MAX_HEADERS + 1)
        );
        let huge_body = format!(
            "POST / HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        let cases: Vec<(&str, u16, &str)> = vec![
            (&oversized_line, 414, "oversized request line"),
            (&oversized_header, 431, "oversized header line"),
            (&too_many_headers, 431, "too many headers"),
            (&huge_body, 413, "body over the limit"),
            ("GET / HTTP/1.1\r\n\r\n", 400, "missing Host on HTTP/1.1"),
            (
                "POST / HTTP/1.1\r\nHost: x\r\nContent-Length: 10\r\n\r\nshort",
                400,
                "body shorter than Content-Length",
            ),
            (
                "POST / HTTP/1.1\r\nHost: x\r\nContent-Length: nope\r\n\r\n",
                400,
                "unparseable Content-Length",
            ),
            ("BREW / HTTP/1.1\r\nHost: x\r\n\r\n", 405, "unknown method"),
            ("GET / HTTP/2\r\nHost: x\r\n\r\n", 505, "unknown version"),
            (
                "GET / HTTP/1.1 extra\r\nHost: x\r\n\r\n",
                400,
                "4-part line",
            ),
            ("GET /%zz HTTP/1.1\r\nHost: x\r\n\r\n", 400, "bad escape"),
            (
                "GET /a?x=%f HTTP/1.1\r\nHost: x\r\n\r\n",
                400,
                "short escape",
            ),
            (
                "GET / HTTP/1.1\r\nHost x-no-colon\r\n\r\n",
                400,
                "header without a colon",
            ),
            ("\r\n", 400, "empty request line"),
            (
                // A GET that smuggles body bytes (which would desync
                // the keep-alive framing if ignored).
                "GET /a HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello",
                400,
                "body on a GET",
            ),
            (
                // Chunked framing is not implemented; ignoring it
                // would leave the chunk bytes in the buffer as a
                // phantom next request.
                "POST /a HTTP/1.1\r\nHost: x\r\nTransfer-Encoding: chunked\r\n\r\n\
                 5\r\nhello\r\n0\r\n\r\n",
                501,
                "Transfer-Encoding",
            ),
            (
                // Conflicting repeated Content-Length: this parser and
                // an intermediary could frame the body differently.
                "POST /a HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\
                 Content-Length: 0\r\n\r\nAAAAA",
                400,
                "conflicting Content-Length",
            ),
        ];
        for (raw, expected, what) in cases {
            match parse(raw) {
                Err(WireError::Bad { status, reason }) => {
                    assert_eq!(status, expected, "{what}: got {status} ({reason})");
                }
                other => panic!("{what}: expected Bad({expected}), got {other:?}"),
            }
        }
    }

    #[test]
    fn eof_before_any_byte_is_closed_not_bad() {
        assert_eq!(parse("").unwrap_err(), WireError::Closed);
        // … but EOF *inside* a request is a hard 400.
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nHost: x\r\n"),
            Err(WireError::Bad { status: 400, .. })
        ));
    }

    #[test]
    fn duplicate_query_keys_last_one_wins() {
        let r = parse("GET /p?id=1&id=2&id=3 HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(r.params.get("id").map(String::as_str), Some("3"));
    }

    #[test]
    fn percent_decoding_round_trips() {
        assert_eq!(percent_decode("a%20b%2Fc", false).unwrap(), "a b/c");
        assert_eq!(percent_decode("a+b", true).unwrap(), "a b");
        assert_eq!(percent_decode("a+b", false).unwrap(), "a+b");
        assert_eq!(percent_decode("%E2%9C%93", false).unwrap(), "✓");
        assert!(percent_decode("%GG", false).is_err());
        assert!(percent_decode("%2", false).is_err());
        assert!(percent_decode("%ff", false).is_err(), "invalid UTF-8");
    }

    #[test]
    fn cookies_parse_and_malformed_fragments_are_skipped() {
        let jar = parse_cookies("session=abc123; theme=dark;  ; garbage; =noname; x=");
        assert_eq!(jar.get("session").map(String::as_str), Some("abc123"));
        assert_eq!(jar.get("theme").map(String::as_str), Some("dark"));
        assert_eq!(jar.get("x").map(String::as_str), Some(""));
        assert_eq!(jar.len(), 3, "junk fragments contribute nothing: {jar:?}");
        // A cookie header that is pure junk still parses (empty jar).
        assert!(parse_cookies(";;;").is_empty());
    }

    #[test]
    fn connection_header_overrides_version_default() {
        let r = parse("GET / HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!r.keep_alive);
        let r = parse("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(r.keep_alive);
        let r = parse("GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(
            !r.keep_alive,
            "HTTP/1.0 defaults to close (and needs no Host)"
        );
    }

    #[test]
    fn pipelined_requests_parse_one_at_a_time() {
        let raw = "GET /a HTTP/1.1\r\nHost: x\r\n\r\nGET /b HTTP/1.1\r\nHost: x\r\n\r\n";
        let mut reader = BufReader::new(raw.as_bytes());
        assert_eq!(read_request(&mut reader).unwrap().path, "a");
        assert_eq!(read_request(&mut reader).unwrap().path, "b");
        assert_eq!(read_request(&mut reader).unwrap_err(), WireError::Closed);
    }

    #[test]
    fn post_without_content_length_has_empty_body() {
        let r = parse("POST /p HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert!(r.body.is_empty() && r.params.is_empty());
    }

    #[test]
    fn non_utf8_input_is_a_400() {
        assert!(matches!(
            parse_bytes(b"GET /\xff\xfe HTTP/1.1\r\nHost: x\r\n\r\n"),
            Err(WireError::Bad { status: 400, .. })
        ));
    }

    #[test]
    fn response_serializes_and_round_trips() {
        let resp = Response::ok("hello".into()).with_header("Set-Cookie", "session=tok");
        let bytes = resp.serialize(true, false);
        let text = String::from_utf8(bytes.clone()).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 5\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.contains("Content-Type: text/plain"), "{text}");
        assert!(text.ends_with("\r\n\r\nhello"));
        let parsed = read_response(&mut BufReader::new(bytes.as_slice())).unwrap();
        assert_eq!(parsed.status, 200);
        assert_eq!(parsed.text(), "hello");
        assert_eq!(parsed.header("set-cookie"), Some("session=tok"));
    }

    #[test]
    fn head_serialization_frames_but_omits_the_body() {
        let resp = Response::not_found();
        let bytes = resp.serialize(false, true);
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.contains("Content-Length: 9\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n"), "no body after the blank line");
        assert!(text.contains("Connection: close\r\n"));
    }

    #[test]
    fn content_type_header_overrides_the_default() {
        let resp = Response::ok("<p>x</p>".into()).with_header("Content-Type", "text/html");
        let text = String::from_utf8(resp.serialize(true, false)).unwrap();
        assert!(text.contains("Content-Type: text/html\r\n"));
        assert!(!text.contains("text/plain"));
    }

    #[test]
    fn framing_headers_cannot_be_overridden_by_controllers() {
        // Content-Length/Connection are owned by the serializer; a
        // controller-supplied copy would conflict with the
        // authoritative values and desync keep-alive clients.
        let resp = Response::ok("hello".into())
            .with_header("Content-Length", "0")
            .with_header("Connection", "close");
        let text = String::from_utf8(resp.serialize(true, false)).unwrap();
        assert_eq!(text.matches("Content-Length:").count(), 1, "{text}");
        assert!(text.contains("Content-Length: 5\r\n"));
        assert_eq!(text.matches("Connection:").count(), 1);
        assert!(text.contains("Connection: keep-alive\r\n"));
    }

    #[test]
    fn repeated_identical_content_length_is_tolerated() {
        let raw = "POST /a HTTP/1.1\r\nHost: x\r\nContent-Length: 2\r\n\
                   Content-Length: 2\r\n\r\nok";
        assert_eq!(parse(raw).unwrap().body, b"ok");
    }
}
