//! Labels: the guards of faceted values.
//!
//! A [`Label`] corresponds to the Boolean variable `k` in the paper's
//! faceted value `⟨k ? v_high : v_low⟩`. Labels are interned in a
//! [`LabelRegistry`]; the numeric id doubles as the (arbitrary but fixed)
//! total order used to keep faceted-value trees canonical.

use std::collections::HashMap;
use std::fmt;

/// An information-flow label (the `k` of `⟨k ? e_H : e_L⟩`).
///
/// Labels are lightweight copyable handles; their human-readable names
/// live in a [`LabelRegistry`]. The derived ordering (by allocation id)
/// is the canonical variable order for faceted-value trees.
///
/// # Examples
///
/// ```
/// use faceted::{Label, LabelRegistry};
///
/// let mut reg = LabelRegistry::new();
/// let k = reg.fresh("k");
/// assert_eq!(reg.name(k), "k");
/// assert!(k < reg.fresh("l"));
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Label(u32);

impl Label {
    /// Returns the raw interning index of this label.
    #[must_use]
    pub fn index(self) -> u32 {
        self.0
    }

    /// Builds a label directly from a raw index.
    ///
    /// Intended for serialization round-trips (e.g. parsing a `jvars`
    /// column); the index should have been produced by
    /// [`Label::index`] on a label from the same registry.
    #[must_use]
    pub fn from_index(ix: u32) -> Label {
        Label(ix)
    }
}

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

/// Interner and allocator for [`Label`]s.
///
/// `fresh` mirrors the paper's `label k in e` construct: it always
/// allocates a new label, uniquifying the requested name if necessary.
/// `intern` returns the existing label of that name if there is one
/// (used when reconstructing labels from database meta-data).
///
/// # Examples
///
/// ```
/// use faceted::LabelRegistry;
///
/// let mut reg = LabelRegistry::new();
/// let a = reg.fresh("paper_author");
/// let b = reg.fresh("paper_author"); // α-renamed, like `label k in e`
/// assert_ne!(a, b);
/// assert_eq!(reg.intern("paper_author"), a);
/// ```
#[derive(Clone, Debug, Default)]
pub struct LabelRegistry {
    names: Vec<String>,
    by_name: HashMap<String, Label>,
}

impl LabelRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> LabelRegistry {
        LabelRegistry::default()
    }

    /// Allocates a fresh label, never reusing an existing one.
    ///
    /// If `name` is already taken the stored name is suffixed with the
    /// allocation index (the dynamic α-renaming of rule `F-LABEL`).
    pub fn fresh(&mut self, name: &str) -> Label {
        let id = u32::try_from(self.names.len()).expect("label space exhausted");
        let label = Label(id);
        let stored = if self.by_name.contains_key(name) {
            format!("{name}'{id}")
        } else {
            name.to_owned()
        };
        self.by_name.insert(stored.clone(), label);
        // Keep the *original* name pointing at its first allocation so
        // that `intern` is stable; the uniquified name maps to the new
        // label.
        self.names.push(stored);
        label
    }

    /// Returns the label already registered under `name`, or allocates
    /// a fresh one.
    pub fn intern(&mut self, name: &str) -> Label {
        if let Some(&l) = self.by_name.get(name) {
            return l;
        }
        self.fresh(name)
    }

    /// Looks up a label by name without allocating.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<Label> {
        self.by_name.get(name).copied()
    }

    /// Returns the name of `label`.
    ///
    /// # Panics
    ///
    /// Panics if `label` was not allocated by this registry.
    #[must_use]
    pub fn name(&self, label: Label) -> &str {
        &self.names[label.0 as usize]
    }

    /// Number of labels allocated so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no labels have been allocated.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over all allocated labels in allocation order.
    pub fn iter(&self) -> impl Iterator<Item = Label> + '_ {
        (0..self.names.len()).map(|i| Label(i as u32))
    }

    /// The stored names in allocation order — the registry's
    /// serialized form. [`LabelRegistry::from_names`] inverts this.
    #[must_use]
    pub fn export_names(&self) -> Vec<String> {
        self.names.clone()
    }

    /// Rebuilds a registry from [`LabelRegistry::export_names`]
    /// output. Stored names are already uniquified, so each maps to
    /// its positional label and lookups behave exactly as in the
    /// exporting registry.
    #[must_use]
    pub fn from_names<I: IntoIterator<Item = String>>(names: I) -> LabelRegistry {
        let mut reg = LabelRegistry::new();
        for name in names {
            let _ = reg.import(&name);
        }
        reg
    }

    /// Appends one *stored* (already-uniquified) name verbatim,
    /// returning its label — the replay path of the persistence
    /// layer. Unlike [`LabelRegistry::fresh`] this never α-renames:
    /// it must reproduce the exporting registry's state bit for bit.
    /// Restoring a label index that is still unallocated here is the
    /// caller's invariant (the meta log records allocations in
    /// order).
    pub fn import(&mut self, stored_name: &str) -> Label {
        let id = u32::try_from(self.names.len()).expect("label space exhausted");
        let label = Label(id);
        self.by_name.insert(stored_name.to_owned(), label);
        self.names.push(stored_name.to_owned());
        label
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_labels_are_distinct_and_ordered() {
        let mut reg = LabelRegistry::new();
        let a = reg.fresh("a");
        let b = reg.fresh("b");
        let c = reg.fresh("a");
        assert!(a < b && b < c);
        assert_ne!(a, c);
        assert_eq!(reg.len(), 3);
    }

    #[test]
    fn intern_reuses_existing_name() {
        let mut reg = LabelRegistry::new();
        let a = reg.intern("x");
        let b = reg.intern("x");
        assert_eq!(a, b);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn fresh_alpha_renames_duplicates() {
        let mut reg = LabelRegistry::new();
        let a = reg.fresh("k");
        let b = reg.fresh("k");
        assert_eq!(reg.name(a), "k");
        assert_eq!(reg.name(b), "k'1");
        assert_eq!(reg.get("k"), Some(a));
    }

    #[test]
    fn index_round_trip() {
        let mut reg = LabelRegistry::new();
        let a = reg.fresh("a");
        assert_eq!(Label::from_index(a.index()), a);
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(format!("{}", Label::from_index(7)), "k7");
        assert_eq!(format!("{:?}", Label::from_index(7)), "k7");
    }

    #[test]
    fn export_import_reproduces_the_registry() {
        let mut reg = LabelRegistry::new();
        let a = reg.fresh("k");
        let b = reg.fresh("k"); // α-renamed to "k'1"
        let c = reg.fresh("other");
        let back = LabelRegistry::from_names(reg.export_names());
        assert_eq!(back.len(), reg.len());
        for l in [a, b, c] {
            assert_eq!(back.name(l), reg.name(l));
        }
        assert_eq!(back.get("k"), Some(a));
        assert_eq!(back.get("k'1"), Some(b));
        // Allocation continues where the original left off, so no
        // restored label index can ever be reused.
        let mut back = back;
        assert_eq!(back.fresh("post-restore").index(), 3);
    }
}
