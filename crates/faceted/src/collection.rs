//! Faceted collections: guarded row sets.
//!
//! The paper deliberately does *not* represent a faceted table as
//! `⟨k ? table T₁ : table T₂⟩` (it would duplicate large tables).
//! Instead a table is a sequence of rows `(B, s)` where the branch set
//! `B` says who can see the row (§4.2). [`FacetedList`] is that
//! representation, generic over the row type, together with the table
//! variant of the `⟨⟨k ? T_H : T_L⟩⟩` join operator including the
//! shared-row optimization.

use std::fmt;
use std::sync::Arc;

use crate::branch::{Branch, Branches};
use crate::label::Label;
use crate::view::View;

/// A faceted collection: rows guarded by branch sets.
///
/// This is simultaneously the runtime representation of a faceted
/// database table and of a faceted query result (a "faceted list").
///
/// # Representation
///
/// The rows live behind an `Arc` with copy-on-write mutation:
/// cloning a list is O(1) and shares storage, which is what lets the
/// FORM's decoded-row cache hand the same unmarshalled table to many
/// concurrent requests without per-row copies. Mutators
/// ([`FacetedList::push`], [`FacetedList::extend_from`], `Extend`)
/// take the slow path — copying the rows first — only when the
/// storage is actually shared.
///
/// # Examples
///
/// ```
/// use faceted::{Branch, Branches, FacetedList, Label, View};
///
/// let k = Label::from_index(0);
/// let mut t = FacetedList::new();
/// t.push(Branches::new().with(Branch::pos(k)), "secret row");
/// t.push(Branches::new(), "public row");
/// assert_eq!(t.project(&View::empty()), vec![&"public row"]);
/// assert_eq!(t.project(&View::from_labels([k])).len(), 2);
/// ```
#[derive(PartialEq, Eq, Hash)]
pub struct FacetedList<T> {
    rows: Arc<Vec<(Branches, T)>>,
}

// Manual impls: the derives would wrongly require `T: Default` /
// `T: Clone` (the `Arc` clones without cloning rows).
impl<T> Default for FacetedList<T> {
    fn default() -> FacetedList<T> {
        FacetedList {
            rows: Arc::new(Vec::new()),
        }
    }
}

impl<T> Clone for FacetedList<T> {
    fn clone(&self) -> FacetedList<T> {
        FacetedList {
            rows: Arc::clone(&self.rows),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for FacetedList<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list()
            .entries(self.rows.iter().map(|(b, r)| (b, r)))
            .finish()
    }
}

impl<T> FacetedList<T> {
    /// Creates an empty collection.
    #[must_use]
    pub fn new() -> FacetedList<T> {
        FacetedList::default()
    }

    /// Creates a collection of unguarded (public) rows.
    pub fn from_public<I: IntoIterator<Item = T>>(rows: I) -> FacetedList<T> {
        FacetedList {
            rows: Arc::new(rows.into_iter().map(|r| (Branches::new(), r)).collect()),
        }
    }

    /// Number of physical rows (across all facets).
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the collection stores no rows at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Iterates over `(guard, row)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Branches, &T)> {
        self.rows.iter().map(|(b, r)| (b, r))
    }

    /// The `(guard, row)` pair at physical position `ix` — used by
    /// index-planned queries to address a decoded snapshot by the
    /// physical row positions the planner returned.
    ///
    /// # Panics
    ///
    /// Panics if `ix` is out of bounds.
    #[must_use]
    pub fn row(&self, ix: usize) -> (&Branches, &T) {
        let (b, r) = &self.rows[ix];
        (b, r)
    }

    /// Whether this list shares row storage with another (both are
    /// clones of the same underlying rows — the decode cache's
    /// zero-copy fast path).
    #[must_use]
    pub fn shares_rows_with(&self, other: &FacetedList<T>) -> bool {
        Arc::ptr_eq(&self.rows, &other.rows)
    }

    /// The rows visible to view `L` — the paper's
    /// `L(table T) = {(∅, s) | (B, s) ∈ T, B ∼ L}`.
    #[must_use]
    pub fn project(&self, view: &View) -> Vec<&T> {
        self.rows
            .iter()
            .filter(|(b, _)| b.visible_to(view))
            .map(|(_, r)| r)
            .collect()
    }

    /// Early Pruning (`F-PRUNE`, §4.4): keeps only rows whose guard is
    /// consistent with the program counter `pc`. When every row
    /// survives, the result *shares* this list's storage (no copy) —
    /// the common case for an unconstrained request.
    #[must_use]
    pub fn prune(&self, pc: &Branches) -> FacetedList<T>
    where
        T: Clone,
    {
        if self.rows.iter().all(|(b, _)| b.consistent_with(pc)) {
            return self.clone();
        }
        FacetedList {
            rows: Arc::new(
                self.rows
                    .iter()
                    .filter(|(b, _)| b.consistent_with(pc))
                    .cloned()
                    .collect(),
            ),
        }
    }

    /// Every label mentioned by any row guard.
    #[must_use]
    pub fn labels(&self) -> Vec<Label> {
        let mut out: Vec<Label> = self
            .rows
            .iter()
            .flat_map(|(b, _)| b.labels().collect::<Vec<_>>())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Maps the row type, keeping guards.
    #[must_use]
    pub fn map_rows<U>(&self, mut f: impl FnMut(&T) -> U) -> FacetedList<U> {
        FacetedList {
            rows: Arc::new(self.rows.iter().map(|(b, r)| (b.clone(), f(r))).collect()),
        }
    }

    /// Filters physical rows by a predicate on the row payload,
    /// keeping guards (faceted `WHERE`: because secret and public
    /// facets are separate rows, plain filtering is already
    /// flow-correct — §3.1.1).
    #[must_use]
    pub fn filter_rows(&self, mut pred: impl FnMut(&T) -> bool) -> FacetedList<T>
    where
        T: Clone,
    {
        FacetedList {
            rows: Arc::new(self.rows.iter().filter(|(_, r)| pred(r)).cloned().collect()),
        }
    }
}

impl<T: Clone> FacetedList<T> {
    /// Appends a guarded row (copy-on-write: clones the storage first
    /// if it is shared).
    pub fn push(&mut self, guard: Branches, row: T) {
        Arc::make_mut(&mut self.rows).push((guard, row));
    }

    /// Replaces the `(guard, row)` pair at physical position `ix`
    /// (copy-on-write, like [`FacetedList::push`]) — the in-place
    /// patch used when a cached decoded snapshot is repaired from a
    /// table's change deltas instead of rebuilt.
    ///
    /// # Panics
    ///
    /// Panics if `ix` is out of bounds.
    pub fn replace_row(&mut self, ix: usize, guard: Branches, row: T) {
        Arc::make_mut(&mut self.rows)[ix] = (guard, row);
    }

    /// Removes the row at physical position `ix`, shifting later rows
    /// up (copy-on-write). Callers removing several positions must go
    /// in descending order so earlier indices stay valid.
    ///
    /// # Panics
    ///
    /// Panics if `ix` is out of bounds.
    pub fn remove_row(&mut self, ix: usize) {
        Arc::make_mut(&mut self.rows).remove(ix);
    }

    /// Consumes the collection, yielding its `(guard, row)` pairs
    /// (cloning them only if the storage is shared).
    #[must_use]
    pub fn into_rows(self) -> Vec<(Branches, T)> {
        Arc::try_unwrap(self.rows).unwrap_or_else(|shared| (*shared).clone())
    }

    /// Appends another collection (the `F-UNION` rule: plain
    /// concatenation of guarded rows).
    pub fn extend_from(&mut self, other: FacetedList<T>) {
        Arc::make_mut(&mut self.rows).extend(other.into_rows());
    }
}

impl<T: Clone + Ord> FacetedList<T> {
    /// The table variant of `⟨⟨k ? T_H : T_L⟩⟩` (§4.2), with the
    /// shared-row optimization:
    ///
    /// * rows present in both sides are stored once, unguarded by `k`;
    /// * rows only in the high side gain branch `k` (unless they
    ///   already carry `¬k`, in which case no view could see them);
    /// * rows only in the low side gain `¬k` symmetrically.
    #[must_use]
    pub fn facet_join(label: Label, high: &FacetedList<T>, low: &FacetedList<T>) -> FacetedList<T> {
        // Multiset intersection by sort-merge over (guard, row) pairs.
        let mut hi: Vec<(Branches, T)> = (*high.rows).clone();
        let mut lo: Vec<(Branches, T)> = (*low.rows).clone();
        hi.sort();
        lo.sort();
        let mut shared: Vec<(Branches, T)> = Vec::new();
        let mut only_high: Vec<(Branches, T)> = Vec::new();
        let mut only_low: Vec<(Branches, T)> = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < hi.len() && j < lo.len() {
            match hi[i].cmp(&lo[j]) {
                std::cmp::Ordering::Equal => {
                    shared.push(hi[i].clone());
                    i += 1;
                    j += 1;
                }
                std::cmp::Ordering::Less => {
                    only_high.push(hi[i].clone());
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    only_low.push(lo[j].clone());
                    j += 1;
                }
            }
        }
        only_high.extend_from_slice(&hi[i..]);
        only_low.extend_from_slice(&lo[j..]);

        let mut rows = shared;
        for (b, r) in only_high {
            if !b.contains(Branch::neg(label)) {
                rows.push((b.with(Branch::pos(label)), r));
            }
        }
        for (b, r) in only_low {
            if !b.contains(Branch::pos(label)) {
                rows.push((b.with(Branch::neg(label)), r));
            }
        }
        FacetedList {
            rows: Arc::new(rows),
        }
    }

    /// N-ary `⟨⟨B ? T_H : T_L⟩⟩`, folding [`FacetedList::facet_join`]
    /// over the branch set exactly as the scalar operator does.
    #[must_use]
    pub fn facet_join_branches(
        branches: &Branches,
        high: &FacetedList<T>,
        low: &FacetedList<T>,
    ) -> FacetedList<T> {
        let mut acc = high.clone();
        for b in branches.iter().rev() {
            acc = if b.is_positive() {
                FacetedList::facet_join(b.label(), &acc, low)
            } else {
                FacetedList::facet_join(b.label(), low, &acc)
            };
        }
        acc
    }
}

impl<T> FromIterator<(Branches, T)> for FacetedList<T> {
    fn from_iter<I: IntoIterator<Item = (Branches, T)>>(iter: I) -> FacetedList<T> {
        FacetedList {
            rows: Arc::new(iter.into_iter().collect()),
        }
    }
}

impl<T: Clone> IntoIterator for FacetedList<T> {
    type Item = (Branches, T);
    type IntoIter = std::vec::IntoIter<(Branches, T)>;

    fn into_iter(self) -> Self::IntoIter {
        self.into_rows().into_iter()
    }
}

impl<T: Clone> Extend<(Branches, T)> for FacetedList<T> {
    fn extend<I: IntoIterator<Item = (Branches, T)>>(&mut self, iter: I) {
        Arc::make_mut(&mut self.rows).extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(i: u32) -> Label {
        Label::from_index(i)
    }

    fn guarded(b: &[Branch], row: &str) -> (Branches, String) {
        (Branches::from_iter(b.iter().copied()), row.to_owned())
    }

    #[test]
    fn paper_example_alice_bob() {
        // ⟨k ? row "Alice" "Smith" : row "Bob" "Jones"⟩ becomes
        //   ({k}, Alice Smith) ; ({¬k}, Bob Jones)
        let high = FacetedList::from_public(["Alice Smith".to_owned()]);
        let low = FacetedList::from_public(["Bob Jones".to_owned()]);
        let t = FacetedList::facet_join(k(0), &high, &low);
        assert_eq!(t.len(), 2);
        assert_eq!(t.project(&View::from_labels([k(0)])), vec!["Alice Smith"]);
        assert_eq!(t.project(&View::empty()), vec!["Bob Jones"]);
    }

    #[test]
    fn shared_rows_are_not_duplicated() {
        let common = guarded(&[], "common");
        let high: FacetedList<String> = [common.clone(), guarded(&[], "secret")]
            .into_iter()
            .collect();
        let low: FacetedList<String> = [common].into_iter().collect();
        let t = FacetedList::facet_join(k(0), &high, &low);
        // "common" kept once unguarded, "secret" guarded by k.
        assert_eq!(t.len(), 2);
        let public = t.project(&View::empty());
        assert_eq!(public, vec!["common"]);
        let mut secret = t.project(&View::from_labels([k(0)]));
        secret.sort();
        assert_eq!(secret, vec!["common", "secret"]);
    }

    #[test]
    fn contradictory_rows_are_dropped_by_join() {
        // A high-side row already carrying ¬k can never be seen on the
        // high side; the paper's definition omits it.
        let high: FacetedList<String> = [guarded(&[Branch::neg(k(0))], "ghost")]
            .into_iter()
            .collect();
        let t = FacetedList::facet_join(k(0), &high, &FacetedList::new());
        assert!(t.is_empty());
    }

    #[test]
    fn facet_join_branches_multi() {
        let high = FacetedList::from_public(["secret".to_owned()]);
        let low = FacetedList::from_public(["public".to_owned()]);
        let b = Branches::from_iter([Branch::pos(k(0)), Branch::neg(k(1))]);
        let t = FacetedList::facet_join_branches(&b, &high, &low);
        assert_eq!(t.project(&View::from_labels([k(0)])), vec!["secret"]);
        assert_eq!(t.project(&View::from_labels([k(0), k(1)])), vec!["public"]);
        assert_eq!(t.project(&View::empty()), vec!["public"]);
    }

    #[test]
    fn prune_keeps_consistent_rows() {
        let t: FacetedList<String> = [
            guarded(&[Branch::pos(k(0))], "high"),
            guarded(&[Branch::neg(k(0))], "low"),
            guarded(&[], "both"),
        ]
        .into_iter()
        .collect();
        let pc = Branches::new().with(Branch::pos(k(0)));
        let pruned = t.prune(&pc);
        assert_eq!(pruned.len(), 2);
        let mut rows = pruned.project(&View::from_labels([k(0)]));
        rows.sort();
        assert_eq!(rows, vec!["both", "high"]);
    }

    #[test]
    fn filter_preserves_guards() {
        let t: FacetedList<i32> = [
            (Branches::new().with(Branch::pos(k(0))), 10),
            (Branches::new().with(Branch::neg(k(0))), 5),
        ]
        .into_iter()
        .collect();
        let big = t.filter_rows(|v| *v > 7);
        assert_eq!(big.len(), 1);
        assert!(big.project(&View::empty()).is_empty());
        assert_eq!(big.project(&View::from_labels([k(0)])), vec![&10]);
    }

    #[test]
    fn clones_share_storage_until_mutation() {
        let mut a: FacetedList<String> =
            [guarded(&[], "x"), guarded(&[], "y")].into_iter().collect();
        let b = a.clone();
        assert!(a.shares_rows_with(&b), "clone is O(1), storage shared");
        // A full-survivor prune also shares.
        let pruned = a.prune(&Branches::new());
        assert!(pruned.shares_rows_with(&a));
        // Mutation copies-on-write: `b` is unaffected.
        a.push(Branches::new(), "z".to_owned());
        assert!(!a.shares_rows_with(&b));
        assert_eq!(a.len(), 3);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn labels_collects_all_guards() {
        let t: FacetedList<String> = [
            guarded(&[Branch::pos(k(2))], "a"),
            guarded(&[Branch::neg(k(1))], "b"),
        ]
        .into_iter()
        .collect();
        assert_eq!(t.labels(), vec![k(1), k(2)]);
    }
}
