//! The hash-consed node store behind [`Faceted`](crate::Faceted).
//!
//! Faceted values used to be ad-hoc `Rc` trees: canonical by
//! construction, but re-canonicalized with `O(size)` structural
//! equality on every operation and pinned to a single thread. This
//! module replaces that representation with the architecture of a
//! production BDD package:
//!
//! * **Unique table** — every canonical node (leaf or split) is
//!   interned exactly once per process, so two faceted values are
//!   semantically equal *iff* they share the same node; `PartialEq`
//!   degenerates to an id comparison and identical sub-computations
//!   share storage automatically.
//! * **Computed tables** — the results of the canonicalizing
//!   operations (`ite`, `assume`) are memoized on node ids, turning
//!   the worst-case exponential re-canonicalization walks into cache
//!   hits whenever facet trees share structure (which hash-consing
//!   makes pervasive: a faceted row count over `n` guarded rows
//!   collapses from a `2^n`-leaf tree to an `O(n²)`-node DAG).
//! * **Thread safety** — the store is `Arc`-backed and sharded behind
//!   reader-writer locks, so `Faceted<T>` is `Send + Sync` and the
//!   concurrent request executor in the `jacqueline` crate can share
//!   faceted state across worker threads.
//!
//! One store exists per leaf type `T` (keyed by `TypeId`); stores live
//! for the lifetime of the process. Memoization can be toggled with
//! [`set_memoization`] (used by the `experiments` harness to measure
//! its effect) and per-type statistics are available via
//! [`intern_stats`]. [`collect_garbage`] drops nodes no longer
//! referenced outside the store.

use std::any::{Any, TypeId};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock, RwLockWriteGuard};

use crate::label::Label;
use crate::value::{Faceted, Node, NodeKind};

/// The bounds a leaf type must satisfy to live in a faceted value.
///
/// Hash-consing needs `Eq + Hash` to intern leaves, and the shared
/// store needs `Send + Sync + 'static` so faceted values can cross
/// threads. The trait is blanket-implemented; you never implement it
/// by hand.
pub trait Facet: Clone + Eq + Hash + Send + Sync + 'static {}

impl<T: Clone + Eq + Hash + Send + Sync + 'static> Facet for T {}

/// Number of independently locked shards per store. A small power of
/// two: enough to keep executor worker threads from serializing on
/// one lock, small enough that `collect_garbage` can hold every shard.
const SHARD_COUNT: usize = 16;

/// Process-wide allocator for node ids (shared across all leaf types;
/// uniqueness is all that matters).
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// Global switch for the computed tables (the unique table is *not*
/// optional — correctness of pointer equality depends on it).
static MEMO_ENABLED: AtomicBool = AtomicBool::new(true);

/// Enables or disables operation memoization (`ite`/`assume` computed
/// tables). Interning itself always stays on. Returns the previous
/// setting. Intended for benchmarking the memo contribution, not for
/// production use.
pub fn set_memoization(enabled: bool) -> bool {
    MEMO_ENABLED.swap(enabled, Ordering::Relaxed)
}

/// Whether operation memoization is currently enabled.
#[must_use]
pub fn memoization_enabled() -> bool {
    MEMO_ENABLED.load(Ordering::Relaxed)
}

/// Counters describing one leaf type's node store.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct InternStats {
    /// Distinct interned leaves.
    pub leaves: usize,
    /// Distinct interned split nodes.
    pub splits: usize,
    /// Entries currently held by the `ite`/`assume` computed tables.
    pub memo_entries: usize,
    /// Computed-table hits since process start.
    pub memo_hits: u64,
    /// Computed-table misses since process start.
    pub memo_misses: u64,
}

/// Statistics for the store of leaf type `T`.
#[must_use]
pub fn intern_stats<T: Facet>() -> InternStats {
    let store = store_of::<T>();
    let mut stats = InternStats {
        memo_hits: store.memo_hits.load(Ordering::Relaxed),
        memo_misses: store.memo_misses.load(Ordering::Relaxed),
        ..InternStats::default()
    };
    for shard in &store.shards {
        let s = shard.read().expect("faceted store poisoned");
        stats.leaves += s.leaves.len();
        stats.splits += s.splits.len();
        stats.memo_entries += s.ite.len() + s.assume.len();
    }
    stats
}

/// Drops every node of leaf type `T` that is no longer referenced by
/// any live [`Faceted`] value, clearing the computed tables first
/// (they pin nodes). Returns the number of nodes reclaimed.
///
/// This is the explicit-GC model of classic BDD packages: callers
/// with long-lived processes (e.g. a request executor between load
/// phases) invoke it at quiescent points.
pub fn collect_garbage<T: Facet>() -> usize {
    let store = store_of::<T>();
    // Hold every shard for the whole sweep so no thread can re-intern
    // a node we are about to drop.
    let mut guards: Vec<RwLockWriteGuard<'_, Shard<T>>> = store
        .shards
        .iter()
        .map(|s| s.write().expect("faceted store poisoned"))
        .collect();
    for g in &mut guards {
        g.ite.clear();
        g.assume.clear();
    }
    let mut reclaimed = 0;
    loop {
        let mut dropped = 0;
        for g in &mut guards {
            // A strong count of 1 means the unique table holds the only
            // reference: no external `Faceted` and no parent node (a
            // parent split would hold a second strong reference).
            let before = g.splits.len() + g.leaves.len();
            g.splits.retain(|_, f| Arc::strong_count(&f.0) > 1);
            g.leaves.retain(|_, f| Arc::strong_count(&f.0) > 1);
            dropped += before - (g.splits.len() + g.leaves.len());
        }
        if dropped == 0 {
            break;
        }
        reclaimed += dropped;
    }
    reclaimed
}

/// Key of the unique table for split nodes and of the `ite` computed
/// table: `(label, high id, low id)`.
type SplitKey = (Label, u64, u64);

pub(crate) struct Store<T: Facet> {
    shards: Vec<RwLock<Shard<T>>>,
    memo_hits: AtomicU64,
    memo_misses: AtomicU64,
}

struct Shard<T: Facet> {
    /// Unique table, leaf nodes.
    leaves: HashMap<T, Faceted<T>>,
    /// Unique table, split nodes.
    splits: HashMap<SplitKey, Faceted<T>>,
    /// Computed table for `ite`.
    ite: HashMap<SplitKey, Faceted<T>>,
    /// Computed table for `assume`: `(node, label, polarity)`.
    assume: HashMap<(u64, Label, bool), Faceted<T>>,
}

impl<T: Facet> Default for Shard<T> {
    fn default() -> Shard<T> {
        Shard {
            leaves: HashMap::new(),
            splits: HashMap::new(),
            ite: HashMap::new(),
            assume: HashMap::new(),
        }
    }
}

fn shard_index<K: Hash>(key: &K) -> usize {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() as usize) % SHARD_COUNT
}

fn fresh_id() -> u64 {
    NEXT_ID.fetch_add(1, Ordering::Relaxed)
}

impl<T: Facet> Store<T> {
    fn new() -> Store<T> {
        Store {
            shards: (0..SHARD_COUNT)
                .map(|_| RwLock::new(Shard::default()))
                .collect(),
            memo_hits: AtomicU64::new(0),
            memo_misses: AtomicU64::new(0),
        }
    }

    /// Interns a leaf, returning the canonical node for `value`.
    pub(crate) fn leaf(&self, value: T) -> Faceted<T> {
        let shard = &self.shards[shard_index(&value)];
        if let Some(hit) = shard
            .read()
            .expect("faceted store poisoned")
            .leaves
            .get(&value)
        {
            return hit.clone();
        }
        let mut s = shard.write().expect("faceted store poisoned");
        if let Some(hit) = s.leaves.get(&value) {
            return hit.clone();
        }
        let node = Faceted(Arc::new(Node {
            id: fresh_id(),
            kind: NodeKind::Leaf(value.clone()),
        }));
        s.leaves.insert(value, node.clone());
        node
    }

    /// Interns a split node. Callers guarantee canonical preconditions:
    /// `high != low` and `label` strictly below every label in either
    /// child.
    pub(crate) fn split(&self, label: Label, high: &Faceted<T>, low: &Faceted<T>) -> Faceted<T> {
        debug_assert!(high != low, "canonical splits have distinct children");
        let key: SplitKey = (label, high.node_id(), low.node_id());
        let shard = &self.shards[shard_index(&key)];
        if let Some(hit) = shard
            .read()
            .expect("faceted store poisoned")
            .splits
            .get(&key)
        {
            return hit.clone();
        }
        let mut s = shard.write().expect("faceted store poisoned");
        if let Some(hit) = s.splits.get(&key) {
            return hit.clone();
        }
        let node = Faceted(Arc::new(Node {
            id: fresh_id(),
            kind: NodeKind::Split {
                label,
                high: high.clone(),
                low: low.clone(),
            },
        }));
        s.splits.insert(key, node.clone());
        node
    }

    pub(crate) fn ite_cached(&self, key: SplitKey) -> Option<Faceted<T>> {
        if !memoization_enabled() {
            return None;
        }
        let shard = &self.shards[shard_index(&key)];
        let hit = shard
            .read()
            .expect("faceted store poisoned")
            .ite
            .get(&key)
            .cloned();
        self.count(hit.is_some());
        hit
    }

    pub(crate) fn ite_insert(&self, key: SplitKey, value: Faceted<T>) {
        if !memoization_enabled() {
            return;
        }
        let shard = &self.shards[shard_index(&key)];
        shard
            .write()
            .expect("faceted store poisoned")
            .ite
            .insert(key, value);
    }

    pub(crate) fn assume_cached(&self, key: (u64, Label, bool)) -> Option<Faceted<T>> {
        if !memoization_enabled() {
            return None;
        }
        let shard = &self.shards[shard_index(&key)];
        let hit = shard
            .read()
            .expect("faceted store poisoned")
            .assume
            .get(&key)
            .cloned();
        self.count(hit.is_some());
        hit
    }

    pub(crate) fn assume_insert(&self, key: (u64, Label, bool), value: Faceted<T>) {
        if !memoization_enabled() {
            return;
        }
        let shard = &self.shards[shard_index(&key)];
        shard
            .write()
            .expect("faceted store poisoned")
            .assume
            .insert(key, value);
    }

    fn count(&self, hit: bool) {
        if hit {
            self.memo_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.memo_misses.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// The per-process registry of stores, one per leaf type.
static STORES: OnceLock<RwLock<HashMap<TypeId, Arc<dyn Any + Send + Sync>>>> = OnceLock::new();

/// The (lazily created) store for leaf type `T`.
pub(crate) fn store_of<T: Facet>() -> Arc<Store<T>> {
    let registry = STORES.get_or_init(|| RwLock::new(HashMap::new()));
    if let Some(store) = registry
        .read()
        .expect("faceted store registry poisoned")
        .get(&TypeId::of::<T>())
    {
        return Arc::clone(store)
            .downcast::<Store<T>>()
            .expect("store registered under its own TypeId");
    }
    let mut reg = registry.write().expect("faceted store registry poisoned");
    let entry = reg
        .entry(TypeId::of::<T>())
        .or_insert_with(|| Arc::new(Store::<T>::new()));
    Arc::clone(entry)
        .downcast::<Store<T>>()
        .expect("store registered under its own TypeId")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interned_leaves_are_shared() {
        let a = Faceted::leaf(417_i32);
        let b = Faceted::leaf(417_i32);
        assert_eq!(a.node_id(), b.node_id());
        assert_ne!(a.node_id(), Faceted::leaf(418_i32).node_id());
    }

    #[test]
    fn stats_track_interning() {
        let _ = Faceted::leaf("intern-stats-probe");
        let s = intern_stats::<&'static str>();
        assert!(s.leaves >= 1);
    }

    #[test]
    fn memo_toggle_round_trips() {
        let was = set_memoization(false);
        assert!(!memoization_enabled());
        set_memoization(was);
        assert_eq!(memoization_enabled(), was);
    }

    #[test]
    fn garbage_collection_reclaims_dead_nodes() {
        // A dedicated leaf type so other tests cannot pin our nodes.
        #[derive(Clone, PartialEq, Eq, Hash)]
        struct GcProbe(u64);
        {
            let _v = Faceted::split(
                Label::from_index(0),
                Faceted::leaf(GcProbe(1)),
                Faceted::leaf(GcProbe(2)),
            );
            assert!(intern_stats::<GcProbe>().leaves >= 2);
        }
        let reclaimed = collect_garbage::<GcProbe>();
        assert!(reclaimed >= 3, "two leaves and a split were dead");
        assert_eq!(intern_stats::<GcProbe>().leaves, 0);
    }
}
