//! Branches and branch sets (program counters / row guards).
//!
//! A [`Branch`] is a label or its negation (`k` / `¬k`). A [`Branches`]
//! value is a set of branches, used both as the program counter `pc` of
//! faceted execution and as the guard `B` attached to each database row
//! in a faceted table. Consistency and visibility are exactly the
//! paper's definitions (§4.2–4.3).

use std::collections::BTreeSet;
use std::fmt;

use crate::label::Label;
use crate::view::View;

/// A single branch: a label `k` (positive) or its negation `¬k`.
///
/// # Examples
///
/// ```
/// use faceted::{Branch, Label};
///
/// let k = Label::from_index(0);
/// assert_eq!(Branch::pos(k).negate(), Branch::neg(k));
/// assert!(Branch::pos(k).is_positive());
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Branch {
    label: Label,
    positive: bool,
}

impl Branch {
    /// The positive branch `k`.
    #[must_use]
    pub fn pos(label: Label) -> Branch {
        Branch {
            label,
            positive: true,
        }
    }

    /// The negative branch `¬k`.
    #[must_use]
    pub fn neg(label: Label) -> Branch {
        Branch {
            label,
            positive: false,
        }
    }

    /// The label this branch constrains.
    #[must_use]
    pub fn label(self) -> Label {
        self.label
    }

    /// Whether this is the positive branch `k` (as opposed to `¬k`).
    #[must_use]
    pub fn is_positive(self) -> bool {
        self.positive
    }

    /// `k` ↦ `¬k` and vice versa.
    #[must_use]
    pub fn negate(self) -> Branch {
        Branch {
            label: self.label,
            positive: !self.positive,
        }
    }

    /// Whether a view `L` satisfies this branch: `k` requires `k ∈ L`,
    /// `¬k` requires `k ∉ L`.
    #[must_use]
    pub fn holds_in(self, view: &View) -> bool {
        view.sees(self.label) == self.positive
    }
}

impl fmt::Debug for Branch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.positive {
            write!(f, "{:?}", self.label)
        } else {
            write!(f, "¬{:?}", self.label)
        }
    }
}

impl fmt::Display for Branch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A set of branches: the program counter `pc` of faceted execution, or
/// the guard `B` of a faceted table row.
///
/// The set may be *inconsistent* (contain both `k` and `¬k`); such a
/// guard denotes a row visible to no principal, which arises naturally
/// from joins (`F-JOIN` unions the guards of both operands).
///
/// # Examples
///
/// ```
/// use faceted::{Branch, Branches, Label};
///
/// let k = Label::from_index(0);
/// let pc = Branches::new().with(Branch::pos(k));
/// assert!(pc.contains(Branch::pos(k)));
/// assert!(!pc.consistent_with(&Branches::new().with(Branch::neg(k))));
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Branches(BTreeSet<Branch>);

impl Branches {
    /// The empty branch set (the initial program counter `∅`).
    #[must_use]
    pub fn new() -> Branches {
        Branches::default()
    }

    /// Returns `self ∪ {b}` (functional update, used when extending the
    /// program counter in `F-SPLIT`).
    #[must_use]
    pub fn with(&self, b: Branch) -> Branches {
        let mut s = self.0.clone();
        s.insert(b);
        Branches(s)
    }

    /// Inserts a branch in place.
    pub fn insert(&mut self, b: Branch) {
        self.0.insert(b);
    }

    /// Returns `self ∪ other`.
    #[must_use]
    pub fn union(&self, other: &Branches) -> Branches {
        Branches(self.0.union(&other.0).copied().collect())
    }

    /// Whether the branch `b` is in the set.
    #[must_use]
    pub fn contains(&self, b: Branch) -> bool {
        self.0.contains(&b)
    }

    /// Whether this set constrains `label` at all (positively or
    /// negatively).
    #[must_use]
    pub fn mentions(&self, label: Label) -> bool {
        self.0.contains(&Branch::pos(label)) || self.0.contains(&Branch::neg(label))
    }

    /// Returns the polarity this set assigns to `label`, if any.
    ///
    /// Returns `None` if the label is unmentioned *or* mentioned with
    /// both polarities (an internally inconsistent guard).
    #[must_use]
    pub fn polarity_of(&self, label: Label) -> Option<bool> {
        match (
            self.contains(Branch::pos(label)),
            self.contains(Branch::neg(label)),
        ) {
            (true, false) => Some(true),
            (false, true) => Some(false),
            _ => None,
        }
    }

    /// Whether the set itself is consistent (never contains both `k`
    /// and `¬k`).
    #[must_use]
    pub fn is_consistent(&self) -> bool {
        self.0
            .iter()
            .filter(|b| b.is_positive())
            .all(|b| !self.0.contains(&b.negate()))
    }

    /// The paper's "B consistent with pc": no label appears with
    /// opposite polarity in the two sets, and neither set is internally
    /// contradictory.
    ///
    /// Used by `F-FOLD-CONSISTENT` / `F-FOLD-INCONSISTENT` and by the
    /// Early Pruning rule `F-PRUNE`.
    #[must_use]
    pub fn consistent_with(&self, other: &Branches) -> bool {
        if !self.is_consistent() || !other.is_consistent() {
            return false;
        }
        self.0.iter().all(|b| !other.0.contains(&b.negate()))
    }

    /// The paper's visibility relation `B ∼ L`: every positive branch's
    /// label is in the view, every negative branch's label is not.
    #[must_use]
    pub fn visible_to(&self, view: &View) -> bool {
        self.0.iter().all(|b| b.holds_in(view))
    }

    /// Number of branches in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterates over the branches in label order. The iterator is
    /// double-ended, so consumers that fold right-to-left (e.g. the
    /// `⟨⟨B ? · : ·⟩⟩` constructors) can `.rev()` without collecting.
    pub fn iter(&self) -> impl DoubleEndedIterator<Item = Branch> + '_ {
        self.0.iter().copied()
    }

    /// The set of labels mentioned by this branch set.
    pub fn labels(&self) -> impl Iterator<Item = Label> + '_ {
        self.0.iter().map(|b| b.label())
    }
}

impl FromIterator<Branch> for Branches {
    fn from_iter<I: IntoIterator<Item = Branch>>(iter: I) -> Branches {
        Branches(iter.into_iter().collect())
    }
}

impl Extend<Branch> for Branches {
    fn extend<I: IntoIterator<Item = Branch>>(&mut self, iter: I) {
        self.0.extend(iter);
    }
}

impl fmt::Debug for Branches {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, b) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{b:?}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(i: u32) -> Label {
        Label::from_index(i)
    }

    #[test]
    fn branch_negation_involutive() {
        let b = Branch::pos(k(3));
        assert_eq!(b.negate().negate(), b);
    }

    #[test]
    fn empty_pc_is_consistent_with_everything() {
        let pc = Branches::new();
        let b = Branches::from_iter([Branch::pos(k(0)), Branch::neg(k(1))]);
        assert!(pc.consistent_with(&b));
        assert!(b.consistent_with(&pc));
    }

    #[test]
    fn opposite_polarities_are_inconsistent() {
        let a = Branches::new().with(Branch::pos(k(0)));
        let b = Branches::new().with(Branch::neg(k(0)));
        assert!(!a.consistent_with(&b));
        assert!(a.consistent_with(&a));
    }

    #[test]
    fn internally_contradictory_guard_is_inconsistent_with_all() {
        let bad = Branches::from_iter([Branch::pos(k(0)), Branch::neg(k(0))]);
        assert!(!bad.is_consistent());
        assert!(!bad.consistent_with(&Branches::new()));
        assert!(!Branches::new().consistent_with(&bad));
    }

    #[test]
    fn visibility_matches_polarity() {
        let view = View::from_labels([k(0)]);
        let pos = Branches::new().with(Branch::pos(k(0)));
        let neg = Branches::new().with(Branch::neg(k(0)));
        assert!(pos.visible_to(&view));
        assert!(!neg.visible_to(&view));
        let other = Branches::new().with(Branch::neg(k(1)));
        assert!(other.visible_to(&view));
    }

    #[test]
    fn union_and_mentions() {
        let a = Branches::new().with(Branch::pos(k(0)));
        let b = Branches::new().with(Branch::neg(k(1)));
        let u = a.union(&b);
        assert_eq!(u.len(), 2);
        assert!(u.mentions(k(0)) && u.mentions(k(1)) && !u.mentions(k(2)));
        assert_eq!(u.polarity_of(k(0)), Some(true));
        assert_eq!(u.polarity_of(k(1)), Some(false));
        assert_eq!(u.polarity_of(k(2)), None);
    }

    #[test]
    fn polarity_of_contradictory_label_is_none() {
        let bad = Branches::from_iter([Branch::pos(k(0)), Branch::neg(k(0))]);
        assert_eq!(bad.polarity_of(k(0)), None);
    }
}
