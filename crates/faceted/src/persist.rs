//! A stable on-disk encoding of interned facet DAGs.
//!
//! The interner ([`crate::intern`]) makes every canonical node unique
//! *within one process*; node ids are allocation order and mean
//! nothing outside it. This module gives facet DAGs a process-
//! independent form: a **topologically ordered node table** in which
//! entry `i` is either a leaf (its payload encoded by the caller) or a
//! split whose children are table indices strictly less than `i`,
//! plus the root indices of the exported values. Importing re-interns
//! every entry bottom-up through the ordinary canonical constructors,
//! so the hash-consing invariants (pointer-eq ⟺ view-eq, shared
//! sub-structure stored once) hold for restored values exactly as
//! they do for freshly built ones — export → import → export is a
//! fixpoint, and the imported DAG has the same node count as the
//! exported one.
//!
//! Leaf payloads are opaque single-line strings supplied by caller
//! codecs ([`export_nodes`] takes an encoder, [`import_nodes`] a
//! decoder), so this crate stays independent of any particular leaf
//! type's serialization. The text format is line-oriented:
//!
//! ```text
//! facets v1 <entries> <roots>
//! L <payload…to end of line>
//! S <label-index> <high-index> <low-index>
//! R <root-index> <root-index> …
//! ```
//!
//! Payloads are escaped (`\\`, `\n`, `\r`) so a leaf can never break
//! the line framing.

use std::collections::HashMap;
use std::fmt;

use crate::intern::Facet;
use crate::label::Label;
use crate::value::{Faceted, NodeKind};

/// One row of the serialized node table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NodeEntry {
    /// A leaf, as the caller's encoded payload.
    Leaf(String),
    /// A split `⟨label ? high : low⟩`; children are indices of
    /// *earlier* table entries (the topological-order invariant).
    Split {
        /// The guarding label's index ([`Label::index`]).
        label: u32,
        /// Table index of the high (authorized) child.
        high: u32,
        /// Table index of the low (public) child.
        low: u32,
    },
}

/// A serialized set of facet DAGs: the node table plus the indices of
/// the exported roots (in export order, so callers can keep
/// root-to-object associations positional).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NodeTable {
    /// Topologically ordered nodes: children strictly before parents.
    pub entries: Vec<NodeEntry>,
    /// Indices of the exported roots, aligned with the `roots` slice
    /// given to [`export_nodes`].
    pub roots: Vec<u32>,
}

/// Errors raised while decoding a [`NodeTable`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PersistError {
    /// A split or root referenced an entry at or after itself (the
    /// table is not topologically ordered) or past the end.
    BadIndex(u32),
    /// The caller's leaf decoder rejected a payload.
    BadLeaf(String),
    /// The text form was malformed.
    BadFormat(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::BadIndex(i) => write!(f, "node index {i} out of topological order"),
            PersistError::BadLeaf(s) => write!(f, "undecodable leaf payload {s:?}"),
            PersistError::BadFormat(s) => write!(f, "malformed node table: {s}"),
        }
    }
}

impl std::error::Error for PersistError {}

/// Exports the facet DAGs reachable from `roots` as a topologically
/// ordered node table. Shared sub-structure is exported **once**: the
/// walk memoizes on interned node ids, so the table has exactly one
/// entry per distinct node — the on-disk form preserves the DAG
/// sharing the interner established in memory.
pub fn export_nodes<T: Facet>(
    roots: &[Faceted<T>],
    mut encode: impl FnMut(&T) -> String,
) -> NodeTable {
    let mut table = NodeTable::default();
    let mut index_of: HashMap<u64, u32> = HashMap::new();
    for root in roots {
        let ix = export_walk(root, &mut encode, &mut table.entries, &mut index_of);
        table.roots.push(ix);
    }
    table
}

/// Post-order DFS (iterative, so deep facet chains cannot overflow
/// the stack): children are emitted before their parent, which *is*
/// the topological order the format promises.
fn export_walk<T: Facet>(
    root: &Faceted<T>,
    encode: &mut impl FnMut(&T) -> String,
    entries: &mut Vec<NodeEntry>,
    index_of: &mut HashMap<u64, u32>,
) -> u32 {
    // (node, children_emitted)
    let mut stack: Vec<(Faceted<T>, bool)> = vec![(root.clone(), false)];
    while let Some((node, expanded)) = stack.pop() {
        if index_of.contains_key(&node.node_id()) {
            continue;
        }
        match node.kind() {
            NodeKind::Leaf(v) => {
                let ix = u32::try_from(entries.len()).expect("node table too large");
                entries.push(NodeEntry::Leaf(encode(v)));
                index_of.insert(node.node_id(), ix);
            }
            NodeKind::Split { label, high, low } => {
                if expanded {
                    let ix = u32::try_from(entries.len()).expect("node table too large");
                    let h = index_of[&high.node_id()];
                    let l = index_of[&low.node_id()];
                    entries.push(NodeEntry::Split {
                        label: label.index(),
                        high: h,
                        low: l,
                    });
                    index_of.insert(node.node_id(), ix);
                } else {
                    let (high, low) = (high.clone(), low.clone());
                    stack.push((node, true));
                    stack.push((high, false));
                    stack.push((low, false));
                }
            }
        }
    }
    index_of[&root.node_id()]
}

/// Imports a node table, re-interning every entry bottom-up and
/// returning the root values in table order.
///
/// Splits are rebuilt through [`Faceted::split`], the canonicalizing
/// constructor — a table produced by [`export_nodes`] is already
/// canonical, so this is a straight re-intern, but it also means a
/// hand-written (or corrupted-but-well-formed) table can never
/// produce a non-canonical value.
///
/// # Errors
///
/// [`PersistError::BadIndex`] on forward/out-of-range references,
/// [`PersistError::BadLeaf`] when `decode` returns `None`.
pub fn import_nodes<T: Facet>(
    table: &NodeTable,
    mut decode: impl FnMut(&str) -> Option<T>,
) -> Result<Vec<Faceted<T>>, PersistError> {
    let mut built: Vec<Faceted<T>> = Vec::with_capacity(table.entries.len());
    for (i, entry) in table.entries.iter().enumerate() {
        let node = match entry {
            NodeEntry::Leaf(payload) => Faceted::leaf(
                decode(payload).ok_or_else(|| PersistError::BadLeaf(payload.clone()))?,
            ),
            NodeEntry::Split { label, high, low } => {
                let fetch = |ix: u32| -> Result<&Faceted<T>, PersistError> {
                    if (ix as usize) < i {
                        Ok(&built[ix as usize])
                    } else {
                        Err(PersistError::BadIndex(ix))
                    }
                };
                Faceted::split(
                    Label::from_index(*label),
                    fetch(*high)?.clone(),
                    fetch(*low)?.clone(),
                )
            }
        };
        built.push(node);
    }
    table
        .roots
        .iter()
        .map(|&ix| {
            built
                .get(ix as usize)
                .cloned()
                .ok_or(PersistError::BadIndex(ix))
        })
        .collect()
}

/// Escapes a leaf payload so it occupies exactly one line.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

/// Inverse of [`escape`].
fn unescape(s: &str) -> Result<String, PersistError> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            other => {
                return Err(PersistError::BadFormat(format!(
                    "bad escape \\{}",
                    other.map_or_else(String::new, |c| c.to_string())
                )))
            }
        }
    }
    Ok(out)
}

impl NodeTable {
    /// Renders the table in the line-oriented text format.
    #[must_use]
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "facets v1 {} {}", self.entries.len(), self.roots.len());
        for entry in &self.entries {
            match entry {
                NodeEntry::Leaf(payload) => {
                    let _ = writeln!(out, "L {}", escape(payload));
                }
                NodeEntry::Split { label, high, low } => {
                    let _ = writeln!(out, "S {label} {high} {low}");
                }
            }
        }
        out.push('R');
        for r in &self.roots {
            let _ = write!(out, " {r}");
        }
        out.push('\n');
        out
    }

    /// Parses the text format produced by [`NodeTable::to_text`].
    ///
    /// # Errors
    ///
    /// [`PersistError::BadFormat`] on any framing violation.
    pub fn from_text(text: &str) -> Result<NodeTable, PersistError> {
        NodeTable::from_lines(&mut text.lines())
    }

    /// Parses the table from a line iterator, consuming exactly its
    /// own lines — callers embedding a node table inside a larger
    /// line-oriented file (the checkpoint format) parse in place
    /// instead of copying the section back into a string first.
    ///
    /// # Errors
    ///
    /// [`PersistError::BadFormat`] on any framing violation.
    pub fn from_lines<'a>(
        lines: &mut impl Iterator<Item = &'a str>,
    ) -> Result<NodeTable, PersistError> {
        let header = lines
            .next()
            .ok_or_else(|| PersistError::BadFormat("empty input".into()))?;
        let mut parts = header.split(' ');
        if parts.next() != Some("facets") || parts.next() != Some("v1") {
            return Err(PersistError::BadFormat(format!("bad header {header:?}")));
        }
        let parse_n = |s: Option<&str>| -> Result<usize, PersistError> {
            s.and_then(|v| v.parse().ok())
                .ok_or_else(|| PersistError::BadFormat(format!("bad header {header:?}")))
        };
        let n_entries = parse_n(parts.next())?;
        let n_roots = parse_n(parts.next())?;
        let mut table = NodeTable::default();
        for _ in 0..n_entries {
            let line = lines
                .next()
                .ok_or_else(|| PersistError::BadFormat("truncated node table".into()))?;
            if let Some(payload) = line.strip_prefix("L ") {
                table.entries.push(NodeEntry::Leaf(unescape(payload)?));
            } else if line == "L" {
                table.entries.push(NodeEntry::Leaf(String::new()));
            } else if let Some(rest) = line.strip_prefix("S ") {
                let mut nums = rest.split(' ').map(str::parse::<u32>);
                let mut next = || -> Result<u32, PersistError> {
                    nums.next()
                        .and_then(Result::ok)
                        .ok_or_else(|| PersistError::BadFormat(format!("bad split {line:?}")))
                };
                table.entries.push(NodeEntry::Split {
                    label: next()?,
                    high: next()?,
                    low: next()?,
                });
            } else {
                return Err(PersistError::BadFormat(format!("bad entry {line:?}")));
            }
        }
        let roots_line = lines
            .next()
            .ok_or_else(|| PersistError::BadFormat("missing roots line".into()))?;
        let rest = roots_line
            .strip_prefix('R')
            .ok_or_else(|| PersistError::BadFormat(format!("bad roots line {roots_line:?}")))?;
        for tok in rest.split_whitespace() {
            let ix: u32 = tok
                .parse()
                .map_err(|_| PersistError::BadFormat(format!("bad root index {tok:?}")))?;
            table.roots.push(ix);
        }
        if table.roots.len() != n_roots {
            return Err(PersistError::BadFormat(format!(
                "header promised {n_roots} roots, found {}",
                table.roots.len()
            )));
        }
        Ok(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::View;

    fn k(i: u32) -> Label {
        Label::from_index(i)
    }

    fn encode_i64(v: &i64) -> String {
        v.to_string()
    }

    fn decode_i64(s: &str) -> Option<i64> {
        s.parse().ok()
    }

    /// The counting DAG: 2^n facet paths, O(n²) distinct nodes.
    fn counting_dag(n: u32) -> Faceted<i64> {
        let mut acc = Faceted::leaf(0i64);
        for i in 0..n {
            let bumped = acc.map(&mut |c| c + 1);
            acc = Faceted::split(k(i), bumped, acc);
        }
        acc
    }

    #[test]
    fn leaf_round_trips() {
        let table = export_nodes(&[Faceted::leaf(42i64)], encode_i64);
        assert_eq!(table.entries, vec![NodeEntry::Leaf("42".into())]);
        let back = import_nodes(&table, decode_i64).unwrap();
        assert_eq!(back, vec![Faceted::leaf(42i64)]);
    }

    #[test]
    fn split_round_trips_with_identity() {
        let v = Faceted::split(k(0), Faceted::leaf(1i64), Faceted::leaf(2));
        let table = export_nodes(std::slice::from_ref(&v), encode_i64);
        let back = import_nodes(&table, decode_i64).unwrap();
        // Re-interning lands on the *same* node: pointer equality.
        assert_eq!(back[0].node_id(), v.node_id());
    }

    #[test]
    fn sharing_is_preserved_in_the_table() {
        // The counting DAG has O(n²) nodes; the table must too.
        let n = 16;
        let v = counting_dag(n);
        assert_eq!(v.leaf_count(), 1usize << n);
        let table = export_nodes(std::slice::from_ref(&v), encode_i64);
        assert!(
            table.entries.len() <= ((n * n) as usize) + 2 * n as usize + 2,
            "table stores the DAG, not the tree: {} entries",
            table.entries.len()
        );
        let back = import_nodes(&table, decode_i64).unwrap();
        assert_eq!(back[0], v);
    }

    #[test]
    fn export_import_export_is_a_fixpoint() {
        let roots = vec![
            counting_dag(6),
            Faceted::split(k(2), Faceted::leaf(7i64), Faceted::leaf(8)),
            Faceted::leaf(7i64),
        ];
        let table = export_nodes(&roots, encode_i64);
        let imported = import_nodes(&table, decode_i64).unwrap();
        let again = export_nodes(&imported, encode_i64);
        assert_eq!(table, again);
        for (a, b) in roots.iter().zip(&imported) {
            assert_eq!(a.node_id(), b.node_id());
        }
    }

    #[test]
    fn shared_roots_share_entries() {
        let shared = Faceted::split(k(1), Faceted::leaf(1i64), Faceted::leaf(2));
        let a = Faceted::split(k(0), shared.clone(), Faceted::leaf(3));
        let table = export_nodes(&[a, shared.clone()], encode_i64);
        // Entries: 1, 2, shared, 3, a — the second root adds nothing.
        assert_eq!(table.entries.len(), 5);
        assert_eq!(table.roots.len(), 2);
        let back = import_nodes(&table, decode_i64).unwrap();
        assert_eq!(back[1], shared);
    }

    #[test]
    fn text_round_trips_including_escapes() {
        let v = Faceted::split(
            k(3),
            Faceted::leaf("line\none\\two\rthree".to_owned()),
            Faceted::leaf(String::new()),
        );
        let table = export_nodes(std::slice::from_ref(&v), |s: &String| s.clone());
        let text = table.to_text();
        let parsed = NodeTable::from_text(&text).unwrap();
        assert_eq!(parsed, table);
        let back = import_nodes(&parsed, |s| Some(s.to_owned())).unwrap();
        assert_eq!(back[0], v);
        assert_eq!(
            back[0].project(&View::from_labels([k(3)])),
            "line\none\\two\rthree"
        );
    }

    #[test]
    fn malformed_text_is_rejected() {
        for bad in [
            "",
            "facets v2 0 0\nR",
            "facets v1 1 0\nR",
            "facets v1 1 0\nX nope\nR",
            "facets v1 1 0\nS 1\nR",
            "facets v1 0 1\nR",
            "facets v1 1 1\nL x\nR 0 extra-junk",
        ] {
            assert!(NodeTable::from_text(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn forward_references_are_rejected() {
        let table = NodeTable {
            entries: vec![
                NodeEntry::Split {
                    label: 0,
                    high: 1,
                    low: 2,
                },
                NodeEntry::Leaf("1".into()),
                NodeEntry::Leaf("2".into()),
            ],
            roots: vec![0],
        };
        assert_eq!(
            import_nodes(&table, decode_i64),
            Err(PersistError::BadIndex(1))
        );
        let oob = NodeTable {
            entries: vec![NodeEntry::Leaf("1".into())],
            roots: vec![9],
        };
        assert_eq!(
            import_nodes(&oob, decode_i64),
            Err(PersistError::BadIndex(9))
        );
    }

    #[test]
    fn undecodable_leaves_are_reported() {
        let table = export_nodes(&[Faceted::leaf(1i64)], encode_i64);
        assert_eq!(
            import_nodes(&table, |_| None::<i64>),
            Err(PersistError::BadLeaf("1".into()))
        );
    }

    #[test]
    fn import_recanonicalizes_wellformed_but_noncanonical_tables() {
        // ⟨k1 ? ⟨k0 ? 1 : 2⟩ : 2⟩ written with the *wrong* label order
        // in the table: import still yields the canonical value.
        let table = NodeTable {
            entries: vec![
                NodeEntry::Leaf("1".into()),
                NodeEntry::Leaf("2".into()),
                NodeEntry::Split {
                    label: 0,
                    high: 0,
                    low: 1,
                },
                NodeEntry::Split {
                    label: 1,
                    high: 2,
                    low: 1,
                },
            ],
            roots: vec![3],
        };
        let back = import_nodes(&table, decode_i64).unwrap();
        assert_eq!(back[0].root_label(), Some(k(0)), "canonical order restored");
        let expect = Faceted::split(
            k(1),
            Faceted::split(k(0), Faceted::leaf(1i64), Faceted::leaf(2)),
            Faceted::leaf(2),
        );
        assert_eq!(back[0], expect);
    }
}
