//! Views: the observer side of faceted execution.
//!
//! A [`View`] `L` is the set of labels an observer is authorized to see
//! (§4.3: "A view L is a set of principals"). Projection of faceted
//! values under a view lives on [`crate::Faceted::project`]; row
//! visibility lives on [`crate::Branches::visible_to`].

use std::collections::BTreeSet;
use std::fmt;

use crate::label::Label;

/// A view `L`: the set of labels visible to some observer.
///
/// # Examples
///
/// ```
/// use faceted::{Label, View};
///
/// let k = Label::from_index(0);
/// let alice = View::from_labels([k]);
/// let bob = View::empty();
/// assert!(alice.sees(k));
/// assert!(!bob.sees(k));
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct View(BTreeSet<Label>);

impl View {
    /// The empty view: sees only public (low-confidentiality) facets.
    #[must_use]
    pub fn empty() -> View {
        View::default()
    }

    /// Builds a view from the labels it may see.
    pub fn from_labels<I: IntoIterator<Item = Label>>(labels: I) -> View {
        View(labels.into_iter().collect())
    }

    /// Whether this view is authorized for `label`.
    #[must_use]
    pub fn sees(&self, label: Label) -> bool {
        self.0.contains(&label)
    }

    /// Adds a label to the view (functional update).
    #[must_use]
    pub fn with(&self, label: Label) -> View {
        let mut s = self.0.clone();
        s.insert(label);
        View(s)
    }

    /// Adds a label in place.
    pub fn insert(&mut self, label: Label) {
        self.0.insert(label);
    }

    /// Removes a label in place.
    pub fn remove(&mut self, label: Label) {
        self.0.remove(&label);
    }

    /// Number of visible labels.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the view sees no labels.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterates over the visible labels in order.
    pub fn iter(&self) -> impl Iterator<Item = Label> + '_ {
        self.0.iter().copied()
    }
}

impl FromIterator<Label> for View {
    fn from_iter<I: IntoIterator<Item = Label>>(iter: I) -> View {
        View(iter.into_iter().collect())
    }
}

impl fmt::Debug for View {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{{")?;
        for (i, l) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{l:?}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_view_sees_nothing() {
        let v = View::empty();
        assert!(v.is_empty());
        assert!(!v.sees(Label::from_index(0)));
    }

    #[test]
    fn with_is_functional() {
        let v = View::empty();
        let w = v.with(Label::from_index(1));
        assert!(!v.sees(Label::from_index(1)));
        assert!(w.sees(Label::from_index(1)));
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn from_iterator_collects() {
        let v: View = (0..3).map(Label::from_index).collect();
        assert_eq!(v.len(), 3);
        assert_eq!(v.iter().count(), 3);
    }
}
