//! Faceted values for precise, dynamic information flow control.
//!
//! This crate is the foundation of a Rust reproduction of
//! *Precise, Dynamic Information Flow for Database-Backed Applications*
//! (Yang, Hance, Austin, Solar-Lezama, Flanagan, Chong — PLDI 2016).
//! A *faceted value* `⟨k ? v_H : v_L⟩` behaves as the secret facet
//! `v_H` for observers authorized to see label `k` and as the public
//! facet `v_L` for everyone else; faceted *execution* propagates labels
//! through every derived value so that outputs can be resolved per
//! observer at a computation sink.
//!
//! The crate provides:
//!
//! * [`Label`] / [`LabelRegistry`] — interned policy labels;
//! * [`Branch`] / [`Branches`] — `k` / `¬k` literals and branch sets,
//!   used as program counters and row guards;
//! * [`View`] — the set of labels an observer may see;
//! * [`Faceted`] — canonical faceted values with the `⟨⟨k ? · : ·⟩⟩`
//!   constructor, projection, and the strict-context combinators
//!   (`map`, `zip_with`, `and_then`);
//! * [`FacetedList`] — the guarded-row representation of faceted
//!   tables, with the shared-row `⟨⟨·⟩⟩` table join and Early Pruning.
//!
//! # Canonical form and hash-consing
//!
//! Every `Faceted<T>` is kept in canonical binary-decision form —
//! label ids strictly increase along every root-to-leaf path and no
//! node has two equal children — and, since the interner landed, every
//! canonical node is **hash-consed**: interned exactly once per
//! process in a sharded, `Arc`-backed node store (see [`intern`]).
//! The interning invariant upgrades the old structural-equality
//! guarantee to *pointer* equality: two faceted values denote the same
//! view function **iff** they are the same node, so `PartialEq` is an
//! id comparison and shared sub-structure (ubiquitous in aggregates
//! like faceted counts) is stored once. The canonicalizing operations
//! are memoized in per-store computed tables ([`intern::intern_stats`]
//! reports hit rates; [`intern::set_memoization`] toggles them for
//! measurement), and because the store is thread-safe, `Faceted<T>`
//! is `Send + Sync` for any `T: Send + Sync` — the property the
//! concurrent request executor in the `jacqueline` crate builds on.
//!
//! # Quick example
//!
//! ```
//! use faceted::{Faceted, LabelRegistry, View};
//!
//! let mut labels = LabelRegistry::new();
//! let k = labels.fresh("party_name");
//!
//! // ⟨k ? "Carol's surprise party" : "Private event"⟩
//! let name = Faceted::split(
//!     k,
//!     Faceted::leaf("Carol's surprise party".to_owned()),
//!     Faceted::leaf("Private event".to_owned()),
//! );
//!
//! // Derived values keep the label (faceted execution).
//! let banner = name.map(&mut |n| format!("Alice's events: {n}"));
//!
//! let guest = View::from_labels([k]);
//! assert_eq!(banner.project(&guest), "Alice's events: Carol's surprise party");
//! assert_eq!(banner.project(&View::empty()), "Alice's events: Private event");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod branch;
mod collection;
pub mod intern;
mod label;
pub mod persist;
mod value;
mod view;

pub use branch::{Branch, Branches};
pub use collection::FacetedList;
pub use intern::{collect_garbage, intern_stats, set_memoization, Facet, InternStats};
pub use label::{Label, LabelRegistry};
pub use persist::{export_nodes, import_nodes, NodeEntry, NodeTable, PersistError};
pub use value::Faceted;
pub use view::View;
