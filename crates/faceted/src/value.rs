//! Faceted values: the runtime representation of sensitive data.
//!
//! A [`Faceted<T>`] is the paper's `⟨k ? v_high : v_low⟩`, generalized
//! to nested facets. Values are kept in a *canonical* binary-decision
//! tree form: label ids strictly increase along every root-to-leaf path
//! and no node has equal children. Canonical form makes structural
//! equality coincide with semantic equality ("same value under every
//! view"), which the tests and the FORM rely on.

use std::fmt;
use std::rc::Rc;

use crate::branch::{Branch, Branches};
use crate::label::Label;
use crate::view::View;

/// A faceted value: either a plain leaf or a split `⟨k ? high : low⟩`.
///
/// Cloning is O(1) (the tree is shared behind [`Rc`]); all operations
/// produce new trees. Construction through [`Faceted::leaf`] and
/// [`Faceted::split`] maintains canonical form.
///
/// # Examples
///
/// ```
/// use faceted::{Faceted, Label, View};
///
/// let k = Label::from_index(0);
/// let name = Faceted::split(k, Faceted::leaf("Carol's party"), Faceted::leaf("Private event"));
/// let guest = View::from_labels([k]);
/// assert_eq!(name.project(&guest), &"Carol's party");
/// assert_eq!(name.project(&View::empty()), &"Private event");
/// ```
pub struct Faceted<T>(Rc<Node<T>>);

enum Node<T> {
    Leaf(T),
    Split {
        label: Label,
        high: Faceted<T>,
        low: Faceted<T>,
    },
}

impl<T> Clone for Faceted<T> {
    fn clone(&self) -> Faceted<T> {
        Faceted(Rc::clone(&self.0))
    }
}

impl<T: PartialEq> PartialEq for Faceted<T> {
    fn eq(&self, other: &Faceted<T>) -> bool {
        if Rc::ptr_eq(&self.0, &other.0) {
            return true;
        }
        match (&*self.0, &*other.0) {
            (Node::Leaf(a), Node::Leaf(b)) => a == b,
            (
                Node::Split {
                    label: la,
                    high: ha,
                    low: wa,
                },
                Node::Split {
                    label: lb,
                    high: hb,
                    low: wb,
                },
            ) => la == lb && ha == hb && wa == wb,
            _ => false,
        }
    }
}

impl<T: Eq> Eq for Faceted<T> {}

impl<T: fmt::Debug> fmt::Debug for Faceted<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &*self.0 {
            Node::Leaf(v) => write!(f, "{v:?}"),
            Node::Split { label, high, low } => {
                write!(f, "⟨{label:?} ? {high:?} : {low:?}⟩")
            }
        }
    }
}

impl<T> From<T> for Faceted<T> {
    fn from(value: T) -> Faceted<T> {
        Faceted::leaf(value)
    }
}

impl<T> Faceted<T> {
    /// Wraps a plain value as a faceted leaf.
    #[must_use]
    pub fn leaf(value: T) -> Faceted<T> {
        Faceted(Rc::new(Node::Leaf(value)))
    }

    /// If this value is a plain (non-faceted) leaf, returns it.
    #[must_use]
    pub fn as_leaf(&self) -> Option<&T> {
        match &*self.0 {
            Node::Leaf(v) => Some(v),
            Node::Split { .. } => None,
        }
    }

    /// Whether the value carries no facets at all.
    #[must_use]
    pub fn is_leaf(&self) -> bool {
        self.as_leaf().is_some()
    }

    /// The root label, if the value is split.
    #[must_use]
    pub fn root_label(&self) -> Option<Label> {
        match &*self.0 {
            Node::Leaf(_) => None,
            Node::Split { label, .. } => Some(*label),
        }
    }

    /// Projects the value under view `L`: the paper's `L(V)`.
    ///
    /// Walks the tree choosing the high facet when `L` sees the label
    /// and the low facet otherwise.
    #[must_use]
    pub fn project(&self, view: &View) -> &T {
        let mut cur = self;
        loop {
            match &*cur.0 {
                Node::Leaf(v) => return v,
                Node::Split { label, high, low } => {
                    cur = if view.sees(*label) { high } else { low };
                }
            }
        }
    }

    /// Collects every label occurring in the tree, in id order.
    #[must_use]
    pub fn labels(&self) -> Vec<Label> {
        fn walk<T>(n: &Faceted<T>, out: &mut Vec<Label>) {
            if let Node::Split { label, high, low } = &*n.0 {
                out.push(*label);
                walk(high, out);
                walk(low, out);
            }
        }
        let mut out = Vec::new();
        walk(self, &mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Iterates over `(guard, leaf)` pairs: every leaf together with
    /// the branch set describing which views reach it.
    #[must_use]
    pub fn leaves(&self) -> Vec<(Branches, &T)> {
        fn walk<'a, T>(n: &'a Faceted<T>, pc: &Branches, out: &mut Vec<(Branches, &'a T)>) {
            match &*n.0 {
                Node::Leaf(v) => out.push((pc.clone(), v)),
                Node::Split { label, high, low } => {
                    walk(high, &pc.with(Branch::pos(*label)), out);
                    walk(low, &pc.with(Branch::neg(*label)), out);
                }
            }
        }
        let mut out = Vec::new();
        walk(self, &Branches::new(), &mut out);
        out
    }

    /// Number of leaves (the "facet blowup" measure used by the Early
    /// Pruning experiments).
    #[must_use]
    pub fn leaf_count(&self) -> usize {
        match &*self.0 {
            Node::Leaf(_) => 1,
            Node::Split { high, low, .. } => high.leaf_count() + low.leaf_count(),
        }
    }
}

impl<T: Clone + PartialEq> Faceted<T> {
    /// The canonical facet constructor `⟨⟨k ? high : low⟩⟩` (§4.2).
    ///
    /// Partially evaluates both sides under the assumption `k = true`
    /// (resp. `false`), merges identical results, and keeps label order
    /// canonical — so `⟨k ? v : v⟩` collapses to `v` and a label never
    /// guards itself twice along a path.
    #[must_use]
    pub fn split(label: Label, high: Faceted<T>, low: Faceted<T>) -> Faceted<T> {
        let high = high.assume(label, true);
        let low = low.assume(label, false);
        Faceted::ite(label, &high, &low)
    }

    /// Internal: builds `if label then high else low` assuming `label`
    /// no longer occurs in either argument, restoring canonical label
    /// order by BDD-style merging.
    fn ite(label: Label, high: &Faceted<T>, low: &Faceted<T>) -> Faceted<T> {
        if high == low {
            return high.clone();
        }
        // Find the smallest label that must sit at the root.
        let mut top = label;
        if let Some(l) = high.root_label() {
            top = top.min(l);
        }
        if let Some(l) = low.root_label() {
            top = top.min(l);
        }
        if top == label {
            return Faceted(Rc::new(Node::Split {
                label,
                high: high.clone(),
                low: low.clone(),
            }));
        }
        let h = Faceted::ite(label, &high.cofactor(top, true), &low.cofactor(top, true));
        let l = Faceted::ite(label, &high.cofactor(top, false), &low.cofactor(top, false));
        Faceted::mk(top, h, l)
    }

    /// Internal: node constructor that merges equal children. Children
    /// must already be free of `label` and canonically ordered below it.
    fn mk(label: Label, high: Faceted<T>, low: Faceted<T>) -> Faceted<T> {
        if high == low {
            high
        } else {
            Faceted(Rc::new(Node::Split { label, high, low }))
        }
    }

    /// Internal: the subtree reached when `label` takes `polarity`,
    /// *if* `label` is at the root; otherwise the tree itself (which
    /// then cannot mention `label` above any occurrence — only valid
    /// when `label ≤` every root label, as in canonical recursion).
    fn cofactor(&self, label: Label, polarity: bool) -> Faceted<T> {
        match &*self.0 {
            Node::Split {
                label: l,
                high,
                low,
            } if *l == label => {
                if polarity {
                    high.clone()
                } else {
                    low.clone()
                }
            }
            _ => self.clone(),
        }
    }

    /// Partially evaluates the tree under the assumption
    /// `label = polarity`, removing every decision on `label`.
    #[must_use]
    pub fn assume(&self, label: Label, polarity: bool) -> Faceted<T> {
        match &*self.0 {
            Node::Leaf(_) => self.clone(),
            Node::Split {
                label: l,
                high,
                low,
            } => {
                if *l == label {
                    if polarity {
                        high.assume(label, polarity)
                    } else {
                        low.assume(label, polarity)
                    }
                } else {
                    let h = high.assume(label, polarity);
                    let w = low.assume(label, polarity);
                    if &h == high && &w == low {
                        self.clone()
                    } else {
                        Faceted::mk(*l, h, w)
                    }
                }
            }
        }
    }

    /// Partially evaluates under every branch in `pc` (used when a
    /// value flows into a context already guarded by `pc`).
    #[must_use]
    pub fn assume_all(&self, pc: &Branches) -> Faceted<T> {
        let mut cur = self.clone();
        for b in pc.iter() {
            cur = cur.assume(b.label(), b.is_positive());
        }
        cur
    }

    /// The n-ary facet constructor `⟨⟨B ? v_high : v_low⟩⟩` over a set
    /// of branches (§4.2): observers satisfying every branch of `B` see
    /// `high`, all others see `low`.
    #[must_use]
    pub fn split_branches(branches: &Branches, high: Faceted<T>, low: Faceted<T>) -> Faceted<T> {
        // ⟨⟨∅ ? H : L⟩⟩ = H;
        // ⟨⟨{k}∪B ? H : L⟩⟩  = ⟨⟨k ? ⟨⟨B ? H : L⟩⟩ : L⟩⟩
        // ⟨⟨{¬k}∪B ? H : L⟩⟩ = ⟨⟨k ? L : ⟨⟨B ? H : L⟩⟩⟩⟩
        let mut acc = high;
        for b in branches.iter().collect::<Vec<_>>().into_iter().rev() {
            acc = if b.is_positive() {
                Faceted::split(b.label(), acc, low.clone())
            } else {
                Faceted::split(b.label(), low.clone(), acc)
            };
        }
        acc
    }

    /// Applies a function to every leaf, preserving facet structure
    /// (the `F-STRICT` rule for unary operators).
    #[must_use]
    pub fn map<U: Clone + PartialEq>(&self, f: &mut impl FnMut(&T) -> U) -> Faceted<U> {
        match &*self.0 {
            Node::Leaf(v) => Faceted::leaf(f(v)),
            Node::Split { label, high, low } => {
                let h = high.map(f);
                let l = low.map(f);
                Faceted::mk(*label, h, l)
            }
        }
    }

    /// Applies a binary function across two faceted values, aligning
    /// their facets (the `F-STRICT` rule for binary operators, e.g.
    /// `⟨k ? 1 : 2⟩ + ⟨l ? 10 : 20⟩`).
    #[must_use]
    pub fn zip_with<U: Clone + PartialEq, V: Clone + PartialEq>(
        &self,
        other: &Faceted<U>,
        f: &mut impl FnMut(&T, &U) -> V,
    ) -> Faceted<V> {
        match (&*self.0, &*other.0) {
            (Node::Leaf(a), Node::Leaf(b)) => Faceted::leaf(f(a, b)),
            _ => {
                let la = self.root_label();
                let lb = other.root_label();
                let top = match (la, lb) {
                    (Some(a), Some(b)) => a.min(b),
                    (Some(a), None) => a,
                    (None, Some(b)) => b,
                    (None, None) => unreachable!("both leaves handled above"),
                };
                let h = self
                    .cofactor_any(top, true)
                    .zip_with(&other.cofactor_any(top, true), f);
                let l = self
                    .cofactor_any(top, false)
                    .zip_with(&other.cofactor_any(top, false), f);
                Faceted::mk(top, h, l)
            }
        }
    }

    /// Like `cofactor` but usable on values of any leaf type pair in
    /// `zip_with` recursion (identical semantics).
    fn cofactor_any(&self, label: Label, polarity: bool) -> Faceted<T> {
        self.cofactor(label, polarity)
    }

    /// Monadic bind: substitutes a faceted computation for every leaf
    /// and re-canonicalizes (used for faceted function application
    /// where the function itself returns faceted results).
    #[must_use]
    pub fn and_then<U: Clone + PartialEq>(
        &self,
        f: &mut impl FnMut(&T) -> Faceted<U>,
    ) -> Faceted<U> {
        match &*self.0 {
            Node::Leaf(v) => f(v),
            Node::Split { label, high, low } => {
                let h = high.and_then(f);
                let l = low.and_then(f);
                Faceted::split(*label, h, l)
            }
        }
    }

    /// Projects under a *partial* assignment of labels: labels the
    /// assignment does not mention keep their facet structure.
    #[must_use]
    pub fn project_partial(&self, assignment: &Branches) -> Faceted<T> {
        self.assume_all(assignment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(i: u32) -> Label {
        Label::from_index(i)
    }

    #[test]
    fn leaf_projects_to_itself() {
        let v = Faceted::leaf(42);
        assert_eq!(*v.project(&View::empty()), 42);
        assert!(v.is_leaf());
    }

    #[test]
    fn split_projects_by_view() {
        let v = Faceted::split(k(0), Faceted::leaf(1), Faceted::leaf(2));
        assert_eq!(*v.project(&View::from_labels([k(0)])), 1);
        assert_eq!(*v.project(&View::empty()), 2);
    }

    #[test]
    fn equal_facets_collapse() {
        let v = Faceted::split(k(0), Faceted::leaf(7), Faceted::leaf(7));
        assert!(v.is_leaf());
        assert_eq!(v, Faceted::leaf(7));
    }

    #[test]
    fn nested_same_label_resolves() {
        // ⟨k ? ⟨k ? 1 : 2⟩ : 3⟩ ≡ ⟨k ? 1 : 3⟩
        let inner = Faceted::split(k(0), Faceted::leaf(1), Faceted::leaf(2));
        let v = Faceted::split(k(0), inner, Faceted::leaf(3));
        assert_eq!(v, Faceted::split(k(0), Faceted::leaf(1), Faceted::leaf(3)));
    }

    #[test]
    fn split_restores_label_order() {
        // Building ⟨k1 ? ... ⟩ under k0-children must keep k0 at the root.
        let a = Faceted::split(k(0), Faceted::leaf(1), Faceted::leaf(2));
        let b = Faceted::split(k(0), Faceted::leaf(3), Faceted::leaf(4));
        let v = Faceted::split(k(1), a, b);
        assert_eq!(v.root_label(), Some(k(0)));
        // Check all four views agree with the naive semantics.
        for (sees0, sees1, expect) in [
            (true, true, 1),
            (true, false, 3),
            (false, true, 2),
            (false, false, 4),
        ] {
            let mut view = View::empty();
            if sees0 {
                view.insert(k(0));
            }
            if sees1 {
                view.insert(k(1));
            }
            assert_eq!(*v.project(&view), expect);
        }
    }

    #[test]
    fn map_preserves_structure_and_merges() {
        let v = Faceted::split(k(0), Faceted::leaf(1), Faceted::leaf(2));
        let doubled = v.map(&mut |x| x * 2);
        assert_eq!(*doubled.project(&View::from_labels([k(0)])), 2);
        assert_eq!(*doubled.project(&View::empty()), 4);
        let merged = v.map(&mut |_| 0);
        assert!(merged.is_leaf());
    }

    #[test]
    fn zip_with_aligns_facets() {
        let a = Faceted::split(k(0), Faceted::leaf(1), Faceted::leaf(2));
        let b = Faceted::split(k(1), Faceted::leaf(10), Faceted::leaf(20));
        let sum = a.zip_with(&b, &mut |x, y| x + y);
        for (s0, s1, expect) in [
            (true, true, 11),
            (true, false, 21),
            (false, true, 12),
            (false, false, 22),
        ] {
            let mut view = View::empty();
            if s0 {
                view.insert(k(0));
            }
            if s1 {
                view.insert(k(1));
            }
            assert_eq!(*sum.project(&view), expect, "view ({s0},{s1})");
        }
    }

    #[test]
    fn zip_with_same_label_stays_linear() {
        let a = Faceted::split(k(0), Faceted::leaf(1), Faceted::leaf(2));
        let b = Faceted::split(k(0), Faceted::leaf(10), Faceted::leaf(20));
        let sum = a.zip_with(&b, &mut |x, y| x + y);
        assert_eq!(
            sum,
            Faceted::split(k(0), Faceted::leaf(11), Faceted::leaf(22))
        );
        assert_eq!(sum.leaf_count(), 2);
    }

    #[test]
    fn assume_eliminates_label() {
        let v = Faceted::split(k(0), Faceted::leaf(1), Faceted::leaf(2));
        assert_eq!(v.assume(k(0), true), Faceted::leaf(1));
        assert_eq!(v.assume(k(0), false), Faceted::leaf(2));
        assert_eq!(v.assume(k(5), true), v);
    }

    #[test]
    fn split_branches_positive_and_negative() {
        let b = Branches::from_iter([Branch::pos(k(0)), Branch::neg(k(1))]);
        let v = Faceted::split_branches(&b, Faceted::leaf(1), Faceted::leaf(0));
        // Visible only when k0 ∈ L and k1 ∉ L.
        assert_eq!(*v.project(&View::from_labels([k(0)])), 1);
        assert_eq!(*v.project(&View::from_labels([k(0), k(1)])), 0);
        assert_eq!(*v.project(&View::empty()), 0);
        assert_eq!(*v.project(&View::from_labels([k(1)])), 0);
    }

    #[test]
    fn split_branches_empty_is_high() {
        let v = Faceted::split_branches(&Branches::new(), Faceted::leaf(1), Faceted::leaf(0));
        assert_eq!(v, Faceted::leaf(1));
    }

    #[test]
    fn and_then_grafts_and_canonicalizes() {
        let v = Faceted::split(k(1), Faceted::leaf(true), Faceted::leaf(false));
        let w = v.and_then(&mut |b| {
            if *b {
                Faceted::split(k(0), Faceted::leaf(1), Faceted::leaf(2))
            } else {
                Faceted::leaf(2)
            }
        });
        // Result must be canonically ordered with k0 at the root.
        assert_eq!(w.root_label(), Some(k(0)));
        assert_eq!(*w.project(&View::from_labels([k(0), k(1)])), 1);
        assert_eq!(*w.project(&View::from_labels([k(1)])), 2);
        assert_eq!(*w.project(&View::empty()), 2);
    }

    #[test]
    fn leaves_enumerates_guards() {
        let v = Faceted::split(k(0), Faceted::leaf(1), Faceted::leaf(2));
        let leaves = v.leaves();
        assert_eq!(leaves.len(), 2);
        assert!(leaves[0].0.contains(Branch::pos(k(0))));
        assert!(leaves[1].0.contains(Branch::neg(k(0))));
    }

    #[test]
    fn labels_are_sorted_and_deduped() {
        let a = Faceted::split(k(1), Faceted::leaf(1), Faceted::leaf(2));
        let v = Faceted::split(k(0), a, Faceted::leaf(3));
        assert_eq!(v.labels(), vec![k(0), k(1)]);
    }

    #[test]
    fn identical_children_merge_even_when_faceted() {
        let a = Faceted::split(k(1), Faceted::leaf(1), Faceted::leaf(2));
        let v = Faceted::split(k(0), a.clone(), a.clone());
        assert_eq!(v, a);
    }
}
