//! Faceted values: the runtime representation of sensitive data.
//!
//! A [`Faceted<T>`] is the paper's `⟨k ? v_high : v_low⟩`, generalized
//! to nested facets. Values are kept in a *canonical* binary-decision
//! form: label ids strictly increase along every root-to-leaf path and
//! no node has equal children. Since PR 2 the canonical form is
//! additionally *hash-consed* (see [`crate::intern`]): every canonical
//! node is interned exactly once per process, so structural equality,
//! semantic equality ("same value under every view") and pointer
//! equality all coincide, and shared sub-structure is stored once.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::branch::{Branch, Branches};
use crate::intern::{store_of, Facet, Store};
use crate::label::Label;
use crate::view::View;

/// A faceted value: either a plain leaf or a split `⟨k ? high : low⟩`.
///
/// Cloning is O(1) (nodes are shared behind [`Arc`]); all operations
/// produce interned canonical nodes, so equality is an id comparison
/// and `Faceted<T>` is `Send + Sync` whenever `T` is. Construction
/// through [`Faceted::leaf`] and [`Faceted::split`] maintains
/// canonical form; the canonicalizing operations are memoized in the
/// node store.
///
/// The closures taken by [`Faceted::map`], [`Faceted::zip_with`] and
/// [`Faceted::and_then`] must be *pure*: because equal sub-trees are
/// shared and operations are memoized, a closure is invoked once per
/// distinct input, not once per facet path.
///
/// # Examples
///
/// ```
/// use faceted::{Faceted, Label, View};
///
/// let k = Label::from_index(0);
/// let name = Faceted::split(k, Faceted::leaf("Carol's party"), Faceted::leaf("Private event"));
/// let guest = View::from_labels([k]);
/// assert_eq!(name.project(&guest), &"Carol's party");
/// assert_eq!(name.project(&View::empty()), &"Private event");
/// ```
pub struct Faceted<T: Facet>(pub(crate) Arc<Node<T>>);

pub(crate) struct Node<T: Facet> {
    pub(crate) id: u64,
    pub(crate) kind: NodeKind<T>,
}

pub(crate) enum NodeKind<T: Facet> {
    Leaf(T),
    Split {
        label: Label,
        high: Faceted<T>,
        low: Faceted<T>,
    },
}

impl<T: Facet> Clone for Faceted<T> {
    fn clone(&self) -> Faceted<T> {
        Faceted(Arc::clone(&self.0))
    }
}

impl<T: Facet> PartialEq for Faceted<T> {
    fn eq(&self, other: &Faceted<T>) -> bool {
        // Hash-consing makes canonical nodes unique: semantic equality
        // *is* node identity.
        self.0.id == other.0.id
    }
}

impl<T: Facet> Eq for Faceted<T> {}

impl<T: Facet> Hash for Faceted<T> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.0.id);
    }
}

impl<T: Facet + fmt::Debug> fmt::Debug for Faceted<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.0.kind {
            NodeKind::Leaf(v) => write!(f, "{v:?}"),
            NodeKind::Split { label, high, low } => {
                write!(f, "⟨{label:?} ? {high:?} : {low:?}⟩")
            }
        }
    }
}

impl<T: Facet> From<T> for Faceted<T> {
    fn from(value: T) -> Faceted<T> {
        Faceted::leaf(value)
    }
}

impl<T: Facet> Faceted<T> {
    /// Wraps a plain value as a faceted leaf (interned: equal values
    /// share one node).
    #[must_use]
    pub fn leaf(value: T) -> Faceted<T> {
        store_of::<T>().leaf(value)
    }

    /// The interned node id: unique per canonical value within this
    /// process. Two faceted values are semantically equal iff their
    /// node ids are equal.
    #[must_use]
    pub fn node_id(&self) -> u64 {
        self.0.id
    }

    /// Crate-internal structural access (the persistence walker needs
    /// the children of a split without re-deriving them by cofactor).
    pub(crate) fn kind(&self) -> &NodeKind<T> {
        &self.0.kind
    }

    /// If this value is a plain (non-faceted) leaf, returns it.
    #[must_use]
    pub fn as_leaf(&self) -> Option<&T> {
        match &self.0.kind {
            NodeKind::Leaf(v) => Some(v),
            NodeKind::Split { .. } => None,
        }
    }

    /// Whether the value carries no facets at all.
    #[must_use]
    pub fn is_leaf(&self) -> bool {
        self.as_leaf().is_some()
    }

    /// The root label, if the value is split.
    #[must_use]
    pub fn root_label(&self) -> Option<Label> {
        match &self.0.kind {
            NodeKind::Leaf(_) => None,
            NodeKind::Split { label, .. } => Some(*label),
        }
    }

    /// Projects the value under view `L`: the paper's `L(V)`.
    ///
    /// Walks one root-to-leaf path choosing the high facet when `L`
    /// sees the label and the low facet otherwise.
    #[must_use]
    pub fn project(&self, view: &View) -> &T {
        let mut cur = self;
        loop {
            match &cur.0.kind {
                NodeKind::Leaf(v) => return v,
                NodeKind::Split { label, high, low } => {
                    cur = if view.sees(*label) { high } else { low };
                }
            }
        }
    }

    /// Collects every label occurring in the value, in id order.
    ///
    /// The walk visits every *node* once (shared sub-structure is not
    /// revisited) and accumulates into a `BTreeSet`, so the result is
    /// sorted and deduplicated by construction.
    #[must_use]
    pub fn labels(&self) -> Vec<Label> {
        fn walk<T: Facet>(n: &Faceted<T>, seen: &mut HashSet<u64>, out: &mut BTreeSet<Label>) {
            if !seen.insert(n.0.id) {
                return;
            }
            if let NodeKind::Split { label, high, low } = &n.0.kind {
                out.insert(*label);
                walk(high, seen, out);
                walk(low, seen, out);
            }
        }
        let mut out = BTreeSet::new();
        walk(self, &mut HashSet::new(), &mut out);
        out.into_iter().collect()
    }

    /// Iterates over `(guard, leaf)` pairs: every leaf together with
    /// the branch set describing which views reach it.
    #[must_use]
    pub fn leaves(&self) -> Vec<(Branches, &T)> {
        fn walk<'a, T: Facet>(n: &'a Faceted<T>, pc: &Branches, out: &mut Vec<(Branches, &'a T)>) {
            match &n.0.kind {
                NodeKind::Leaf(v) => out.push((pc.clone(), v)),
                NodeKind::Split { label, high, low } => {
                    walk(high, &pc.with(Branch::pos(*label)), out);
                    walk(low, &pc.with(Branch::neg(*label)), out);
                }
            }
        }
        let mut out = Vec::new();
        walk(self, &Branches::new(), &mut out);
        out
    }

    /// Number of leaves (the "facet blowup" measure used by the Early
    /// Pruning experiments). Counts root-to-leaf *paths*; on the
    /// hash-consed DAG this is computed in one pass over distinct
    /// nodes, saturating instead of overflowing.
    #[must_use]
    pub fn leaf_count(&self) -> usize {
        fn walk<T: Facet>(n: &Faceted<T>, memo: &mut HashMap<u64, usize>) -> usize {
            if let Some(&c) = memo.get(&n.0.id) {
                return c;
            }
            let c = match &n.0.kind {
                NodeKind::Leaf(_) => 1,
                NodeKind::Split { high, low, .. } => {
                    walk(high, memo).saturating_add(walk(low, memo))
                }
            };
            memo.insert(n.0.id, c);
            c
        }
        walk(self, &mut HashMap::new())
    }

    /// The canonical facet constructor `⟨⟨k ? high : low⟩⟩` (§4.2).
    ///
    /// Partially evaluates both sides under the assumption `k = true`
    /// (resp. `false`), merges identical results, and keeps label order
    /// canonical — so `⟨k ? v : v⟩` collapses to `v` and a label never
    /// guards itself twice along a path.
    #[must_use]
    pub fn split(label: Label, high: Faceted<T>, low: Faceted<T>) -> Faceted<T> {
        let store = store_of::<T>();
        let high = high.assume_in(&store, label, true);
        let low = low.assume_in(&store, label, false);
        Faceted::ite_in(&store, label, &high, &low)
    }

    /// Internal: builds `if label then high else low` assuming `label`
    /// no longer occurs in either argument, restoring canonical label
    /// order by BDD-style merging. Memoized in the store's computed
    /// table.
    fn ite_in(store: &Store<T>, label: Label, high: &Faceted<T>, low: &Faceted<T>) -> Faceted<T> {
        if high == low {
            return high.clone();
        }
        let key = (label, high.0.id, low.0.id);
        if let Some(hit) = store.ite_cached(key) {
            return hit;
        }
        // Find the smallest label that must sit at the root.
        let mut top = label;
        if let Some(l) = high.root_label() {
            top = top.min(l);
        }
        if let Some(l) = low.root_label() {
            top = top.min(l);
        }
        let out = if top == label {
            store.split(label, high, low)
        } else {
            let h = Faceted::ite_in(
                store,
                label,
                &high.cofactor(top, true),
                &low.cofactor(top, true),
            );
            let l = Faceted::ite_in(
                store,
                label,
                &high.cofactor(top, false),
                &low.cofactor(top, false),
            );
            Faceted::mk_in(store, top, h, l)
        };
        store.ite_insert(key, out.clone());
        out
    }

    /// Internal: node constructor that merges equal children. Children
    /// must already be free of `label` and canonically ordered below it.
    fn mk_in(store: &Store<T>, label: Label, high: Faceted<T>, low: Faceted<T>) -> Faceted<T> {
        if high == low {
            high
        } else {
            store.split(label, &high, &low)
        }
    }

    /// Internal: the subtree reached when `label` takes `polarity`,
    /// *if* `label` is at the root; otherwise the value itself (which
    /// then cannot mention `label` above any occurrence — only valid
    /// when `label ≤` every root label, as in canonical recursion).
    /// Used by both the `ite` and the `zip_with` recursions.
    fn cofactor(&self, label: Label, polarity: bool) -> Faceted<T> {
        match &self.0.kind {
            NodeKind::Split {
                label: l,
                high,
                low,
            } if *l == label => {
                if polarity {
                    high.clone()
                } else {
                    low.clone()
                }
            }
            _ => self.clone(),
        }
    }

    /// Partially evaluates the value under the assumption
    /// `label = polarity`, removing every decision on `label`.
    #[must_use]
    pub fn assume(&self, label: Label, polarity: bool) -> Faceted<T> {
        self.assume_in(&store_of::<T>(), label, polarity)
    }

    fn assume_in(&self, store: &Store<T>, label: Label, polarity: bool) -> Faceted<T> {
        match &self.0.kind {
            NodeKind::Leaf(_) => self.clone(),
            NodeKind::Split {
                label: l,
                high,
                low,
            } => {
                if label < *l {
                    // Canonical ordering: labels strictly increase on
                    // the way down, so `label` cannot occur below.
                    return self.clone();
                }
                if *l == label {
                    // Canonical form guarantees the child is already
                    // free of `label`.
                    return if polarity { high.clone() } else { low.clone() };
                }
                let key = (self.0.id, label, polarity);
                if let Some(hit) = store.assume_cached(key) {
                    return hit;
                }
                let h = high.assume_in(store, label, polarity);
                let w = low.assume_in(store, label, polarity);
                let out = if h == *high && w == *low {
                    self.clone()
                } else {
                    Faceted::mk_in(store, *l, h, w)
                };
                store.assume_insert(key, out.clone());
                out
            }
        }
    }

    /// Partially evaluates under every branch in `pc` (used when a
    /// value flows into a context already guarded by `pc`).
    #[must_use]
    pub fn assume_all(&self, pc: &Branches) -> Faceted<T> {
        let store = store_of::<T>();
        let mut cur = self.clone();
        for b in pc.iter() {
            cur = cur.assume_in(&store, b.label(), b.is_positive());
        }
        cur
    }

    /// The n-ary facet constructor `⟨⟨B ? v_high : v_low⟩⟩` over a set
    /// of branches (§4.2): observers satisfying every branch of `B` see
    /// `high`, all others see `low`.
    #[must_use]
    pub fn split_branches(branches: &Branches, high: Faceted<T>, low: Faceted<T>) -> Faceted<T> {
        // ⟨⟨∅ ? H : L⟩⟩ = H;
        // ⟨⟨{k}∪B ? H : L⟩⟩  = ⟨⟨k ? ⟨⟨B ? H : L⟩⟩ : L⟩⟩
        // ⟨⟨{¬k}∪B ? H : L⟩⟩ = ⟨⟨k ? L : ⟨⟨B ? H : L⟩⟩⟩⟩
        let mut acc = high;
        for b in branches.iter().rev() {
            acc = if b.is_positive() {
                Faceted::split(b.label(), acc, low.clone())
            } else {
                Faceted::split(b.label(), low.clone(), acc)
            };
        }
        acc
    }

    /// Applies a function to every leaf, preserving facet structure
    /// (the `F-STRICT` rule for unary operators).
    ///
    /// `f` must be pure: thanks to node sharing it runs once per
    /// *distinct* leaf, not once per facet path.
    #[must_use]
    pub fn map<U: Facet>(&self, f: &mut impl FnMut(&T) -> U) -> Faceted<U> {
        fn walk<T: Facet, U: Facet>(
            n: &Faceted<T>,
            store: &Store<U>,
            f: &mut impl FnMut(&T) -> U,
            memo: &mut HashMap<u64, Faceted<U>>,
        ) -> Faceted<U> {
            if let Some(hit) = memo.get(&n.0.id) {
                return hit.clone();
            }
            let out = match &n.0.kind {
                NodeKind::Leaf(v) => store.leaf(f(v)),
                NodeKind::Split { label, high, low } => {
                    let h = walk(high, store, f, memo);
                    let l = walk(low, store, f, memo);
                    Faceted::mk_in(store, *label, h, l)
                }
            };
            memo.insert(n.0.id, out.clone());
            out
        }
        walk(self, &store_of::<U>(), f, &mut HashMap::new())
    }

    /// Applies a binary function across two faceted values, aligning
    /// their facets (the `F-STRICT` rule for binary operators, e.g.
    /// `⟨k ? 1 : 2⟩ + ⟨l ? 10 : 20⟩`).
    ///
    /// `f` must be pure: it runs once per distinct *pair* of aligned
    /// sub-values (a per-call computed table collapses the recursion
    /// over shared structure).
    #[must_use]
    pub fn zip_with<U: Facet, V: Facet>(
        &self,
        other: &Faceted<U>,
        f: &mut impl FnMut(&T, &U) -> V,
    ) -> Faceted<V> {
        fn walk<T: Facet, U: Facet, V: Facet>(
            a: &Faceted<T>,
            b: &Faceted<U>,
            store: &Store<V>,
            f: &mut impl FnMut(&T, &U) -> V,
            memo: &mut HashMap<(u64, u64), Faceted<V>>,
        ) -> Faceted<V> {
            if let Some(hit) = memo.get(&(a.0.id, b.0.id)) {
                return hit.clone();
            }
            let out = match (&a.0.kind, &b.0.kind) {
                (NodeKind::Leaf(x), NodeKind::Leaf(y)) => store.leaf(f(x, y)),
                _ => {
                    let la = a.root_label();
                    let lb = b.root_label();
                    let top = match (la, lb) {
                        (Some(x), Some(y)) => x.min(y),
                        (Some(x), None) => x,
                        (None, Some(y)) => y,
                        (None, None) => unreachable!("both leaves handled above"),
                    };
                    let h = walk(
                        &a.cofactor(top, true),
                        &b.cofactor(top, true),
                        store,
                        f,
                        memo,
                    );
                    let l = walk(
                        &a.cofactor(top, false),
                        &b.cofactor(top, false),
                        store,
                        f,
                        memo,
                    );
                    Faceted::mk_in(store, top, h, l)
                }
            };
            memo.insert((a.0.id, b.0.id), out.clone());
            out
        }
        walk(self, other, &store_of::<V>(), f, &mut HashMap::new())
    }

    /// Monadic bind: substitutes a faceted computation for every leaf
    /// and re-canonicalizes (used for faceted function application
    /// where the function itself returns faceted results).
    ///
    /// `f` must be pure: it runs once per distinct leaf.
    #[must_use]
    pub fn and_then<U: Facet>(&self, f: &mut impl FnMut(&T) -> Faceted<U>) -> Faceted<U> {
        fn walk<T: Facet, U: Facet>(
            n: &Faceted<T>,
            f: &mut impl FnMut(&T) -> Faceted<U>,
            memo: &mut HashMap<u64, Faceted<U>>,
        ) -> Faceted<U> {
            if let Some(hit) = memo.get(&n.0.id) {
                return hit.clone();
            }
            let out = match &n.0.kind {
                NodeKind::Leaf(v) => f(v),
                NodeKind::Split { label, high, low } => {
                    let h = walk(high, f, memo);
                    let l = walk(low, f, memo);
                    Faceted::split(*label, h, l)
                }
            };
            memo.insert(n.0.id, out.clone());
            out
        }
        walk(self, f, &mut HashMap::new())
    }

    /// Projects under a *partial* assignment of labels: labels the
    /// assignment does not mention keep their facet structure.
    #[must_use]
    pub fn project_partial(&self, assignment: &Branches) -> Faceted<T> {
        self.assume_all(assignment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(i: u32) -> Label {
        Label::from_index(i)
    }

    #[test]
    fn leaf_projects_to_itself() {
        let v = Faceted::leaf(42);
        assert_eq!(*v.project(&View::empty()), 42);
        assert!(v.is_leaf());
    }

    #[test]
    fn split_projects_by_view() {
        let v = Faceted::split(k(0), Faceted::leaf(1), Faceted::leaf(2));
        assert_eq!(*v.project(&View::from_labels([k(0)])), 1);
        assert_eq!(*v.project(&View::empty()), 2);
    }

    #[test]
    fn equal_facets_collapse() {
        let v = Faceted::split(k(0), Faceted::leaf(7), Faceted::leaf(7));
        assert!(v.is_leaf());
        assert_eq!(v, Faceted::leaf(7));
    }

    #[test]
    fn nested_same_label_resolves() {
        // ⟨k ? ⟨k ? 1 : 2⟩ : 3⟩ ≡ ⟨k ? 1 : 3⟩
        let inner = Faceted::split(k(0), Faceted::leaf(1), Faceted::leaf(2));
        let v = Faceted::split(k(0), inner, Faceted::leaf(3));
        assert_eq!(v, Faceted::split(k(0), Faceted::leaf(1), Faceted::leaf(3)));
    }

    #[test]
    fn split_restores_label_order() {
        // Building ⟨k1 ? ... ⟩ under k0-children must keep k0 at the root.
        let a = Faceted::split(k(0), Faceted::leaf(1), Faceted::leaf(2));
        let b = Faceted::split(k(0), Faceted::leaf(3), Faceted::leaf(4));
        let v = Faceted::split(k(1), a, b);
        assert_eq!(v.root_label(), Some(k(0)));
        // Check all four views agree with the naive semantics.
        for (sees0, sees1, expect) in [
            (true, true, 1),
            (true, false, 3),
            (false, true, 2),
            (false, false, 4),
        ] {
            let mut view = View::empty();
            if sees0 {
                view.insert(k(0));
            }
            if sees1 {
                view.insert(k(1));
            }
            assert_eq!(*v.project(&view), expect);
        }
    }

    #[test]
    fn map_preserves_structure_and_merges() {
        let v = Faceted::split(k(0), Faceted::leaf(1), Faceted::leaf(2));
        let doubled = v.map(&mut |x| x * 2);
        assert_eq!(*doubled.project(&View::from_labels([k(0)])), 2);
        assert_eq!(*doubled.project(&View::empty()), 4);
        let merged = v.map(&mut |_| 0);
        assert!(merged.is_leaf());
    }

    #[test]
    fn zip_with_aligns_facets() {
        let a = Faceted::split(k(0), Faceted::leaf(1), Faceted::leaf(2));
        let b = Faceted::split(k(1), Faceted::leaf(10), Faceted::leaf(20));
        let sum = a.zip_with(&b, &mut |x, y| x + y);
        for (s0, s1, expect) in [
            (true, true, 11),
            (true, false, 21),
            (false, true, 12),
            (false, false, 22),
        ] {
            let mut view = View::empty();
            if s0 {
                view.insert(k(0));
            }
            if s1 {
                view.insert(k(1));
            }
            assert_eq!(*sum.project(&view), expect, "view ({s0},{s1})");
        }
    }

    #[test]
    fn zip_with_same_label_stays_linear() {
        let a = Faceted::split(k(0), Faceted::leaf(1), Faceted::leaf(2));
        let b = Faceted::split(k(0), Faceted::leaf(10), Faceted::leaf(20));
        let sum = a.zip_with(&b, &mut |x, y| x + y);
        assert_eq!(
            sum,
            Faceted::split(k(0), Faceted::leaf(11), Faceted::leaf(22))
        );
        assert_eq!(sum.leaf_count(), 2);
    }

    #[test]
    fn assume_eliminates_label() {
        let v = Faceted::split(k(0), Faceted::leaf(1), Faceted::leaf(2));
        assert_eq!(v.assume(k(0), true), Faceted::leaf(1));
        assert_eq!(v.assume(k(0), false), Faceted::leaf(2));
        assert_eq!(v.assume(k(5), true), v);
    }

    #[test]
    fn split_branches_positive_and_negative() {
        let b = Branches::from_iter([Branch::pos(k(0)), Branch::neg(k(1))]);
        let v = Faceted::split_branches(&b, Faceted::leaf(1), Faceted::leaf(0));
        // Visible only when k0 ∈ L and k1 ∉ L.
        assert_eq!(*v.project(&View::from_labels([k(0)])), 1);
        assert_eq!(*v.project(&View::from_labels([k(0), k(1)])), 0);
        assert_eq!(*v.project(&View::empty()), 0);
        assert_eq!(*v.project(&View::from_labels([k(1)])), 0);
    }

    #[test]
    fn split_branches_empty_is_high() {
        let v = Faceted::split_branches(&Branches::new(), Faceted::leaf(1), Faceted::leaf(0));
        assert_eq!(v, Faceted::leaf(1));
    }

    #[test]
    fn and_then_grafts_and_canonicalizes() {
        let v = Faceted::split(k(1), Faceted::leaf(true), Faceted::leaf(false));
        let w = v.and_then(&mut |b| {
            if *b {
                Faceted::split(k(0), Faceted::leaf(1), Faceted::leaf(2))
            } else {
                Faceted::leaf(2)
            }
        });
        // Result must be canonically ordered with k0 at the root.
        assert_eq!(w.root_label(), Some(k(0)));
        assert_eq!(*w.project(&View::from_labels([k(0), k(1)])), 1);
        assert_eq!(*w.project(&View::from_labels([k(1)])), 2);
        assert_eq!(*w.project(&View::empty()), 2);
    }

    #[test]
    fn leaves_enumerates_guards() {
        let v = Faceted::split(k(0), Faceted::leaf(1), Faceted::leaf(2));
        let leaves = v.leaves();
        assert_eq!(leaves.len(), 2);
        assert!(leaves[0].0.contains(Branch::pos(k(0))));
        assert!(leaves[1].0.contains(Branch::neg(k(0))));
    }

    #[test]
    fn labels_are_sorted_and_deduped() {
        let a = Faceted::split(k(1), Faceted::leaf(1), Faceted::leaf(2));
        let v = Faceted::split(k(0), a, Faceted::leaf(3));
        assert_eq!(v.labels(), vec![k(0), k(1)]);
    }

    #[test]
    fn identical_children_merge_even_when_faceted() {
        let a = Faceted::split(k(1), Faceted::leaf(1), Faceted::leaf(2));
        let v = Faceted::split(k(0), a.clone(), a.clone());
        assert_eq!(v, a);
    }

    #[test]
    fn hash_consing_shares_equal_values() {
        let a = Faceted::split(k(0), Faceted::leaf(100), Faceted::leaf(200));
        let b = Faceted::split(k(0), Faceted::leaf(100), Faceted::leaf(200));
        assert_eq!(a.node_id(), b.node_id(), "equal values share one node");
        // Equal values built along *different* routes also share.
        let c = Faceted::split(k(1), a.clone(), a.clone());
        assert_eq!(c.node_id(), a.node_id());
    }

    #[test]
    fn counting_lattice_stays_polynomial() {
        // A faceted count over n independent singleton guards has 2^n
        // facet paths but only O(n^2) distinct sub-values; interning
        // stores the DAG, and leaf_count still reports the paths.
        let n = 24;
        let mut acc = Faceted::leaf(0i64);
        for i in 0..n {
            let bumped = acc.map(&mut |c| c + 1);
            acc = Faceted::split(k(i), bumped, acc);
        }
        assert_eq!(acc.leaf_count(), 1usize << n);
        assert_eq!(acc.labels().len(), n as usize);
        let all = View::from_labels((0..n).map(k));
        assert_eq!(*acc.project(&all), i64::from(n));
        assert_eq!(*acc.project(&View::empty()), 0);
    }
}
