//! Facet blowup and sharing: the §3.3 / §4.1 space considerations.
//!
//! Canonical trees merge identical facets (the "combining values that
//! are the same to a single view" optimization), and the table join
//! shares rows common to both sides.

use faceted::{Branch, Branches, Faceted, FacetedList, Label, View};

fn k(i: u32) -> Label {
    Label::from_index(i)
}

#[test]
fn faceted_values_are_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Faceted<i64>>();
    assert_send_sync::<Faceted<String>>();
    assert_send_sync::<FacetedList<String>>();
    assert_send_sync::<Branches>();
    assert_send_sync::<View>();
}

#[test]
fn interning_is_thread_safe() {
    // Many threads hammering the same store must agree on node ids.
    let ids: Vec<u64> = std::thread::scope(|s| {
        (0..8)
            .map(|_| {
                s.spawn(|| {
                    let mut v = Faceted::leaf(0i64);
                    for i in 0..8 {
                        let bumped = v.map(&mut |x| x + 1);
                        v = Faceted::split(k(i), bumped, v);
                    }
                    v.node_id()
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    assert!(ids.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn independent_labels_blow_up_exponentially() {
    // n independent labels, all-distinct leaves: 2^n leaves. This is
    // the Table 5 pathology in miniature.
    let mut v = Faceted::leaf(0u64);
    for i in 0..10 {
        let tagged = v.map(&mut |x| x | (1 << i));
        v = Faceted::split(k(i), tagged, v);
    }
    assert_eq!(v.leaf_count(), 1 << 10);
}

#[test]
fn shared_facets_collapse() {
    // Same construction, but the "secret" computation is the identity:
    // canonical merging keeps the value a single leaf.
    let mut v = Faceted::leaf(0u64);
    for i in 0..10 {
        let same = v.map(&mut |x| *x);
        v = Faceted::split(k(i), same, v);
    }
    assert_eq!(v.leaf_count(), 1);
}

#[test]
fn partially_shared_structure_stays_small() {
    // Only the last label actually distinguishes values: the tree
    // stays linear in the number of *distinguishing* labels.
    let mut v = Faceted::split(k(9), Faceted::leaf(1), Faceted::leaf(0));
    for i in 0..9 {
        v = Faceted::split(k(i), v.clone(), v.clone());
    }
    assert_eq!(v.leaf_count(), 2);
}

#[test]
fn table_join_shares_common_rows() {
    // 100 shared rows + 1 differing row: the faceted table stores
    // 100 + 2, not 202 (the paper's row-sharing optimization).
    let mut high = FacetedList::new();
    let mut low = FacetedList::new();
    for i in 0..100 {
        high.push(Branches::new(), format!("common{i}"));
        low.push(Branches::new(), format!("common{i}"));
    }
    high.push(Branches::new(), "secret-only".to_owned());
    low.push(Branches::new(), "public-only".to_owned());
    let joined = FacetedList::facet_join(k(0), &high, &low);
    assert_eq!(joined.len(), 102);
    assert_eq!(joined.project(&View::from_labels([k(0)])).len(), 101);
    assert_eq!(joined.project(&View::empty()).len(), 101);
}

#[test]
fn assume_all_prunes_with_each_branch() {
    let mut v = Faceted::leaf(0i64);
    for i in 0..6 {
        v = Faceted::split(k(i), Faceted::leaf(i64::from(i) + 1), v);
    }
    let mut pc = Branches::new();
    pc.insert(Branch::neg(k(0)));
    pc.insert(Branch::neg(k(1)));
    let pruned = v.assume_all(&pc);
    assert!(pruned.labels().len() <= 4);
    for view in [
        View::empty(),
        View::from_labels([k(2)]),
        View::from_labels([k(5)]),
    ] {
        assert_eq!(pruned.project(&view), v.project(&view));
    }
}

#[test]
fn projection_cost_is_path_length_not_leaf_count() {
    // Even a 2^16-leaf value projects by walking one root-to-leaf
    // path; this completes instantly.
    let mut v = Faceted::leaf(0u64);
    for i in 0..16 {
        let tagged = v.map(&mut |x| x | (1 << i));
        v = Faceted::split(k(i), tagged, v);
    }
    assert_eq!(v.leaf_count(), 1 << 16);
    let view = View::from_labels((0..16).map(k));
    assert_eq!(*v.project(&view), (1u64 << 16) - 1);
    assert_eq!(*v.project(&View::empty()), 0);
}
