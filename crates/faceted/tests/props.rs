//! Property-based tests for the faceted-value laws of the paper.
//!
//! These correspond to Lemmas 1 and 2 (projection of the `⟨⟨·⟩⟩`
//! operator), the canonicity of faceted trees, and the view semantics
//! of the table join operator.

use faceted::{Branch, Branches, Faceted, FacetedList, Label, View};
use proptest::prelude::*;

const LABELS: u32 = 4;

fn arb_label() -> impl Strategy<Value = Label> {
    (0..LABELS).prop_map(Label::from_index)
}

fn arb_branch() -> impl Strategy<Value = Branch> {
    (arb_label(), any::<bool>())
        .prop_map(|(l, pos)| if pos { Branch::pos(l) } else { Branch::neg(l) })
}

fn arb_branches() -> impl Strategy<Value = Branches> {
    proptest::collection::vec(arb_branch(), 0..4).prop_map(Branches::from_iter)
}

fn arb_view() -> impl Strategy<Value = View> {
    proptest::collection::btree_set(arb_label(), 0..LABELS as usize).prop_map(View::from_labels)
}

fn arb_faceted(depth: u32) -> impl Strategy<Value = Faceted<i64>> {
    let leaf = (0i64..6).prop_map(Faceted::leaf);
    leaf.prop_recursive(depth, 32, 2, |inner| {
        (arb_label(), inner.clone(), inner).prop_map(|(l, h, w)| Faceted::split(l, h, w))
    })
}

/// Naive reference semantics: a faceted value *is* its view function.
fn denote(v: &Faceted<i64>, view: &View) -> i64 {
    *v.project(view)
}

fn all_views() -> Vec<View> {
    (0..(1u32 << LABELS))
        .map(|bits| {
            View::from_labels(
                (0..LABELS)
                    .filter(|i| bits & (1 << i) != 0)
                    .map(Label::from_index),
            )
        })
        .collect()
}

proptest! {
    /// Lemma 1: L(⟨⟨k ? V₁ : V₂⟩⟩) = L(V₁) if k ∈ L else L(V₂).
    #[test]
    fn lemma1_split_projects(label in arb_label(), a in arb_faceted(3), b in arb_faceted(3)) {
        let joined = Faceted::split(label, a.clone(), b.clone());
        for view in all_views() {
            let expected = if view.sees(label) { denote(&a, &view) } else { denote(&b, &view) };
            prop_assert_eq!(denote(&joined, &view), expected);
        }
    }

    /// Lemma 2: L(⟨⟨B ? V₁ : V₂⟩⟩) = L(V₁) if B ∼ L else L(V₂).
    #[test]
    fn lemma2_branches_project(b in arb_branches(), hi in arb_faceted(3), lo in arb_faceted(3)) {
        let joined = Faceted::split_branches(&b, hi.clone(), lo.clone());
        for view in all_views() {
            let expected = if b.visible_to(&view) { denote(&hi, &view) } else { denote(&lo, &view) };
            prop_assert_eq!(denote(&joined, &view), expected);
        }
    }

    /// Canonicity: two trees equal as view functions are structurally equal.
    #[test]
    fn canonical_form_is_unique(a in arb_faceted(4), b in arb_faceted(4)) {
        let same_denotation = all_views().iter().all(|v| denote(&a, v) == denote(&b, v));
        prop_assert_eq!(same_denotation, a == b);
    }

    /// Hash-consing: pointer (node-id) equality coincides with
    /// view-by-view semantic equality — the interning invariant the
    /// O(1) `PartialEq` relies on.
    #[test]
    fn pointer_equality_is_semantic_equality(a in arb_faceted(4), b in arb_faceted(4)) {
        let same_denotation = all_views().iter().all(|v| denote(&a, v) == denote(&b, v));
        prop_assert_eq!(same_denotation, a.node_id() == b.node_id());
    }

    /// map is pointwise on views.
    #[test]
    fn map_commutes_with_projection(a in arb_faceted(4), view in arb_view()) {
        let mapped = a.map(&mut |x| x * 3 + 1);
        prop_assert_eq!(denote(&mapped, &view), denote(&a, &view) * 3 + 1);
    }

    /// zip_with is pointwise on views.
    #[test]
    fn zip_commutes_with_projection(a in arb_faceted(3), b in arb_faceted(3), view in arb_view()) {
        let z = a.zip_with(&b, &mut |x, y| x * 10 + y);
        prop_assert_eq!(denote(&z, &view), denote(&a, &view) * 10 + denote(&b, &view));
    }

    /// assume(k, v) fixes the label: projection becomes independent of k.
    #[test]
    fn assume_fixes_label(a in arb_faceted(4), label in arb_label(), pol in any::<bool>()) {
        let fixed = a.assume(label, pol);
        for view in all_views() {
            let forced = if pol { view.with(label) } else {
                let mut v = view.clone();
                v.remove(label);
                v
            };
            prop_assert_eq!(denote(&fixed, &view), denote(&a, &forced));
        }
    }

    /// Table join agrees with the scalar semantics on every view:
    /// L(⟨⟨k ? T_H : T_L⟩⟩) = L(T_H) if k ∈ L else L(T_L).
    #[test]
    fn table_join_projects(
        label in arb_label(),
        hi in proptest::collection::vec((arb_branches(), 0i64..5), 0..5),
        lo in proptest::collection::vec((arb_branches(), 0i64..5), 0..5),
    ) {
        let th: FacetedList<i64> = hi.into_iter().collect();
        let tl: FacetedList<i64> = lo.into_iter().collect();
        let joined = FacetedList::facet_join(label, &th, &tl);
        for view in all_views() {
            let mut expected: Vec<i64> = if view.sees(label) {
                th.project(&view).into_iter().copied().collect()
            } else {
                tl.project(&view).into_iter().copied().collect()
            };
            let mut got: Vec<i64> = joined.project(&view).into_iter().copied().collect();
            expected.sort_unstable();
            got.sort_unstable();
            prop_assert_eq!(got, expected, "view {:?}", view);
        }
    }

    /// Early pruning never changes what a consistent view sees.
    #[test]
    fn prune_preserves_consistent_views(
        rows in proptest::collection::vec((arb_branches(), 0i64..5), 0..6),
        pc in arb_branches(),
    ) {
        let t: FacetedList<i64> = rows.into_iter().collect();
        let pruned = t.prune(&pc);
        for view in all_views() {
            if pc.visible_to(&view) {
                let mut a: Vec<i64> = t.project(&view).into_iter().copied().collect();
                let mut b: Vec<i64> = pruned.project(&view).into_iter().copied().collect();
                a.sort_unstable();
                b.sort_unstable();
                prop_assert_eq!(a, b);
            }
        }
    }

    /// Persistence: export → import → export is a fixpoint (the
    /// checkpoint format is stable under round trips), importing
    /// re-interns onto the *same* nodes, and the table stores shared
    /// sub-structure once (entry count == distinct-node count).
    #[test]
    fn export_import_export_is_a_fixpoint(
        roots in proptest::collection::vec(arb_faceted(4), 1..5),
    ) {
        let table = faceted::export_nodes(&roots, |v: &i64| v.to_string());
        let text = table.to_text();
        let parsed = faceted::NodeTable::from_text(&text).unwrap();
        prop_assert_eq!(&parsed, &table, "text form round-trips");
        let imported = faceted::import_nodes(&parsed, |s| s.parse::<i64>().ok()).unwrap();
        for (a, b) in roots.iter().zip(&imported) {
            prop_assert_eq!(a.node_id(), b.node_id(), "import re-interns onto the same node");
        }
        let again = faceted::export_nodes(&imported, |v: &i64| v.to_string());
        prop_assert_eq!(again, table, "fixpoint");
    }
}
