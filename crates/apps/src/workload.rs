//! Workload generators for the paper's parameter sweeps (§6.3).
//!
//! Every generator populates both the Jacqueline and the baseline
//! database the same way, so measurements compare identical data.

use jacqueline::{App, Request, Viewer};
use microdb::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{
    conf, conf_vanilla::ConfVanilla, courses, courses_vanilla::CoursesVanilla, health,
    health_vanilla::HealthVanilla,
};

/// Fixed RNG seed so every run measures identical data.
pub const SEED: u64 = 0x4a61_6371; // "Jacq"

/// A populated conference pair: Jacqueline and baseline apps with
/// `n_papers` papers and `n_users` users, plus interesting viewers.
pub struct ConfWorkload {
    /// The Jacqueline app.
    pub app: App,
    /// The baseline app.
    pub vanilla: ConfVanilla,
    /// A PC member's id (same in both databases).
    pub pc_member: i64,
    /// An ordinary author id.
    pub author: i64,
}

/// Populates conference databases: `n_users` users (first is the
/// chair, ~10% PC), `n_papers` papers with one review each.
#[must_use]
pub fn conference(n_users: usize, n_papers: usize) -> ConfWorkload {
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut app = App::new();
    conf::register(&mut app).unwrap();
    conf::set_phase(&app, conf::PHASE_REVIEW).unwrap();
    let mut vanilla = ConfVanilla::new();
    vanilla.set_phase(conf::PHASE_REVIEW);

    let mut user_ids = Vec::with_capacity(n_users);
    for i in 0..n_users.max(2) {
        let level = if i == 0 {
            "chair"
        } else if i % 10 == 1 {
            "pc"
        } else {
            "normal"
        };
        let row = vec![
            Value::from(format!("user{i}")),
            Value::from(level),
            Value::from(format!("org{}", i % 7)),
            Value::from(format!("user{i}@example.org")),
        ];
        let j = app.create("user_profile", row.clone()).unwrap();
        let v = vanilla.db.insert("user_profile", row).unwrap();
        assert_eq!(j, v, "workloads must line up across implementations");
        user_ids.push(j);
    }

    for i in 0..n_papers {
        let author = user_ids[rng.gen_range(0..user_ids.len())];
        let title = format!("Paper {i}: faceted systems");
        let pj = conf::submit_paper(&app, &Viewer::User(author), &title).unwrap();
        let pv = vanilla.submit_paper(&Viewer::User(author), &title);
        debug_assert!(pj > 0 && pv > 0);
        let reviewer = user_ids[rng.gen_range(0..user_ids.len())];
        conf::submit_review(&app, &Viewer::User(reviewer), pj, (i % 5) as i64, "fine").unwrap();
        vanilla.submit_review(&Viewer::User(reviewer), pv, (i % 5) as i64, "fine");
    }

    let pc_member = user_ids.get(1).copied().unwrap_or(user_ids[0]);
    let author = *user_ids.last().expect("at least two users");
    ConfWorkload {
        app,
        vanilla,
        pc_member,
        author,
    }
}

/// A deterministic request mix over the conference pages, sized for
/// the concurrent-executor benchmarks and stress tests: a rotation of
/// the Table 3 list pages and the Table 4 single-object pages across
/// `n_viewers` logged-in users.
///
/// Every request routes to a *read* page, so batches are
/// order-independent: the concurrent executor must produce the same
/// bytes as the sequential one.
#[must_use]
pub fn conference_requests(n_requests: usize, n_viewers: usize, n_papers: usize) -> Vec<Request> {
    let mut rng = StdRng::seed_from_u64(SEED ^ 0x7265_7173); // "reqs"
    let viewers = n_viewers.max(1) as i64;
    let papers = n_papers.max(1) as i64;
    (0..n_requests)
        .map(|i| {
            let viewer = Viewer::User(1 + rng.gen_range(0..viewers));
            match i % 4 {
                0 => Request::new("papers/all", viewer),
                1 => Request::new("users/all", viewer),
                2 => Request::new("papers/one", viewer)
                    .with_param("id", &(1 + rng.gen_range(0..papers)).to_string()),
                _ => Request::new("users/one", viewer)
                    .with_param("id", &(1 + rng.gen_range(0..viewers)).to_string()),
            }
        })
        .collect()
}

/// A populated health pair.
pub struct HealthWorkload {
    /// The Jacqueline app.
    pub app: App,
    /// The baseline app.
    pub vanilla: HealthVanilla,
    /// A doctor id.
    pub doctor: i64,
    /// A patient id.
    pub patient: i64,
}

/// Populates health databases: `n_users` individuals (patients with
/// one record each; every 5th user is a doctor, every 7th an
/// insurer), waivers for ~20% of records.
#[must_use]
pub fn health(n_users: usize) -> HealthWorkload {
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut app = App::new();
    health::register(&mut app).unwrap();
    let mut vanilla = HealthVanilla::new();

    let mut ids = Vec::with_capacity(n_users);
    for i in 0..n_users.max(3) {
        let role = if i % 5 == 0 {
            "doctor"
        } else if i % 7 == 0 {
            "insurer"
        } else {
            "patient"
        };
        let row = vec![Value::from(format!("person{i}")), Value::from(role)];
        let j = app.create("individual", row.clone()).unwrap();
        vanilla.db.insert("individual", row).unwrap();
        ids.push((j, role));
    }
    let doctors: Vec<i64> = ids
        .iter()
        .filter(|(_, r)| *r == "doctor")
        .map(|(i, _)| *i)
        .collect();
    let insurers: Vec<i64> = ids
        .iter()
        .filter(|(_, r)| *r == "insurer")
        .map(|(i, _)| *i)
        .collect();
    let patients: Vec<i64> = ids
        .iter()
        .filter(|(_, r)| *r == "patient")
        .map(|(i, _)| *i)
        .collect();

    for &p in &patients {
        let doctor = doctors[rng.gen_range(0..doctors.len().max(1))];
        let insurer = insurers.first().copied().unwrap_or(doctor);
        let row = vec![
            Value::Int(p),
            Value::Int(doctor),
            Value::Int(insurer),
            Value::from(format!("diagnosis-{p}")),
            Value::from(format!("treatment-{p}")),
        ];
        let rec = app.create("health_record", row.clone()).unwrap();
        vanilla.db.insert("health_record", row).unwrap();
        if rng.gen_bool(0.2) {
            let waiver = vec![Value::Int(rec), Value::Int(insurer), Value::Bool(true)];
            app.create("waiver", waiver.clone()).unwrap();
            vanilla.db.insert("waiver", waiver).unwrap();
        }
    }

    HealthWorkload {
        app,
        vanilla,
        doctor: doctors[0],
        patient: patients[0],
    }
}

/// A populated courses pair.
pub struct CoursesWorkload {
    /// The Jacqueline app.
    pub app: App,
    /// The baseline app.
    pub vanilla: CoursesVanilla,
    /// A student enrolled in roughly half the courses.
    pub student: i64,
    /// An instructor id.
    pub instructor: i64,
}

/// Populates course databases: `n_courses` courses each with an
/// instructor and one assignment; one student enrolled in every other
/// course.
#[must_use]
pub fn courses(n_courses: usize) -> CoursesWorkload {
    let mut app = App::new();
    courses::register(&mut app).unwrap();
    let mut vanilla = CoursesVanilla::new();

    let srow = vec![Value::from("sam"), Value::from("student")];
    let student = app.create("cuser", srow.clone()).unwrap();
    vanilla.db.insert("cuser", srow).unwrap();

    let mut first_instructor = None;
    for i in 0..n_courses {
        let irow = vec![Value::from(format!("prof{i}")), Value::from("instructor")];
        let teacher = app.create("cuser", irow.clone()).unwrap();
        vanilla.db.insert("cuser", irow).unwrap();
        first_instructor.get_or_insert(teacher);

        let crow = vec![Value::from(format!("Course {i}")), Value::Int(teacher)];
        let cj = app.create("course", crow.clone()).unwrap();
        let cv = vanilla.db.insert("course", crow).unwrap();

        let arow_j = vec![Value::Int(cj), Value::from(format!("hw-{i}"))];
        app.create("assignment", arow_j).unwrap();
        let arow_v = vec![Value::Int(cv), Value::from(format!("hw-{i}"))];
        vanilla.db.insert("assignment", arow_v).unwrap();

        if i % 2 == 0 {
            app.create("enrollment", vec![Value::Int(cj), Value::Int(student)])
                .unwrap();
            vanilla
                .db
                .insert("enrollment", vec![Value::Int(cv), Value::Int(student)])
                .unwrap();
        }
    }

    CoursesWorkload {
        app,
        vanilla,
        student,
        instructor: first_instructor.expect("at least one course"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conference_workload_lines_up() {
        let w = conference(8, 8);
        let mut w = w;
        assert_eq!(w.vanilla.db.all("paper").unwrap().len(), 8);
        assert!(w.app.db.physical_rows("paper").unwrap() >= 8);
    }

    #[test]
    fn health_workload_has_roles() {
        let mut w = health(10);
        assert!(w.vanilla.db.all("health_record").unwrap().len() >= 5);
        assert!(w.doctor > 0 && w.patient > 0);
    }

    #[test]
    fn courses_workload_enrolls_alternating() {
        let mut w = courses(6);
        assert_eq!(w.vanilla.db.all("course").unwrap().len(), 6);
        assert_eq!(w.vanilla.db.all("enrollment").unwrap().len(), 3);
        assert!(w.instructor > 0);
    }
}
