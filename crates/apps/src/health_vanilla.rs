//! Health record manager — hand-coded baseline.

use jacqueline::{VanillaDb, Viewer};
use microdb::{ColumnDef, ColumnType, Row, Value};

// [section: models]

/// The baseline health app.
pub struct HealthVanilla {
    /// The vanilla ORM.
    pub db: VanillaDb,
}

impl HealthVanilla {
    /// Creates the schema.
    ///
    /// # Panics
    ///
    /// Panics on schema errors (static program structure).
    #[must_use]
    pub fn new() -> HealthVanilla {
        let mut db = VanillaDb::new();
        db.create_table(
            "individual",
            vec![
                ColumnDef::new("name", ColumnType::Str),
                ColumnDef::new("role", ColumnType::Str),
            ],
        )
        .unwrap();
        db.create_table(
            "health_record",
            vec![
                ColumnDef::new("patient", ColumnType::Int),
                ColumnDef::new("doctor", ColumnType::Int),
                ColumnDef::new("insurer", ColumnType::Int),
                ColumnDef::new("diagnosis", ColumnType::Str),
                ColumnDef::new("treatment", ColumnType::Str),
            ],
        )
        .unwrap();
        db.create_table(
            "waiver",
            vec![
                ColumnDef::new("record", ColumnType::Int),
                ColumnDef::new("grantee", ColumnType::Int),
                ColumnDef::new("active", ColumnType::Bool),
            ],
        )
        .unwrap();
        db.create_index("waiver", "record").unwrap();
        db.create_index("health_record", "patient").unwrap();
        HealthVanilla { db }
    }

    // <policy>
    /// May `viewer` see the medical contents of `record_row`?
    pub fn policy_contents(&mut self, record_row: &Row, viewer: &Viewer) -> bool {
        let Some(v) = viewer.user_jid() else {
            return false;
        };
        if record_row[1].as_int() == Some(v) || record_row[2].as_int() == Some(v) {
            return true;
        }
        let record_id = record_row[0].as_int().unwrap_or(-1);
        self.db
            .filter_eq("waiver", "record", Value::Int(record_id))
            .unwrap_or_default()
            .iter()
            .any(|w| w[2] == Value::Int(v) && w[3] == Value::Bool(true))
    }
    // </policy>

    // [section: views]
    /// Summary page of all records.
    pub fn all_records_summary(&mut self, viewer: &Viewer) -> String {
        let records = self.db.all("health_record").unwrap_or_default();
        let mut page = String::from("== Records ==\n");
        for r in records {
            let name = self
                .db
                .get("individual", r[1].as_int().unwrap_or(-1))
                .ok()
                .flatten()
                .and_then(|u| u[1].as_str().map(str::to_owned))
                .unwrap_or_else(|| "(unknown)".to_owned());
            // <policy>
            let (diagnosis, treatment) = if self.policy_contents(&r, viewer) {
                (
                    r[4].as_str().unwrap_or("?").to_owned(),
                    r[5].as_str().unwrap_or("?").to_owned(),
                )
            } else {
                ("[protected]".to_owned(), "[protected]".to_owned())
            };
            // </policy>
            page.push_str(&format!("{name}: {diagnosis} / {treatment}\n"));
        }
        page
    }

    /// One record in detail.
    pub fn single_record(&mut self, viewer: &Viewer, record: i64) -> String {
        let Ok(Some(r)) = self.db.get("health_record", record) else {
            return "no such record".to_owned();
        };
        // <policy>
        let (diagnosis, treatment) = if self.policy_contents(&r, viewer) {
            (
                r[4].as_str().unwrap_or("?").to_owned(),
                r[5].as_str().unwrap_or("?").to_owned(),
            )
        } else {
            ("[protected]".to_owned(), "[protected]".to_owned())
        };
        // </policy>
        format!("patient #{}: {diagnosis} / {treatment}\n", r[1])
    }
}

impl Default for HealthVanilla {
    fn default() -> HealthVanilla {
        HealthVanilla::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_waiver_behaviour_matches() {
        let mut app = HealthVanilla::new();
        let patient = app
            .db
            .insert(
                "individual",
                vec![Value::from("pat"), Value::from("patient")],
            )
            .unwrap();
        let doctor = app
            .db
            .insert(
                "individual",
                vec![Value::from("doc"), Value::from("doctor")],
            )
            .unwrap();
        let insurer = app
            .db
            .insert(
                "individual",
                vec![Value::from("ins"), Value::from("insurer")],
            )
            .unwrap();
        let record = app
            .db
            .insert(
                "health_record",
                vec![
                    Value::Int(patient),
                    Value::Int(doctor),
                    Value::Int(insurer),
                    Value::from("flu"),
                    Value::from("rest"),
                ],
            )
            .unwrap();
        assert!(app
            .single_record(&Viewer::User(patient), record)
            .contains("flu"));
        assert!(app
            .single_record(&Viewer::User(insurer), record)
            .contains("[protected]"));
        app.db
            .insert(
                "waiver",
                vec![Value::Int(record), Value::Int(insurer), Value::Bool(true)],
            )
            .unwrap();
        assert!(app
            .single_record(&Viewer::User(insurer), record)
            .contains("flu"));
    }
}
