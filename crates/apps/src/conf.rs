//! Conference management system — the Jacqueline (policy-agnostic)
//! implementation (§6.1, Figure 7).
//!
//! Models: user profiles (with roles), papers, reviews, PC conflicts
//! and review assignments; permissions depend on the conference
//! phase. All information-flow policy code lives in [`register`]
//! between the `<policy>` markers; the views below contain none.

use faceted::Faceted;
use form::faceted_count;
use jacqueline::{label_for, App, ModelDef, Request, Response, Router, Session, Viewer};
use microdb::{ColumnDef, ColumnType, Value};

// [section: models]

/// Conference phases (stored in the `conf_state` singleton table).
pub const PHASE_SUBMISSION: &str = "submission";
/// Review phase.
pub const PHASE_REVIEW: &str = "review";
/// Final (decisions public) phase.
pub const PHASE_FINAL: &str = "final";

/// Reads the current phase at output time.
// <policy>
fn current_phase(db: &form::FormDb) -> String {
    db.all("conf_state")
        .ok()
        .and_then(|rows| {
            rows.iter()
                .next()
                .and_then(|(_, r)| r.fields[0].as_str().map(str::to_owned))
        })
        .unwrap_or_else(|| PHASE_SUBMISSION.to_owned())
}
// </policy>

/// The (public) role of a user. The `level` column is unprotected, so
/// every facet of the profile agrees on it — the empty-view projection
/// is exact.
// <policy>
fn role_of(db: &form::FormDb, user: i64) -> Option<String> {
    let obj = db.get("user_profile", user).ok()?;
    match form::object_field(&obj, 1).project(&faceted::View::empty()) {
        Value::Str(s) => Some(s.clone()),
        _ => None,
    }
}
// </policy>

/// Whether `user` has PC or chair privileges.
// <policy>
fn is_committee(db: &form::FormDb, user: i64) -> bool {
    matches!(role_of(db, user).as_deref(), Some("pc") | Some("chair"))
}
// </policy>

/// Whether `user` has a conflict with `paper`.
// <policy>
fn has_conflict(db: &form::FormDb, paper: i64, user: i64) -> bool {
    let conflicts = db
        .filter_eq("paper_pc_conflict", "paper", Value::Int(paper))
        .unwrap_or_default();
    let mine = conflicts.filter_rows(|g| g.fields[1] == Value::Int(user));
    *faceted_count(&mine).project(&faceted::View::empty()) > 0
}
// </policy>

/// Registers the conference models (schemas *and* policies) on an
/// app. This file's only policy code is here — the paper's
/// `models.py`.
///
/// # Errors
///
/// Propagates registration errors.
pub fn register(app: &mut App) -> form::FormResult<()> {
    app.register_model(ModelDef::public(
        "conf_state",
        vec![ColumnDef::new("phase", ColumnType::Str)],
    ))?;
    app.register_model(ModelDef::public(
        "paper_pc_conflict",
        vec![
            ColumnDef::new("paper", ColumnType::Int),
            ColumnDef::new("pc", ColumnType::Int),
        ],
    ))?;
    app.register_model(ModelDef::public(
        "review_assignment",
        vec![
            ColumnDef::new("paper", ColumnType::Int),
            ColumnDef::new("pc", ColumnType::Int),
        ],
    ))?;

    let user_profile = ModelDef::public(
        "user_profile",
        vec![
            ColumnDef::new("name", ColumnType::Str),
            ColumnDef::new("level", ColumnType::Str),
            ColumnDef::new("affiliation", ColumnType::Str),
            ColumnDef::new("email", ColumnType::Str),
        ],
    )
    // <policy>
    .with_policy(label_for(
        "restrict_email",
        vec![3],
        |_row| vec![Value::from("[email withheld]")],
        |args| {
            // Email visible to the user themselves and to the chair.
            let viewer = args.viewer.user_jid();
            if viewer == Some(args.jid) {
                return Faceted::leaf(true);
            }
            let Some(v) = viewer else {
                return Faceted::leaf(false);
            };
            Faceted::leaf(role_of(args.db, v).as_deref() == Some("chair"))
        },
    ));
    // </policy>
    app.register_model(user_profile)?;

    let paper = ModelDef::public(
        "paper",
        vec![
            ColumnDef::new("title", ColumnType::Str),
            ColumnDef::new("author", ColumnType::Int),
            ColumnDef::new("accepted", ColumnType::Bool),
        ],
    )
    // <policy>
    .with_policy(label_for(
        // Figure 7: jeeves_restrict_author.
        "restrict_author",
        vec![1],
        |_row| vec![Value::Int(-1)],
        |args| {
            if current_phase(args.db) == PHASE_FINAL {
                return Faceted::leaf(true);
            }
            let Some(viewer) = args.viewer.user_jid() else {
                return Faceted::leaf(false);
            };
            if has_conflict(args.db, args.jid, viewer) {
                return Faceted::leaf(false);
            }
            let is_author = args.row[1].as_int() == Some(viewer);
            Faceted::leaf(is_author || is_committee(args.db, viewer))
        },
    ))
    // </policy>
    // <policy>
    .with_policy(label_for(
        "restrict_title",
        vec![0],
        |_row| vec![Value::from("(title hidden)")],
        |args| {
            if current_phase(args.db) == PHASE_FINAL {
                return Faceted::leaf(true);
            }
            let Some(viewer) = args.viewer.user_jid() else {
                return Faceted::leaf(false);
            };
            let is_author = args.row[1].as_int() == Some(viewer);
            Faceted::leaf(is_author || is_committee(args.db, viewer))
        },
    ));
    // </policy>
    app.register_model(paper)?;

    let review = ModelDef::public(
        "review",
        vec![
            ColumnDef::new("paper", ColumnType::Int),
            ColumnDef::new("reviewer", ColumnType::Int),
            ColumnDef::new("score", ColumnType::Int),
            ColumnDef::new("text", ColumnType::Str),
        ],
    )
    // <policy>
    .with_policy(label_for(
        "restrict_reviewer",
        vec![1],
        |_row| vec![Value::Int(-1)],
        |args| {
            // Reviewer identity: the reviewer themselves and committee.
            let Some(viewer) = args.viewer.user_jid() else {
                return Faceted::leaf(false);
            };
            let is_reviewer = args.row[1].as_int() == Some(viewer);
            Faceted::leaf(is_reviewer || is_committee(args.db, viewer))
        },
    ))
    // </policy>
    // <policy>
    .with_policy(label_for(
        "restrict_review_text",
        vec![3],
        |_row| vec![Value::from("[review hidden]")],
        |args| {
            // Review contents: committee always; the paper's author
            // once the final phase starts.
            let Some(viewer) = args.viewer.user_jid() else {
                return Faceted::leaf(false);
            };
            if is_committee(args.db, viewer) {
                return Faceted::leaf(true);
            }
            if current_phase(args.db) == PHASE_FINAL {
                let paper = args.row[0].as_int().unwrap_or(-1);
                let author = args
                    .db
                    .get("paper", paper)
                    .ok()
                    .map(|o| form::object_field(&o, 1))
                    .map(|f| f.map(&mut |v| v.as_int() == Some(viewer)));
                if let Some(f) = author {
                    return f;
                }
            }
            Faceted::leaf(false)
        },
    ));
    // </policy>
    app.register_model(review)?;

    // Foreign-key indexes (Django defaults).
    app.db.create_index("paper_pc_conflict", "paper")?;
    app.db.create_index("review", "paper")?;
    app.db.create_index("review_assignment", "paper")?;

    Ok(())
}

/// Sets the conference phase.
///
/// # Errors
///
/// Propagates database errors.
pub fn set_phase(app: &App, phase: &str) -> form::FormResult<()> {
    let existing: Vec<i64> = app.all("conf_state")?.iter().map(|(_, r)| r.jid).collect();
    for jid in existing {
        app.db
            .delete("conf_state", jid, &faceted::Branches::new())?;
    }
    app.create("conf_state", vec![Value::from(phase)])?;
    Ok(())
}

// [section: views]
// ---------------------------------------------------------------------
// Views (controllers): completely policy-agnostic — no checks anywhere.
// ---------------------------------------------------------------------

/// View all papers (the Table 3 / Figure 9a stress-test page).
pub fn all_papers(app: &App, viewer: &Viewer) -> String {
    let mut session = Session::new(viewer.clone());
    let papers = app.all("paper").unwrap_or_default();
    let mut page = String::from("== Papers ==\n");
    for row in session.view_rows(app, &papers) {
        let title = row[0].as_str().unwrap_or("?").to_owned();
        let author = author_name(app, &mut session, &row[1]);
        page.push_str(&format!("{title} by {author}\n"));
    }
    page
}

/// One paper's line of [`all_papers`], rendered for `viewer` through
/// the same faceted projection the full page runs — the render
/// cache's repair path re-renders exactly these. A paper the viewer
/// cannot see (or that no longer exists) contributes no bytes, which
/// matches the full page's guard-filtered row scan.
pub fn paper_fragment(app: &App, viewer: &Viewer, jid: i64) -> String {
    let mut session = Session::new(viewer.clone());
    let Ok(paper) = app.get("paper", jid) else {
        return String::new();
    };
    let Some(row) = session.view_object(app, &paper) else {
        return String::new();
    };
    let title = row[0].as_str().unwrap_or("?").to_owned();
    let author = author_name(app, &mut session, &row[1]);
    format!("{title} by {author}\n")
}

fn author_name(app: &App, session: &mut Session, author: &Value) -> String {
    match author.as_int() {
        Some(jid) if jid >= 0 => match app.get("user_profile", jid) {
            Ok(profile) => session.view_object(app, &profile).map_or_else(
                || "(unknown)".to_owned(),
                |r| r[0].as_str().unwrap_or("?").to_owned(),
            ),
            Err(_) => "(unknown)".to_owned(),
        },
        _ => "(anonymous)".to_owned(),
    }
}

/// View one paper with its reviews (Table 4's representative action).
pub fn single_paper(app: &App, viewer: &Viewer, paper: i64) -> String {
    let mut session = Session::new(viewer.clone());
    let Ok(obj) = app.get("paper", paper) else {
        return "no such paper".to_owned();
    };
    let Some(row) = session.view_object(app, &obj) else {
        return "no such paper".to_owned();
    };
    let title = row[0].as_str().unwrap_or("?").to_owned();
    let author = author_name(app, &mut session, &row[1]);
    let mut page = format!("= {title} by {author} =\n");
    let reviews = app
        .filter_eq("review", "paper", Value::Int(paper))
        .unwrap_or_default();
    for r in session.view_rows(app, &reviews) {
        let reviewer = author_name(app, &mut session, &r[1]);
        page.push_str(&format!(
            "review by {reviewer}: score {} — {}\n",
            r[2],
            r[3].as_str().unwrap_or("?")
        ));
    }
    page
}

/// View all user profiles (Table 3).
pub fn all_users(app: &App, viewer: &Viewer) -> String {
    let mut session = Session::new(viewer.clone());
    let users = app.all("user_profile").unwrap_or_default();
    let mut page = String::from("== Users ==\n");
    for row in session.view_rows(app, &users) {
        page.push_str(&format!(
            "{} ({}) <{}>\n",
            row[0].as_str().unwrap_or("?"),
            row[2].as_str().unwrap_or("?"),
            row[3].as_str().unwrap_or("?"),
        ));
    }
    page
}

/// View one user profile (Table 4).
pub fn single_user(app: &App, viewer: &Viewer, user: i64) -> String {
    let mut session = Session::new(viewer.clone());
    let Ok(obj) = app.get("user_profile", user) else {
        return "no such user".to_owned();
    };
    match session.view_object(app, &obj) {
        Some(row) => format!(
            "{} ({}) <{}>\n",
            row[0].as_str().unwrap_or("?"),
            row[2].as_str().unwrap_or("?"),
            row[3].as_str().unwrap_or("?"),
        ),
        None => "no such user".to_owned(),
    }
}

/// Submit a paper (a write action; policy-agnostic).
///
/// # Errors
///
/// Propagates database errors.
pub fn submit_paper(app: &App, viewer: &Viewer, title: &str) -> form::FormResult<i64> {
    let author = viewer.user_jid().unwrap_or(-1);
    app.create(
        "paper",
        vec![Value::from(title), Value::Int(author), Value::Bool(false)],
    )
}

/// Submit a review.
///
/// # Errors
///
/// Propagates database errors.
pub fn submit_review(
    app: &App,
    viewer: &Viewer,
    paper: i64,
    score: i64,
    text: &str,
) -> form::FormResult<i64> {
    let reviewer = viewer.user_jid().unwrap_or(-1);
    app.create(
        "review",
        vec![
            Value::Int(paper),
            Value::Int(reviewer),
            Value::Int(score),
            Value::from(text),
        ],
    )
}

/// Builds the conference router (the MVC wiring). Every page is a
/// read-only route, so the concurrent executor serves them in
/// parallel; the two submission actions are write routes. Each route
/// declares its table footprint — including the tables its models'
/// *policies* consult at output time (`conf_state` for the phase,
/// `user_profile` for roles, `paper_pc_conflict` for conflicts) — so
/// the executor locks at table granularity: submitting a review no
/// longer blocks the user list.
#[must_use]
pub fn router() -> Router {
    let mut r = Router::new();
    r.route_read_tables(
        "papers/all",
        &["conf_state", "paper", "paper_pc_conflict", "user_profile"],
        |app, req: &Request| Response::ok(all_papers(app, &req.viewer)),
    );
    // Fragment repair: one line per paper, spliced from the write
    // journal on single-paper writes. `users/all` deliberately does
    // NOT register fragments — the chair check in `restrict_email`
    // makes one user's row change how *every* user's line renders,
    // violating the no-cross-row-dependence contract.
    r.route_fragments(
        "papers/all",
        "paper",
        |_, _| ("== Papers ==\n".to_owned(), String::new()),
        |app, req: &Request, jid| paper_fragment(app, &req.viewer, jid),
    );
    r.route_read_tables(
        "papers/one",
        &[
            "conf_state",
            "paper",
            "paper_pc_conflict",
            "review",
            "user_profile",
        ],
        |app, req: &Request| match req.int_param("id") {
            Some(id) => Response::ok(single_paper(app, &req.viewer, id)),
            None => Response::bad_request("papers/one requires a numeric id parameter"),
        },
    );
    r.route_read_tables("users/all", &["user_profile"], |app, req: &Request| {
        Response::ok(all_users(app, &req.viewer))
    });
    r.route_read_tables(
        "users/one",
        &["user_profile"],
        |app, req: &Request| match req.int_param("id") {
            Some(id) => Response::ok(single_user(app, &req.viewer, id)),
            None => Response::bad_request("users/one requires a numeric id parameter"),
        },
    );
    r.route_tables("papers/submit", &[], &["paper"], |app, req: &Request| {
        if req.viewer.user_jid().is_none() {
            return Response::forbidden("submitting a paper requires a login session");
        }
        match req.params.get("title") {
            Some(title) => match submit_paper(app, &req.viewer, title) {
                Ok(jid) => Response::ok(jid.to_string()),
                Err(e) => Response::error(&e.to_string()),
            },
            None => Response::bad_request("papers/submit requires a title parameter"),
        }
    });
    r.route_tables("reviews/submit", &[], &["review"], |app, req: &Request| {
        if req.viewer.user_jid().is_none() {
            return Response::forbidden("submitting a review requires a login session");
        }
        match (req.int_param("paper"), req.int_param("score")) {
            (Some(paper), Some(score)) => {
                let text = req.params.get("text").map_or("", String::as_str);
                match submit_review(app, &req.viewer, paper, score, text) {
                    Ok(jid) => Response::ok(jid.to_string()),
                    Err(e) => Response::error(&e.to_string()),
                }
            }
            _ => Response::bad_request("reviews/submit requires numeric paper and score"),
        }
    });
    // Render-cache key canonicalization: the object pages read only
    // `id`, the list pages read nothing — stray params and
    // denormalized ids (`id=07`) fold onto one cached entry.
    r.canonicalize_int_params("papers/one", &["id"]);
    r.canonicalize_int_params("users/one", &["id"]);
    r.canonicalize_int_params("papers/all", &[]);
    r.canonicalize_int_params("users/all", &[]);
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (App, i64, i64, i64) {
        let mut app = App::new();
        register(&mut app).unwrap();
        set_phase(&app, PHASE_REVIEW).unwrap();
        let chair = app
            .create(
                "user_profile",
                vec![
                    Value::from("carol chair"),
                    Value::from("chair"),
                    Value::from("CMU"),
                    Value::from("carol@cmu.edu"),
                ],
            )
            .unwrap();
        let author = app
            .create(
                "user_profile",
                vec![
                    Value::from("alice author"),
                    Value::from("normal"),
                    Value::from("MIT"),
                    Value::from("alice@mit.edu"),
                ],
            )
            .unwrap();
        let paper = submit_paper(&app, &Viewer::User(author), "Faceted Everything").unwrap();
        (app, chair, author, paper)
    }

    #[test]
    fn author_sees_own_paper_title() {
        let (app, _, author, _) = setup();
        let page = all_papers(&app, &Viewer::User(author));
        assert!(page.contains("Faceted Everything"), "{page}");
        assert!(page.contains("alice author"), "{page}");
    }

    #[test]
    fn outsider_sees_placeholders() {
        let (app, _, _, _) = setup();
        let outsider = app
            .create(
                "user_profile",
                vec![
                    Value::from("oscar"),
                    Value::from("normal"),
                    Value::from("X"),
                    Value::from("o@x.org"),
                ],
            )
            .unwrap();
        let page = all_papers(&app, &Viewer::User(outsider));
        assert!(page.contains("(title hidden)"), "{page}");
        assert!(!page.contains("Faceted Everything"), "{page}");
        assert!(!page.contains("alice author"), "{page}");
    }

    #[test]
    fn chair_sees_everything() {
        let (app, chair, _, _) = setup();
        let page = all_papers(&app, &Viewer::User(chair));
        assert!(page.contains("Faceted Everything"));
        assert!(page.contains("alice author"));
    }

    #[test]
    fn conflicted_pc_member_cannot_see_author() {
        let (app, _, _, paper) = setup();
        let pc = app
            .create(
                "user_profile",
                vec![
                    Value::from("pat pc"),
                    Value::from("pc"),
                    Value::from("UW"),
                    Value::from("pat@uw.edu"),
                ],
            )
            .unwrap();
        app.create("paper_pc_conflict", vec![Value::Int(paper), Value::Int(pc)])
            .unwrap();
        let page = all_papers(&app, &Viewer::User(pc));
        assert!(page.contains("(anonymous)"), "{page}");
    }

    #[test]
    fn final_phase_reveals_authors() {
        let (app, _, _, _) = setup();
        set_phase(&app, PHASE_FINAL).unwrap();
        let page = all_papers(&app, &Viewer::Anonymous);
        assert!(page.contains("alice author"), "{page}");
        assert!(page.contains("Faceted Everything"));
    }

    #[test]
    fn email_visible_to_self_and_chair_only() {
        let (app, chair, author, _) = setup();
        let mine = single_user(&app, &Viewer::User(author), author);
        assert!(mine.contains("alice@mit.edu"));
        let chairs = single_user(&app, &Viewer::User(chair), author);
        assert!(chairs.contains("alice@mit.edu"));
        let anon = single_user(&app, &Viewer::Anonymous, author);
        assert!(anon.contains("[email withheld]"), "{anon}");
    }

    #[test]
    fn review_text_hidden_until_final_phase() {
        let (app, chair, author, paper) = setup();
        let pc = app
            .create(
                "user_profile",
                vec![
                    Value::from("pat pc"),
                    Value::from("pc"),
                    Value::from("UW"),
                    Value::from("pat@uw.edu"),
                ],
            )
            .unwrap();
        submit_review(&app, &Viewer::User(pc), paper, 2, "solid work").unwrap();

        let author_view = single_paper(&app, &Viewer::User(author), paper);
        assert!(author_view.contains("[review hidden]"), "{author_view}");
        let chair_view = single_paper(&app, &Viewer::User(chair), paper);
        assert!(chair_view.contains("solid work"));

        set_phase(&app, PHASE_FINAL).unwrap();
        let author_final = single_paper(&app, &Viewer::User(author), paper);
        assert!(author_final.contains("solid work"), "{author_final}");
        assert!(
            author_final.contains("(anonymous)") || !author_final.contains("pat pc"),
            "reviewer identity stays hidden from the author: {author_final}"
        );
    }

    #[test]
    fn router_dispatches_pages() {
        let (app, _, author, paper) = setup();
        let r = router();
        let resp = r.handle(
            &app,
            &Request::new("papers/one", Viewer::User(author)).with_param("id", &paper.to_string()),
        );
        assert_eq!(resp.status, 200);
        assert!(resp.body.contains("Faceted Everything"));
        assert_eq!(
            r.handle(&app, &Request::new("zzz", Viewer::Anonymous))
                .status,
            404
        );
    }
}
