//! Course manager — Jacqueline implementation (§6.1).
//!
//! Instructors and students organize assignments and submissions;
//! policies depend on the role of the viewer and on state (whether an
//! assignment has been submitted / graded). The "show all courses"
//! page also looks up each course's instructor — the computation that
//! makes Early Pruning *necessary* (Table 5): without pruning the
//! page is one faceted string whose facet count doubles per course.

use faceted::{Faceted, FacetedList};
use form::{faceted_count, object_field};
use jacqueline::{label_for, App, ModelDef, Request, Response, Router, Session, Viewer};
use microdb::{ColumnDef, ColumnType, Value};

// [section: models]

/// Registers the course-manager models and policies.
///
/// # Errors
///
/// Propagates registration errors.
pub fn register(app: &mut App) -> form::FormResult<()> {
    app.register_model(ModelDef::public(
        "cuser",
        vec![
            ColumnDef::new("name", ColumnType::Str),
            ColumnDef::new("role", ColumnType::Str), // instructor | student
        ],
    ))?;
    app.register_model(ModelDef::public(
        "enrollment",
        vec![
            ColumnDef::new("course", ColumnType::Int),
            ColumnDef::new("student", ColumnType::Int),
        ],
    ))?;
    app.register_model(ModelDef::public(
        "assignment",
        vec![
            ColumnDef::new("course", ColumnType::Int),
            ColumnDef::new("title", ColumnType::Str),
        ],
    ))?;

    let course = ModelDef::public(
        "course",
        vec![
            ColumnDef::new("title", ColumnType::Str),
            ColumnDef::new("instructor", ColumnType::Int),
        ],
    )
    // <policy>
    .with_policy(label_for(
        // Course details visible to the instructor and enrolled
        // students; everyone else sees a closed listing.
        "restrict_course",
        vec![0, 1],
        |_row| vec![Value::from("[closed course]"), Value::Int(-1)],
        |args| {
            let Some(viewer) = args.viewer.user_jid() else {
                return Faceted::leaf(false);
            };
            if args.row[1].as_int() == Some(viewer) {
                return Faceted::leaf(true);
            }
            let enrolled = args
                .db
                .filter_eq("enrollment", "course", Value::Int(args.jid))
                .unwrap_or_default()
                .filter_rows(|e| e.fields[1] == Value::Int(viewer));
            faceted_count(&enrolled).map(&mut |n| *n > 0)
        },
    ));
    // </policy>
    app.register_model(course)?;

    let submission = ModelDef::public(
        "submission",
        vec![
            ColumnDef::new("assignment", ColumnType::Int),
            ColumnDef::new("student", ColumnType::Int),
            ColumnDef::new("text", ColumnType::Str),
            ColumnDef::new("grade", ColumnType::Int),
            ColumnDef::new("graded", ColumnType::Bool),
        ],
    )
    // <policy>
    .with_policy(label_for(
        // Submission text: the student and the course instructor.
        "restrict_submission",
        vec![2],
        |_row| vec![Value::from("[submission hidden]")],
        |args| {
            let Some(viewer) = args.viewer.user_jid() else {
                return Faceted::leaf(false);
            };
            if args.row[1].as_int() == Some(viewer) {
                return Faceted::leaf(true);
            }
            Faceted::leaf(instructor_of_assignment(args.db, args.row[0].as_int()) == Some(viewer))
        },
    ))
    // </policy>
    // <policy>
    .with_policy(label_for(
        // Grade: instructor always; the student once graded — a
        // stateful policy on the row itself at output time.
        "restrict_grade",
        vec![3],
        |_row| vec![Value::Int(-1)],
        |args| {
            let Some(viewer) = args.viewer.user_jid() else {
                return Faceted::leaf(false);
            };
            if instructor_of_assignment(args.db, args.row[0].as_int()) == Some(viewer) {
                return Faceted::leaf(true);
            }
            if args.row[1].as_int() != Some(viewer) {
                return Faceted::leaf(false);
            }
            // Graded-ness is read from the *current* row state.
            args.db
                .get("submission", args.jid)
                .ok()
                .map(|o| object_field(&o, 4))
                .map_or(Faceted::leaf(false), |f| {
                    f.map(&mut |v| v.as_bool() == Some(true))
                })
        },
    ));
    // </policy>
    app.register_model(submission)?;

    // Foreign-key indexes (Django defaults).
    app.db.create_index("enrollment", "course")?;
    app.db.create_index("assignment", "course")?;
    app.db.create_index("submission", "assignment")?;

    Ok(())
}

// <policy>
fn instructor_of_assignment(db: &form::FormDb, assignment: Option<i64>) -> Option<i64> {
    let a = db.get("assignment", assignment?).ok()?;
    let course = a.as_leaf().cloned().flatten()?[0].as_int()?;
    let c = db.get("course", course).ok()?;
    // The instructor field is protected; policies may consult the
    // secret facet (they run in the trusted resolver).
    object_field(&c, 1)
        .leaves()
        .into_iter()
        .filter_map(|(_, v)| v.as_int())
        .find(|v| *v >= 0)
}
// </policy>

// [section: views]
/// The Table 5 / Figure 9c page, Early Pruning ON: one session
/// resolves each course label once; work stays linear.
pub fn all_courses(app: &App, viewer: &Viewer) -> String {
    let mut session = Session::new(viewer.clone());
    let courses = app.all("course").unwrap_or_default();
    let mut page = String::from("== Courses ==\n");
    for row in session.view_rows(app, &courses) {
        let instructor = row[1].as_int().unwrap_or(-1);
        let name = if instructor >= 0 {
            app.get("cuser", instructor)
                .ok()
                .and_then(|o| session.view_object(app, &o))
                .map_or_else(
                    || "(unknown)".to_owned(),
                    |r| r[0].as_str().unwrap_or("?").to_owned(),
                )
        } else {
            "(unlisted)".to_owned()
        };
        page.push_str(&format!(
            "{} taught by {name}\n",
            row[0].as_str().unwrap_or("?")
        ));
    }
    page
}

/// One course's line of [`all_courses`], rendered for `viewer`
/// through the same faceted projection the full page runs — the
/// render cache's repair path re-renders exactly these. A course the
/// viewer cannot see (or that no longer exists) contributes no bytes,
/// matching the full page's guard-filtered row scan. The enrollment
/// table (which the course policy consults) is a *different*
/// footprint table, so any enrollment change blocks repair outright.
pub fn course_fragment(app: &App, viewer: &Viewer, jid: i64) -> String {
    let mut session = Session::new(viewer.clone());
    let Ok(course) = app.get("course", jid) else {
        return String::new();
    };
    let Some(row) = session.view_object(app, &course) else {
        return String::new();
    };
    let instructor = row[1].as_int().unwrap_or(-1);
    let name = if instructor >= 0 {
        app.get("cuser", instructor)
            .ok()
            .and_then(|o| session.view_object(app, &o))
            .map_or_else(
                || "(unknown)".to_owned(),
                |r| r[0].as_str().unwrap_or("?").to_owned(),
            )
    } else {
        "(unlisted)".to_owned()
    };
    format!("{} taught by {name}\n", row[0].as_str().unwrap_or("?"))
}

/// The same page with Early Pruning OFF: the page is built as one
/// *faceted* string — every course's label doubles the facet count,
/// reproducing the blowup of Table 5. Policies are resolved only at
/// the final sink.
pub fn all_courses_no_pruning(app: &App, viewer: &Viewer) -> String {
    let courses: FacetedList<form::GuardedRow> = app.all("course").unwrap_or_default();
    let mut page: Faceted<String> = Faceted::leaf(String::from("== Courses ==\n"));
    for (guard, row) in courses.iter() {
        // The faceted line for this course: visible views see the
        // title + instructor lookup, others see nothing.
        let instructor = row.fields[1].as_int().unwrap_or(-1);
        let name = if instructor >= 0 {
            match app.get("cuser", instructor) {
                Ok(o) => object_field(&o, 0).map(&mut |v| v.as_str().unwrap_or("?").to_owned()),
                Err(_) => Faceted::leaf("(unknown)".to_owned()),
            }
        } else {
            Faceted::leaf("(unlisted)".to_owned())
        };
        let title = row.fields[0].as_str().unwrap_or("?").to_owned();
        let line = name.map(&mut |n| format!("{title} taught by {n}\n"));
        let extended = page.zip_with(&line, &mut |p, l| format!("{p}{l}"));
        page = Faceted::split_branches(guard, extended, page);
    }
    app.show_value(viewer, &page)
}

/// A student's submission view.
pub fn view_submission(app: &App, viewer: &Viewer, submission: i64) -> String {
    let mut session = Session::new(viewer.clone());
    let Ok(obj) = app.get("submission", submission) else {
        return "no such submission".to_owned();
    };
    match session.view_object(app, &obj) {
        Some(row) => {
            let grade = match row[3].as_int() {
                Some(g) if g >= 0 => g.to_string(),
                _ => "(not released)".to_owned(),
            };
            format!("{} — grade {grade}\n", row[2].as_str().unwrap_or("?"))
        }
        None => "no such submission".to_owned(),
    }
}

/// Grades a submission (instructor action): a stateful update the
/// grade policy observes. The update preserves facet structure — the
/// public grade facet stays hidden. Takes `&self` access like every
/// row-level write, so the grade route runs under footprint locks.
///
/// # Errors
///
/// Propagates database errors.
pub fn grade_submission(app: &App, submission: i64, grade: i64) -> form::FormResult<()> {
    app.update_fields(
        "submission",
        submission,
        &[(3, Value::Int(grade)), (4, Value::Bool(true))],
        &faceted::Branches::new(),
    )
}

/// Submits an assignment answer (student action).
///
/// # Errors
///
/// Propagates database errors.
pub fn submit_answer(
    app: &App,
    viewer: &Viewer,
    assignment: i64,
    text: &str,
) -> form::FormResult<i64> {
    let student = viewer.user_jid().unwrap_or(-1);
    app.create(
        "submission",
        vec![
            Value::Int(assignment),
            Value::Int(student),
            Value::from(text),
            Value::Int(-1),
            Value::Bool(false),
        ],
    )
}

/// Builds the course-manager router. Read pages declare the tables
/// their policies consult at output time (`enrollment` for course
/// visibility, `assignment`/`course` for the submission and grade
/// policies); the two write actions require a login session and
/// declare their write footprints.
#[must_use]
pub fn router() -> Router {
    let mut r = Router::new();
    r.route_read_tables(
        "courses/all",
        &["course", "cuser", "enrollment"],
        |app, req: &Request| Response::ok(all_courses(app, &req.viewer)),
    );
    r.route_read_tables(
        "courses/all_unpruned",
        &["course", "cuser", "enrollment"],
        |app, req: &Request| Response::ok(all_courses_no_pruning(app, &req.viewer)),
    );
    // Fragment repair for both course listings: one line per course.
    // The unpruned ablation page renders byte-identically to the
    // pruned one (the Early Pruning soundness the differential suite
    // pins), so one fragment renderer serves both — and the executor
    // verifies the decomposition against each page's actual bytes on
    // every store.
    for path in ["courses/all", "courses/all_unpruned"] {
        r.route_fragments(
            path,
            "course",
            |_, _| ("== Courses ==\n".to_owned(), String::new()),
            |app, req: &Request, jid| course_fragment(app, &req.viewer, jid),
        );
    }
    r.route_read_tables(
        "submissions/one",
        &["submission", "assignment", "course"],
        |app, req: &Request| match req.int_param("id") {
            Some(id) => Response::ok(view_submission(app, &req.viewer, id)),
            None => Response::bad_request("submissions/one requires a numeric id parameter"),
        },
    );
    r.route_tables(
        "submissions/submit",
        &[],
        &["submission"],
        |app, req: &Request| {
            if req.viewer.user_jid().is_none() {
                return Response::forbidden("submitting an answer requires a login session");
            }
            match req.int_param("assignment") {
                Some(assignment) => {
                    let text = req.params.get("text").map_or("", String::as_str);
                    match submit_answer(app, &req.viewer, assignment, text) {
                        Ok(jid) => Response::ok(jid.to_string()),
                        Err(e) => Response::error(&e.to_string()),
                    }
                }
                None => Response::bad_request("submissions/submit requires a numeric assignment"),
            }
        },
    );
    r.route_tables(
        "submissions/grade",
        &[],
        &["submission"],
        |app, req: &Request| {
            if req.viewer.user_jid().is_none() {
                return Response::forbidden("grading requires a login session");
            }
            match (req.int_param("id"), req.int_param("grade")) {
                (Some(id), Some(grade)) => match grade_submission(app, id, grade) {
                    Ok(()) => Response::ok("graded".to_owned()),
                    Err(e) => Response::error(&e.to_string()),
                },
                _ => Response::bad_request("submissions/grade requires numeric id and grade"),
            }
        },
    );
    // Render-cache key canonicalization (see the conf router): only
    // `id` distinguishes submission pages; the course lists read no
    // params at all.
    r.canonicalize_int_params("submissions/one", &["id"]);
    r.canonicalize_int_params("courses/all", &[]);
    r.canonicalize_int_params("courses/all_unpruned", &[]);
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (App, i64, i64, i64) {
        let mut app = App::new();
        register(&mut app).unwrap();
        let teacher = app
            .create(
                "cuser",
                vec![Value::from("prof"), Value::from("instructor")],
            )
            .unwrap();
        let student = app
            .create("cuser", vec![Value::from("sam"), Value::from("student")])
            .unwrap();
        let course = app
            .create("course", vec![Value::from("PL 101"), Value::Int(teacher)])
            .unwrap();
        app.create("enrollment", vec![Value::Int(course), Value::Int(student)])
            .unwrap();
        (app, teacher, student, course)
    }

    #[test]
    fn enrolled_student_sees_course() {
        let (app, _, student, _) = setup();
        let page = all_courses(&app, &Viewer::User(student));
        assert!(page.contains("PL 101"), "{page}");
        assert!(page.contains("prof"));
    }

    #[test]
    fn outsider_sees_closed_listing() {
        let (app, _, _, _) = setup();
        let outsider = app
            .create("cuser", vec![Value::from("eve"), Value::from("student")])
            .unwrap();
        let page = all_courses(&app, &Viewer::User(outsider));
        assert!(page.contains("[closed course]"), "{page}");
        assert!(!page.contains("PL 101"));
    }

    #[test]
    fn pruned_and_unpruned_pages_agree() {
        let (app, teacher, student, _) = setup();
        for viewer in [
            Viewer::User(teacher),
            Viewer::User(student),
            Viewer::Anonymous,
        ] {
            let fast = all_courses(&app, &viewer);
            let slow = all_courses_no_pruning(&app, &viewer);
            assert_eq!(fast, slow, "viewer {viewer}");
        }
    }

    #[test]
    fn router_serves_pages_and_gates_writes() {
        let (app, teacher, student, course) = setup();
        let r = router();
        let page = r.handle(&app, &Request::new("courses/all", Viewer::User(student)));
        assert_eq!(page.status, 200);
        assert!(page.body.contains("PL 101"));
        let anon_submit = r.handle(&app, &Request::new("submissions/submit", Viewer::Anonymous));
        assert_eq!(anon_submit.status, 403, "writes require a session");
        let missing = r.handle(
            &app,
            &Request::new("submissions/one", Viewer::User(student)),
        );
        assert_eq!(missing.status, 400, "missing id is a parameter error");
        // Full write cycle through the router: submit then grade.
        let assignment = app
            .create("assignment", vec![Value::Int(course), Value::from("hw1")])
            .unwrap();
        let submitted = r.handle(
            &app,
            &Request::new("submissions/submit", Viewer::User(student))
                .with_param("assignment", &assignment.to_string())
                .with_param("text", "router answer"),
        );
        assert_eq!(submitted.status, 200);
        let sid = submitted.body.clone();
        let graded = r.handle(
            &app,
            &Request::new("submissions/grade", Viewer::User(teacher))
                .with_param("id", &sid)
                .with_param("grade", "91"),
        );
        assert_eq!(graded.status, 200);
        let view = r.handle(
            &app,
            &Request::new("submissions/one", Viewer::User(student)).with_param("id", &sid),
        );
        assert!(view.body.contains("91"), "{}", view.body);
    }

    #[test]
    fn grade_visible_to_student_only_after_grading() {
        let (app, teacher, student, course) = setup();
        let assignment = app
            .create("assignment", vec![Value::Int(course), Value::from("hw1")])
            .unwrap();
        let submission = app
            .create(
                "submission",
                vec![
                    Value::Int(assignment),
                    Value::Int(student),
                    Value::from("my answer"),
                    Value::Int(-1),
                    Value::Bool(false),
                ],
            )
            .unwrap();
        let before = view_submission(&app, &Viewer::User(student), submission);
        assert!(before.contains("(not released)"), "{before}");
        grade_submission(&app, submission, 95).unwrap();
        let after = view_submission(&app, &Viewer::User(student), submission);
        assert!(after.contains("95"), "{after}");
        let teacher_view = view_submission(&app, &Viewer::User(teacher), submission);
        assert!(teacher_view.contains("my answer"));
    }

    #[test]
    fn submission_text_hidden_from_other_students() {
        let (app, _, student, course) = setup();
        let other = app
            .create("cuser", vec![Value::from("olly"), Value::from("student")])
            .unwrap();
        app.create("enrollment", vec![Value::Int(course), Value::Int(other)])
            .unwrap();
        let assignment = app
            .create("assignment", vec![Value::Int(course), Value::from("hw1")])
            .unwrap();
        let submission = app
            .create(
                "submission",
                vec![
                    Value::Int(assignment),
                    Value::Int(student),
                    Value::from("secret answer"),
                    Value::Int(-1),
                    Value::Bool(false),
                ],
            )
            .unwrap();
        let peek = view_submission(&app, &Viewer::User(other), submission);
        assert!(peek.contains("[submission hidden]"), "{peek}");
    }
}
