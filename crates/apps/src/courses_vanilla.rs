//! Course manager — hand-coded baseline.

use jacqueline::{VanillaDb, Viewer};
use microdb::{ColumnDef, ColumnType, Row, Value};

// [section: models]

/// The baseline course app.
pub struct CoursesVanilla {
    /// The vanilla ORM.
    pub db: VanillaDb,
}

impl CoursesVanilla {
    /// Creates the schema.
    ///
    /// # Panics
    ///
    /// Panics on schema errors (static program structure).
    #[must_use]
    pub fn new() -> CoursesVanilla {
        let mut db = VanillaDb::new();
        db.create_table(
            "cuser",
            vec![
                ColumnDef::new("name", ColumnType::Str),
                ColumnDef::new("role", ColumnType::Str),
            ],
        )
        .unwrap();
        db.create_table(
            "course",
            vec![
                ColumnDef::new("title", ColumnType::Str),
                ColumnDef::new("instructor", ColumnType::Int),
            ],
        )
        .unwrap();
        db.create_table(
            "enrollment",
            vec![
                ColumnDef::new("course", ColumnType::Int),
                ColumnDef::new("student", ColumnType::Int),
            ],
        )
        .unwrap();
        db.create_table(
            "assignment",
            vec![
                ColumnDef::new("course", ColumnType::Int),
                ColumnDef::new("title", ColumnType::Str),
            ],
        )
        .unwrap();
        db.create_table(
            "submission",
            vec![
                ColumnDef::new("assignment", ColumnType::Int),
                ColumnDef::new("student", ColumnType::Int),
                ColumnDef::new("text", ColumnType::Str),
                ColumnDef::new("grade", ColumnType::Int),
                ColumnDef::new("graded", ColumnType::Bool),
            ],
        )
        .unwrap();
        db.create_index("enrollment", "course").unwrap();
        db.create_index("assignment", "course").unwrap();
        db.create_index("submission", "assignment").unwrap();
        CoursesVanilla { db }
    }

    // <policy>
    /// May `viewer` see the details of `course_row`?
    pub fn policy_course(&mut self, course_row: &Row, viewer: &Viewer) -> bool {
        let Some(v) = viewer.user_jid() else {
            return false;
        };
        if course_row[2].as_int() == Some(v) {
            return true;
        }
        let course_id = course_row[0].as_int().unwrap_or(-1);
        self.db
            .filter_eq("enrollment", "course", Value::Int(course_id))
            .unwrap_or_default()
            .iter()
            .any(|e| e[2] == Value::Int(v))
    }

    /// May `viewer` see the text of `submission_row`?
    pub fn policy_submission_text(&mut self, submission_row: &Row, viewer: &Viewer) -> bool {
        let Some(v) = viewer.user_jid() else {
            return false;
        };
        submission_row[2].as_int() == Some(v)
            || self.instructor_of_assignment(submission_row[1].as_int()) == Some(v)
    }

    /// May `viewer` see the grade of `submission_row`?
    pub fn policy_grade(&mut self, submission_row: &Row, viewer: &Viewer) -> bool {
        let Some(v) = viewer.user_jid() else {
            return false;
        };
        if self.instructor_of_assignment(submission_row[1].as_int()) == Some(v) {
            return true;
        }
        submission_row[2].as_int() == Some(v) && submission_row[5].as_bool() == Some(true)
    }

    fn instructor_of_assignment(&mut self, assignment: Option<i64>) -> Option<i64> {
        let a = self.db.get("assignment", assignment?).ok()??;
        let course = a[1].as_int()?;
        let c = self.db.get("course", course).ok()??;
        c[2].as_int()
    }
    // </policy>

    // [section: views]
    /// The all-courses page with inline checks.
    pub fn all_courses(&mut self, viewer: &Viewer) -> String {
        let courses = self.db.all("course").unwrap_or_default();
        let mut page = String::from("== Courses ==\n");
        for c in courses {
            // <policy>
            let (title, name) = if self.policy_course(&c, viewer) {
                let instructor = c[2].as_int().unwrap_or(-1);
                let name = self
                    .db
                    .get("cuser", instructor)
                    .ok()
                    .flatten()
                    .and_then(|u| u[1].as_str().map(str::to_owned))
                    .unwrap_or_else(|| "(unknown)".to_owned());
                (c[1].as_str().unwrap_or("?").to_owned(), name)
            } else {
                ("[closed course]".to_owned(), "(unlisted)".to_owned())
            };
            // </policy>
            page.push_str(&format!("{title} taught by {name}\n"));
        }
        page
    }

    /// A submission view with inline checks.
    pub fn view_submission(&mut self, viewer: &Viewer, submission: i64) -> String {
        let Ok(Some(s)) = self.db.get("submission", submission) else {
            return "no such submission".to_owned();
        };
        // <policy>
        let text = if self.policy_submission_text(&s, viewer) {
            s[3].as_str().unwrap_or("?").to_owned()
        } else {
            "[submission hidden]".to_owned()
        };
        let grade = match s[4].as_int() {
            Some(g) if g >= 0 && self.policy_grade(&s, viewer) => g.to_string(),
            _ => "(not released)".to_owned(),
        };
        // </policy>
        format!("{text} — grade {grade}\n")
    }
}

impl Default for CoursesVanilla {
    fn default() -> CoursesVanilla {
        CoursesVanilla::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_course_visibility() {
        let mut app = CoursesVanilla::new();
        let teacher = app
            .db
            .insert(
                "cuser",
                vec![Value::from("prof"), Value::from("instructor")],
            )
            .unwrap();
        let student = app
            .db
            .insert("cuser", vec![Value::from("sam"), Value::from("student")])
            .unwrap();
        let course = app
            .db
            .insert("course", vec![Value::from("PL 101"), Value::Int(teacher)])
            .unwrap();
        app.db
            .insert("enrollment", vec![Value::Int(course), Value::Int(student)])
            .unwrap();
        assert!(app.all_courses(&Viewer::User(student)).contains("PL 101"));
        assert!(app
            .all_courses(&Viewer::Anonymous)
            .contains("[closed course]"));
    }
}
