//! `apps` — the paper's three case-study applications (§6.1), each
//! implemented twice:
//!
//! | Case study | Jacqueline (policy-agnostic) | Hand-coded baseline |
//! |------------|------------------------------|---------------------|
//! | Conference manager | [`conf`] | [`conf_vanilla`] |
//! | Health record manager | [`health`] | [`health_vanilla`] |
//! | Course manager | [`courses`] | [`courses_vanilla`] |
//!
//! The Jacqueline variants confine every policy to the model
//! registration (marked with `// <policy>` regions); the baselines
//! replicate checks at every use site, Figure 8 style. The
//! [`workload`] module populates both sides identically for the
//! benchmark sweeps, and the differential test suite asserts that
//! both implementations show every viewer exactly the same pages —
//! the strongest policy-compliance check we can run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conf;
pub mod conf_vanilla;
pub mod courses;
pub mod courses_vanilla;
pub mod health;
pub mod health_vanilla;
pub mod serve;
pub mod workload;
