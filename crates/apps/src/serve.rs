//! Wiring the case-study applications to the socket front-end: each
//! app's router registered behind its wire paths, plus a `login`
//! route that mints session tokens.
//!
//! The [`Site`]s built here are what [`jacqueline::Server::bind`]
//! serves. Viewer identity never travels in request parameters: a
//! client POSTs `login` with `user=<jid>`, receives an opaque token
//! (body and `Set-Cookie: session=…`), and every later request is
//! resolved back to that viewer by the server's
//! [`Authenticator`] — exactly the boundary the in-process harness
//! skips.

use std::sync::Arc;

use jacqueline::{App, Authenticator, Request, Response, Router, Site, Viewer};

use crate::{conf, courses, health};

/// Adds the `login` route to a router: `user=<jid>` must name an
/// existing profile object in `user_table`; success mints a session
/// token, returned both as the response body and as a
/// `Set-Cookie: session=…` header.
///
/// The reproduction's credential check is profile existence — the
/// paper's evaluation drives known users through FunkLoad the same
/// way. A real deployment would verify a password here; everything
/// *after* this point (token → viewer → policies) is the part the
/// paper is about.
///
/// Registered as a *write* route (database footprint: reads only):
/// minting a token mutates the session store, and the server only
/// lets write routes answer `POST` — so a crawler `GET /login?user=2`
/// cannot leak tokens into URLs/logs or grow the session map.
pub fn add_login_route(router: &mut Router, auth: Arc<Authenticator>, user_table: &'static str) {
    router.route_tables(
        "login",
        &[user_table],
        &[],
        move |app: &App, req: &Request| {
            let Some(jid) = req.int_param("user") else {
                return Response::bad_request("login requires a numeric user=<jid> parameter");
            };
            if app.get(user_table, jid).is_err() {
                return Response::forbidden("no such user");
            }
            let token = auth.login(Viewer::User(jid));
            let cookie = format!("session={token}; HttpOnly");
            Response::ok(token).with_header("Set-Cookie", &cookie)
        },
    );
}

fn site_with_login(app: App, mut router: Router, user_table: &'static str) -> Site {
    let auth = Arc::new(Authenticator::new());
    add_login_route(&mut router, Arc::clone(&auth), user_table);
    Site {
        app: Arc::new(app),
        router: Arc::new(router),
        auth,
    }
}

/// The conference manager behind its wire paths (`papers/all`,
/// `papers/one`, `users/all`, `users/one`, `papers/submit`,
/// `reviews/submit`) plus `login` over `user_profile`.
#[must_use]
pub fn conference_site(app: App) -> Site {
    site_with_login(app, conf::router(), "user_profile")
}

/// The course manager behind its wire paths (`courses/all`,
/// `courses/all_unpruned`, `submissions/*`) plus `login` over
/// `cuser`.
#[must_use]
pub fn courses_site(app: App) -> Site {
    site_with_login(app, courses::router(), "cuser")
}

/// The health-record manager behind its wire paths (`records/all`,
/// `records/one`, `waivers/set`) plus `login` over `individual`.
#[must_use]
pub fn health_site(app: App) -> Site {
    site_with_login(app, health::router(), "individual")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload;

    #[test]
    fn login_mints_a_token_bound_to_the_viewer() {
        let site = conference_site(workload::conference(6, 4).app);
        let response = site.router.handle(
            &site.app,
            &Request::new("login", Viewer::Anonymous).with_param("user", "3"),
        );
        assert_eq!(response.status, 200);
        let token = response.body.clone();
        assert_eq!(site.auth.viewer_for(&token), Some(Viewer::User(3)));
        let cookie = response.header("set-cookie").unwrap();
        assert!(cookie.starts_with(&format!("session={token}")), "{cookie}");
    }

    #[test]
    fn login_rejects_unknown_users_and_bad_params() {
        let site = conference_site(workload::conference(4, 2).app);
        let unknown = site.router.handle(
            &site.app,
            &Request::new("login", Viewer::Anonymous).with_param("user", "999"),
        );
        assert_eq!(unknown.status, 403);
        let malformed = site.router.handle(
            &site.app,
            &Request::new("login", Viewer::Anonymous).with_param("user", "carol"),
        );
        assert_eq!(malformed.status, 400);
        let missing = site
            .router
            .handle(&site.app, &Request::new("login", Viewer::Anonymous));
        assert_eq!(missing.status, 400);
        assert_eq!(site.auth.live_sessions(), 0, "failures mint nothing");
    }

    #[test]
    fn all_three_sites_have_login_and_their_pages() {
        for (site, page) in [
            (
                conference_site(workload::conference(4, 2).app),
                "papers/all",
            ),
            (courses_site(workload::courses(3).app), "courses/all"),
            (health_site(workload::health(6).app), "records/all"),
        ] {
            assert!(site.router.paths().contains(&"login"), "{page}");
            let served = site
                .router
                .handle(&site.app, &Request::new(page, Viewer::Anonymous));
            assert_eq!(served.status, 200, "{page}");
        }
    }
}
