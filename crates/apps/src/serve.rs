//! Wiring the case-study applications to the socket front-end: each
//! app's router registered behind its wire paths, plus a `login`
//! route that mints session tokens.
//!
//! The [`Site`]s built here are what [`jacqueline::Server::bind`]
//! serves. Viewer identity never travels in request parameters: a
//! client POSTs `login` with `user=<jid>`, receives an opaque token
//! (body and `Set-Cookie: session=…`), and every later request is
//! resolved back to that viewer by the server's
//! [`Authenticator`] — exactly the boundary the in-process harness
//! skips.
//!
//! # Persistence
//!
//! The `*_site_persistent` constructors wrap an app with the durable
//! checkpoint machinery: the write log and meta journal attach to a
//! checkpoint directory and the router gains the `admin/checkpoint`
//! route (see [`jacqueline::checkpoint`]). The matching
//! `*_site_restored` constructors are **boot-from-checkpoint**: a
//! blank app registers the same models, restores the checkpoint (plus
//! log replay), and comes back serving byte-identical pages to every
//! viewer. Sessions are deliberately ephemeral — clients re-login
//! after a restart; everything behind the login (labels, policies,
//! facet DAGs, rows) survives.

use std::path::Path;
use std::sync::Arc;

use jacqueline::{App, Authenticator, Request, Response, Router, Site, Viewer};

use crate::{conf, courses, health};

/// Adds the `login` route to a router: `user=<jid>` must name an
/// existing profile object in `user_table`; success mints a session
/// token, returned both as the response body and as a
/// `Set-Cookie: session=…` header.
///
/// The reproduction's credential check is profile existence — the
/// paper's evaluation drives known users through FunkLoad the same
/// way. A real deployment would verify a password here; everything
/// *after* this point (token → viewer → policies) is the part the
/// paper is about.
///
/// Registered as a *write* route (database footprint: reads only):
/// minting a token mutates the session store, and the server only
/// lets write routes answer `POST` — so a crawler `GET /login?user=2`
/// cannot leak tokens into URLs/logs or grow the session map.
pub fn add_login_route(router: &mut Router, auth: Arc<Authenticator>, user_table: &'static str) {
    router.route_tables(
        "login",
        &[user_table],
        &[],
        move |app: &App, req: &Request| {
            let Some(jid) = req.int_param("user") else {
                return Response::bad_request("login requires a numeric user=<jid> parameter");
            };
            if app.get(user_table, jid).is_err() {
                return Response::forbidden("no such user");
            }
            let token = auth.login(Viewer::User(jid));
            let cookie = format!("session={token}; HttpOnly");
            Response::ok(token).with_header("Set-Cookie", &cookie)
        },
    );
}

fn site_with_login(app: App, mut router: Router, user_table: &'static str) -> Site {
    let auth = Arc::new(Authenticator::new());
    add_login_route(&mut router, Arc::clone(&auth), user_table);
    // Every served site exposes `admin/health`, so an operator (or
    // the chaos harness) can tell "down" apart from "read-only
    // degraded" without guessing from a failed write.
    jacqueline::add_health_route(&mut router);
    Site {
        app: Arc::new(app),
        router: Arc::new(router),
        auth,
    }
}

/// The conference manager behind its wire paths (`papers/all`,
/// `papers/one`, `users/all`, `users/one`, `papers/submit`,
/// `reviews/submit`) plus `login` over `user_profile`.
#[must_use]
pub fn conference_site(app: App) -> Site {
    site_with_login(app, conf::router(), "user_profile")
}

/// The course manager behind its wire paths (`courses/all`,
/// `courses/all_unpruned`, `submissions/*`) plus `login` over
/// `cuser`.
#[must_use]
pub fn courses_site(app: App) -> Site {
    site_with_login(app, courses::router(), "cuser")
}

/// The health-record manager behind its wire paths (`records/all`,
/// `records/one`, `waivers/set`) plus `login` over `individual`.
#[must_use]
pub fn health_site(app: App) -> Site {
    site_with_login(app, health::router(), "individual")
}

/// Wraps an app + router with persistence: logs attached to `dir`,
/// an initial checkpoint taken, `admin/checkpoint` registered, login
/// wired over `user_table`.
///
/// The initial checkpoint matters twice over: state that predates
/// `enable_persistence` (seed data, a freshly restored snapshot) is
/// in neither log, so without it a crash before the first
/// `admin/checkpoint` would leave the directory unrestorable — and
/// on the restore path it compacts the replayed logs into a clean
/// baseline.
fn persistent_site(
    mut app: App,
    mut router: Router,
    user_table: &'static str,
    dir: &Path,
) -> form::FormResult<Site> {
    app.enable_persistence(dir)?;
    app.checkpoint_quiescent(dir)?;
    jacqueline::add_checkpoint_route(&mut router, dir);
    Ok(site_with_login(app, router, user_table))
}

/// Boot-from-checkpoint: a blank app, the same models re-registered,
/// state restored from `dir`, persistence re-enabled.
fn restored_site(
    register: impl FnOnce(&mut App) -> form::FormResult<()>,
    router: Router,
    user_table: &'static str,
    dir: &Path,
) -> form::FormResult<Site> {
    let mut app = App::new();
    register(&mut app)?;
    app.restore_from(dir)?;
    persistent_site(app, router, user_table, dir)
}

/// [`conference_site`] plus persistence: write log + meta journal in
/// `dir`, and the `admin/checkpoint` route.
///
/// # Errors
///
/// I/O errors attaching the logs.
pub fn conference_site_persistent(app: App, dir: impl AsRef<Path>) -> form::FormResult<Site> {
    persistent_site(app, conf::router(), "user_profile", dir.as_ref())
}

/// Boots the conference app from the checkpoint in `dir`: every page
/// a restored server renders is byte-identical to the pre-restart
/// server, for every viewer.
///
/// # Errors
///
/// Missing/corrupt checkpoint, or a checkpoint from different
/// application code.
pub fn conference_site_restored(dir: impl AsRef<Path>) -> form::FormResult<Site> {
    restored_site(conf::register, conf::router(), "user_profile", dir.as_ref())
}

/// [`courses_site`] plus persistence (see
/// [`conference_site_persistent`]).
///
/// # Errors
///
/// I/O errors attaching the logs.
pub fn courses_site_persistent(app: App, dir: impl AsRef<Path>) -> form::FormResult<Site> {
    persistent_site(app, courses::router(), "cuser", dir.as_ref())
}

/// Boots the course manager from the checkpoint in `dir`.
///
/// # Errors
///
/// Missing/corrupt checkpoint, or a checkpoint from different
/// application code.
pub fn courses_site_restored(dir: impl AsRef<Path>) -> form::FormResult<Site> {
    restored_site(courses::register, courses::router(), "cuser", dir.as_ref())
}

/// [`health_site`] plus persistence (see
/// [`conference_site_persistent`]).
///
/// # Errors
///
/// I/O errors attaching the logs.
pub fn health_site_persistent(app: App, dir: impl AsRef<Path>) -> form::FormResult<Site> {
    persistent_site(app, health::router(), "individual", dir.as_ref())
}

/// Boots the health-record manager from the checkpoint in `dir`.
///
/// # Errors
///
/// Missing/corrupt checkpoint, or a checkpoint from different
/// application code.
pub fn health_site_restored(dir: impl AsRef<Path>) -> form::FormResult<Site> {
    restored_site(
        health::register,
        health::router(),
        "individual",
        dir.as_ref(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload;

    #[test]
    fn login_mints_a_token_bound_to_the_viewer() {
        let site = conference_site(workload::conference(6, 4).app);
        let response = site.router.handle(
            &site.app,
            &Request::new("login", Viewer::Anonymous).with_param("user", "3"),
        );
        assert_eq!(response.status, 200);
        let token = response.body.clone();
        assert_eq!(site.auth.viewer_for(&token), Some(Viewer::User(3)));
        let cookie = response.header("set-cookie").unwrap();
        assert!(cookie.starts_with(&format!("session={token}")), "{cookie}");
    }

    #[test]
    fn login_rejects_unknown_users_and_bad_params() {
        let site = conference_site(workload::conference(4, 2).app);
        let unknown = site.router.handle(
            &site.app,
            &Request::new("login", Viewer::Anonymous).with_param("user", "999"),
        );
        assert_eq!(unknown.status, 403);
        let malformed = site.router.handle(
            &site.app,
            &Request::new("login", Viewer::Anonymous).with_param("user", "carol"),
        );
        assert_eq!(malformed.status, 400);
        let missing = site
            .router
            .handle(&site.app, &Request::new("login", Viewer::Anonymous));
        assert_eq!(missing.status, 400);
        assert_eq!(site.auth.live_sessions(), 0, "failures mint nothing");
    }

    /// Every app's full all-pages × all-viewers grid survives a
    /// checkpoint → blank process → restore cycle byte-for-byte, with
    /// facet-DAG sharing intact (the ISSUE's acceptance criterion, in
    /// its in-process form; `tests/checkpoint_e2e.rs` pins the served
    /// version under concurrent writers).
    #[test]
    fn restored_sites_render_identical_grids() {
        let dir_root =
            std::env::temp_dir().join(format!("jacq_serve_restore_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir_root);
        type SiteBuilder = fn(App) -> Site;
        type RestoredBuilder = fn(&std::path::Path) -> form::FormResult<Site>;
        type Case = (
            &'static str,
            App,
            SiteBuilder,
            RestoredBuilder,
            Vec<String>,
            i64,
        );
        let cases: Vec<Case> = vec![
            (
                "conference",
                workload::conference(6, 5).app,
                conference_site as SiteBuilder,
                (|d| conference_site_restored(d)) as RestoredBuilder,
                {
                    let mut pages = vec!["papers/all".to_owned(), "users/all".to_owned()];
                    pages.extend((1..=5).map(|p| format!("papers/one?id={p}")));
                    pages
                },
                6,
            ),
            (
                "courses",
                workload::courses(4).app,
                courses_site as SiteBuilder,
                (|d| courses_site_restored(d)) as RestoredBuilder,
                vec!["courses/all".to_owned()],
                5,
            ),
            (
                "health",
                workload::health(8).app,
                health_site as SiteBuilder,
                (|d| health_site_restored(d)) as RestoredBuilder,
                vec!["records/all".to_owned()],
                8,
            ),
        ];
        for (name, app, build, restore, pages, users) in cases {
            let dir = dir_root.join(name);
            let stats = app.checkpoint_quiescent(&dir).unwrap();
            assert!(stats.objects > 0, "{name}: checkpoint captured objects");
            let site = build(app);
            let restored = restore(&dir).unwrap_or_else(|e| panic!("{name}: {e}"));
            let viewers: Vec<Viewer> = std::iter::once(Viewer::Anonymous)
                .chain((1..=users).map(Viewer::User))
                .collect();
            for page in &pages {
                let (path, params) = match page.split_once('?') {
                    None => (page.as_str(), None),
                    Some((p, q)) => (p, q.split_once('=')),
                };
                for viewer in &viewers {
                    let mut request = Request::new(path, viewer.clone());
                    if let Some((k, v)) = params {
                        request = request.with_param(k, v);
                    }
                    let before = site.router.handle(&site.app, &request);
                    let after = restored.router.handle(&restored.app, &request);
                    assert_eq!(
                        (before.status, before.body),
                        (after.status, after.body),
                        "{name}: {page} for {viewer}"
                    );
                }
            }
        }
        let _ = std::fs::remove_dir_all(&dir_root);
    }

    #[test]
    fn all_three_sites_have_login_and_their_pages() {
        for (site, page) in [
            (
                conference_site(workload::conference(4, 2).app),
                "papers/all",
            ),
            (courses_site(workload::courses(3).app), "courses/all"),
            (health_site(workload::health(6).app), "records/all"),
        ] {
            assert!(site.router.paths().contains(&"login"), "{page}");
            let served = site
                .router
                .handle(&site.app, &Request::new(page, Viewer::Anonymous));
            assert_eq!(served.status, 200, "{page}");
        }
    }
}
