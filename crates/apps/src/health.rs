//! Health record manager — Jacqueline implementation (§6.1).
//!
//! Models a representative fragment of the HIPAA privacy standards:
//! individuals (patients, doctors, insurers), health records, and
//! permission waivers. Visibility depends on roles and on stateful
//! information — whether a waiver exists *at output time*.

use faceted::Faceted;
use form::faceted_count;
use jacqueline::{label_for, App, ModelDef, Request, Response, Router, Session, Viewer};
use microdb::{ColumnDef, ColumnType, Value};

// [section: models]

/// Registers the health models and policies.
///
/// # Errors
///
/// Propagates registration errors.
pub fn register(app: &mut App) -> form::FormResult<()> {
    app.register_model(ModelDef::public(
        "individual",
        vec![
            ColumnDef::new("name", ColumnType::Str),
            ColumnDef::new("role", ColumnType::Str), // patient | doctor | insurer
        ],
    ))?;
    app.register_model(ModelDef::public(
        "waiver",
        vec![
            ColumnDef::new("record", ColumnType::Int),
            ColumnDef::new("grantee", ColumnType::Int),
            ColumnDef::new("active", ColumnType::Bool),
        ],
    ))?;

    let record = ModelDef::public(
        "health_record",
        vec![
            ColumnDef::new("patient", ColumnType::Int),
            ColumnDef::new("doctor", ColumnType::Int),
            ColumnDef::new("insurer", ColumnType::Int),
            ColumnDef::new("diagnosis", ColumnType::Str),
            ColumnDef::new("treatment", ColumnType::Str),
        ],
    )
    // <policy>
    .with_policy(label_for(
        // HIPAA-style disclosure rule for the medical contents.
        "restrict_contents",
        vec![3, 4],
        |_row| vec![Value::from("[protected]"), Value::from("[protected]")],
        |args| {
            let Some(viewer) = args.viewer.user_jid() else {
                return Faceted::leaf(false);
            };
            // The patient and the treating doctor always have access.
            if args.row[0].as_int() == Some(viewer) || args.row[1].as_int() == Some(viewer) {
                return Faceted::leaf(true);
            }
            // The insurer (or anyone else) needs an *active* waiver —
            // checked against the waiver table at output time.
            let waivers = args
                .db
                .filter_eq("waiver", "record", Value::Int(args.jid))
                .unwrap_or_default();
            let granted = waivers.filter_rows(|w| {
                w.fields[1] == Value::Int(viewer) && w.fields[2] == Value::Bool(true)
            });
            faceted_count(&granted).map(&mut |n| *n > 0)
        },
    ));
    // </policy>
    app.register_model(record)?;

    // Foreign-key indexes (Django defaults).
    app.db.create_index("waiver", "record")?;
    app.db.create_index("health_record", "patient")?;

    Ok(())
}

// [section: views]
/// Summary page of all records (the Figure 9b stress-test page):
/// patient name, diagnosis (policy-resolved), treatment.
pub fn all_records_summary(app: &App, viewer: &Viewer) -> String {
    let mut session = Session::new(viewer.clone());
    let records = app.all("health_record").unwrap_or_default();
    let mut page = String::from("== Records ==\n");
    for row in session.view_rows(app, &records) {
        let patient = row[0].as_int().unwrap_or(-1);
        let name = app
            .get("individual", patient)
            .ok()
            .and_then(|o| session.view_object(app, &o))
            .map_or_else(
                || "(unknown)".to_owned(),
                |r| r[0].as_str().unwrap_or("?").to_owned(),
            );
        page.push_str(&format!(
            "{name}: {} / {}\n",
            row[3].as_str().unwrap_or("?"),
            row[4].as_str().unwrap_or("?"),
        ));
    }
    page
}

/// One record's line of [`all_records_summary`], rendered for
/// `viewer` through the same faceted projection the full page runs —
/// the render cache's repair path re-renders exactly these. The
/// waiver table (which the record policy consults) is a different
/// footprint table, so any waiver change blocks repair outright.
pub fn record_fragment(app: &App, viewer: &Viewer, jid: i64) -> String {
    let mut session = Session::new(viewer.clone());
    let Ok(record) = app.get("health_record", jid) else {
        return String::new();
    };
    let Some(row) = session.view_object(app, &record) else {
        return String::new();
    };
    let patient = row[0].as_int().unwrap_or(-1);
    let name = app
        .get("individual", patient)
        .ok()
        .and_then(|o| session.view_object(app, &o))
        .map_or_else(
            || "(unknown)".to_owned(),
            |r| r[0].as_str().unwrap_or("?").to_owned(),
        );
    format!(
        "{name}: {} / {}\n",
        row[3].as_str().unwrap_or("?"),
        row[4].as_str().unwrap_or("?"),
    )
}

/// One record in detail.
pub fn single_record(app: &App, viewer: &Viewer, record: i64) -> String {
    let mut session = Session::new(viewer.clone());
    let Ok(obj) = app.get("health_record", record) else {
        return "no such record".to_owned();
    };
    match session.view_object(app, &obj) {
        Some(row) => format!(
            "patient #{}: {} / {}\n",
            row[0],
            row[3].as_str().unwrap_or("?"),
            row[4].as_str().unwrap_or("?"),
        ),
        None => "no such record".to_owned(),
    }
}

/// Grants or revokes a waiver (stateful policy input). Takes `&self`
/// like every row-level write, so the waiver route runs under
/// footprint locks.
///
/// # Errors
///
/// Propagates database errors.
pub fn set_waiver(app: &App, record: i64, grantee: i64, active: bool) -> form::FormResult<i64> {
    app.create(
        "waiver",
        vec![Value::Int(record), Value::Int(grantee), Value::Bool(active)],
    )
}

/// Builds the health-records router: the two record pages (their
/// disclosure policy consults `waiver` at output time) plus the
/// waiver-granting write action, which requires a login session.
#[must_use]
pub fn router() -> Router {
    let mut r = Router::new();
    r.route_read_tables(
        "records/all",
        &["health_record", "individual", "waiver"],
        |app, req: &Request| Response::ok(all_records_summary(app, &req.viewer)),
    );
    // Fragment repair: one line per record, spliced from the write
    // journal on single-record writes.
    r.route_fragments(
        "records/all",
        "health_record",
        |_, _| ("== Records ==\n".to_owned(), String::new()),
        |app, req: &Request, jid| record_fragment(app, &req.viewer, jid),
    );
    r.route_read_tables(
        "records/one",
        &["health_record", "waiver"],
        |app, req: &Request| match req.int_param("id") {
            Some(id) => Response::ok(single_record(app, &req.viewer, id)),
            None => Response::bad_request("records/one requires a numeric id parameter"),
        },
    );
    r.route_tables("waivers/set", &[], &["waiver"], |app, req: &Request| {
        if req.viewer.user_jid().is_none() {
            return Response::forbidden("granting a waiver requires a login session");
        }
        match (req.int_param("record"), req.int_param("grantee")) {
            (Some(record), Some(grantee)) => {
                let active = req
                    .params
                    .get("active")
                    .is_none_or(|v| v == "true" || v == "1");
                match set_waiver(app, record, grantee, active) {
                    Ok(jid) => Response::ok(jid.to_string()),
                    Err(e) => Response::error(&e.to_string()),
                }
            }
            _ => Response::bad_request("waivers/set requires numeric record and grantee"),
        }
    });
    // Render-cache key canonicalization: record pages key on `id`
    // alone, the summary page on nothing.
    r.canonicalize_int_params("records/one", &["id"]);
    r.canonicalize_int_params("records/all", &[]);
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (App, i64, i64, i64, i64) {
        let mut app = App::new();
        register(&mut app).unwrap();
        let patient = app
            .create(
                "individual",
                vec![Value::from("pat"), Value::from("patient")],
            )
            .unwrap();
        let doctor = app
            .create(
                "individual",
                vec![Value::from("doc"), Value::from("doctor")],
            )
            .unwrap();
        let insurer = app
            .create(
                "individual",
                vec![Value::from("ins"), Value::from("insurer")],
            )
            .unwrap();
        let record = app
            .create(
                "health_record",
                vec![
                    Value::Int(patient),
                    Value::Int(doctor),
                    Value::Int(insurer),
                    Value::from("flu"),
                    Value::from("rest"),
                ],
            )
            .unwrap();
        (app, patient, doctor, insurer, record)
    }

    #[test]
    fn patient_and_doctor_see_contents() {
        let (app, patient, doctor, _, record) = setup();
        assert!(single_record(&app, &Viewer::User(patient), record).contains("flu"));
        assert!(single_record(&app, &Viewer::User(doctor), record).contains("flu"));
    }

    #[test]
    fn insurer_needs_active_waiver() {
        let (app, _, _, insurer, record) = setup();
        let before = single_record(&app, &Viewer::User(insurer), record);
        assert!(before.contains("[protected]"), "{before}");
        set_waiver(&app, record, insurer, true).unwrap();
        let after = single_record(&app, &Viewer::User(insurer), record);
        assert!(after.contains("flu"), "{after}");
    }

    #[test]
    fn inactive_waiver_grants_nothing() {
        let (app, _, _, insurer, record) = setup();
        set_waiver(&app, record, insurer, false).unwrap();
        assert!(single_record(&app, &Viewer::User(insurer), record).contains("[protected]"));
    }

    #[test]
    fn router_serves_pages_and_gates_waivers() {
        let (app, _, _, insurer, record) = setup();
        let r = router();
        let page = r.handle(&app, &Request::new("records/all", Viewer::User(insurer)));
        assert_eq!(page.status, 200);
        assert!(page.body.contains("[protected]"), "{}", page.body);
        let missing = r.handle(&app, &Request::new("records/one", Viewer::User(insurer)));
        assert_eq!(missing.status, 400);
        let anon = r.handle(&app, &Request::new("waivers/set", Viewer::Anonymous));
        assert_eq!(anon.status, 403);
        let granted = r.handle(
            &app,
            &Request::new("waivers/set", Viewer::User(insurer))
                .with_param("record", &record.to_string())
                .with_param("grantee", &insurer.to_string()),
        );
        assert_eq!(granted.status, 200);
        let after = r.handle(
            &app,
            &Request::new("records/one", Viewer::User(insurer))
                .with_param("id", &record.to_string()),
        );
        assert!(after.body.contains("flu"), "{}", after.body);
    }

    #[test]
    fn strangers_see_placeholders_in_summary() {
        let (app, _, _, _, _) = setup();
        let stranger = app
            .create(
                "individual",
                vec![Value::from("eve"), Value::from("patient")],
            )
            .unwrap();
        let page = all_records_summary(&app, &Viewer::User(stranger));
        assert!(page.contains("[protected]"), "{page}");
        assert!(!page.contains("flu"));
    }
}
