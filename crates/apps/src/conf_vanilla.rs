//! Conference management system — the "Django" baseline with
//! hand-coded policy checks (§6.2.1, Figure 8).
//!
//! Same schemas and pages as [`crate::conf`], but on the vanilla ORM:
//! every view must remember to call the right policy methods and
//! substitute placeholders itself. Policy code is spread across this
//! whole file (both the model-level checks and their call sites in
//! the views) — exactly the distribution Figure 6 measures.

use jacqueline::{VanillaDb, Viewer};
use microdb::{ColumnDef, ColumnType, Row, Value};

// [section: models]

/// Conference phases.
pub use crate::conf::{PHASE_FINAL, PHASE_REVIEW, PHASE_SUBMISSION};

/// The baseline application: a plain database plus the phase cell.
pub struct ConfVanilla {
    /// The vanilla ORM.
    pub db: VanillaDb,
}

impl ConfVanilla {
    /// Creates the schema.
    ///
    /// # Panics
    ///
    /// Panics on schema errors (static program structure).
    #[must_use]
    pub fn new() -> ConfVanilla {
        let mut db = VanillaDb::new();
        db.create_table("conf_state", vec![ColumnDef::new("phase", ColumnType::Str)])
            .unwrap();
        db.create_table(
            "user_profile",
            vec![
                ColumnDef::new("name", ColumnType::Str),
                ColumnDef::new("level", ColumnType::Str),
                ColumnDef::new("affiliation", ColumnType::Str),
                ColumnDef::new("email", ColumnType::Str),
            ],
        )
        .unwrap();
        db.create_table(
            "paper",
            vec![
                ColumnDef::new("title", ColumnType::Str),
                ColumnDef::new("author", ColumnType::Int),
                ColumnDef::new("accepted", ColumnType::Bool),
            ],
        )
        .unwrap();
        db.create_table(
            "review",
            vec![
                ColumnDef::new("paper", ColumnType::Int),
                ColumnDef::new("reviewer", ColumnType::Int),
                ColumnDef::new("score", ColumnType::Int),
                ColumnDef::new("text", ColumnType::Str),
            ],
        )
        .unwrap();
        db.create_table(
            "paper_pc_conflict",
            vec![
                ColumnDef::new("paper", ColumnType::Int),
                ColumnDef::new("pc", ColumnType::Int),
            ],
        )
        .unwrap();
        db.create_index("paper_pc_conflict", "paper").unwrap();
        db.create_index("review", "paper").unwrap();
        ConfVanilla { db }
    }

    /// Sets the conference phase.
    pub fn set_phase(&mut self, phase: &str) {
        let ids: Vec<i64> = self
            .db
            .all("conf_state")
            .unwrap()
            .iter()
            .map(|r| r[0].as_int().unwrap())
            .collect();
        for id in ids {
            self.db.delete("conf_state", id).unwrap();
        }
        self.db
            .insert("conf_state", vec![Value::from(phase)])
            .unwrap();
    }

    fn phase(&mut self) -> String {
        self.db
            .all("conf_state")
            .ok()
            .and_then(|rows| rows.first().and_then(|r| r[1].as_str().map(str::to_owned)))
            .unwrap_or_else(|| PHASE_SUBMISSION.to_owned())
    }

    // <policy>
    /// Figure 8's `policy_author`: may `viewer` see the author of
    /// `paper_row`?
    pub fn policy_author(&mut self, paper_row: &Row, viewer: &Viewer) -> bool {
        if self.phase() == PHASE_FINAL {
            return true;
        }
        let Some(v) = viewer.user_jid() else {
            return false;
        };
        let paper_id = paper_row[0].as_int().unwrap_or(-1);
        let conflicted = self
            .db
            .filter_eq("paper_pc_conflict", "paper", Value::Int(paper_id))
            .unwrap_or_default()
            .iter()
            .any(|c| c[2] == Value::Int(v));
        if conflicted {
            return false;
        }
        paper_row[2].as_int() == Some(v) || self.is_committee(v)
    }

    /// May `viewer` see the title of `paper_row`?
    pub fn policy_title(&mut self, paper_row: &Row, viewer: &Viewer) -> bool {
        if self.phase() == PHASE_FINAL {
            return true;
        }
        let Some(v) = viewer.user_jid() else {
            return false;
        };
        paper_row[2].as_int() == Some(v) || self.is_committee(v)
    }

    /// May `viewer` see the reviewer identity of `review_row`?
    pub fn policy_reviewer(&mut self, review_row: &Row, viewer: &Viewer) -> bool {
        let Some(v) = viewer.user_jid() else {
            return false;
        };
        review_row[2].as_int() == Some(v) || self.is_committee(v)
    }

    /// May `viewer` see the text of `review_row`?
    pub fn policy_review_text(&mut self, review_row: &Row, viewer: &Viewer) -> bool {
        let Some(v) = viewer.user_jid() else {
            return false;
        };
        if self.is_committee(v) {
            return true;
        }
        if self.phase() == PHASE_FINAL {
            let paper_id = review_row[1].as_int().unwrap_or(-1);
            if let Ok(Some(paper)) = self.db.get("paper", paper_id) {
                return paper[2].as_int() == Some(v);
            }
        }
        false
    }

    /// May `viewer` see the email of `user_row`?
    pub fn policy_email(&mut self, user_row: &Row, viewer: &Viewer) -> bool {
        let Some(v) = viewer.user_jid() else {
            return false;
        };
        user_row[0].as_int() == Some(v) || self.role_of(v).as_deref() == Some("chair")
    }

    fn role_of(&mut self, user: i64) -> Option<String> {
        self.db
            .get("user_profile", user)
            .ok()
            .flatten()
            .and_then(|r| r[2].as_str().map(str::to_owned))
    }

    fn is_committee(&mut self, user: i64) -> bool {
        matches!(self.role_of(user).as_deref(), Some("pc") | Some("chair"))
    }
    // </policy>

    // [section: views]
    /// Submit a paper.
    pub fn submit_paper(&mut self, viewer: &Viewer, title: &str) -> i64 {
        let author = viewer.user_jid().unwrap_or(-1);
        self.db
            .insert(
                "paper",
                vec![Value::from(title), Value::Int(author), Value::Bool(false)],
            )
            .unwrap()
    }

    /// Submit a review.
    pub fn submit_review(&mut self, viewer: &Viewer, paper: i64, score: i64, text: &str) -> i64 {
        let reviewer = viewer.user_jid().unwrap_or(-1);
        self.db
            .insert(
                "review",
                vec![
                    Value::Int(paper),
                    Value::Int(reviewer),
                    Value::Int(score),
                    Value::from(text),
                ],
            )
            .unwrap()
    }

    fn user_name(&mut self, id: i64) -> String {
        self.db
            .get("user_profile", id)
            .ok()
            .flatten()
            .and_then(|r| r[1].as_str().map(str::to_owned))
            .unwrap_or_else(|| "(unknown)".to_owned())
    }

    /// View all papers — note the repeated inline checks (Figure 8's
    /// `papers_view`).
    pub fn all_papers(&mut self, viewer: &Viewer) -> String {
        let papers = self.db.all("paper").unwrap_or_default();
        let mut page = String::from("== Papers ==\n");
        for p in papers {
            // <policy>
            let title = if self.policy_title(&p, viewer) {
                p[1].as_str().unwrap_or("?").to_owned()
            } else {
                "(title hidden)".to_owned()
            };
            let author = if self.policy_author(&p, viewer) {
                self.user_name(p[2].as_int().unwrap_or(-1))
            } else {
                "(anonymous)".to_owned()
            };
            // </policy>
            page.push_str(&format!("{title} by {author}\n"));
        }
        page
    }

    /// View one paper with reviews.
    pub fn single_paper(&mut self, viewer: &Viewer, paper: i64) -> String {
        let Ok(Some(p)) = self.db.get("paper", paper) else {
            return "no such paper".to_owned();
        };
        // <policy>
        let title = if self.policy_title(&p, viewer) {
            p[1].as_str().unwrap_or("?").to_owned()
        } else {
            "(title hidden)".to_owned()
        };
        let author = if self.policy_author(&p, viewer) {
            self.user_name(p[2].as_int().unwrap_or(-1))
        } else {
            "(anonymous)".to_owned()
        };
        // </policy>
        let mut page = format!("= {title} by {author} =\n");
        let reviews = self
            .db
            .filter_eq("review", "paper", Value::Int(paper))
            .unwrap_or_default();
        for r in reviews {
            // <policy>
            let reviewer = if self.policy_reviewer(&r, viewer) {
                self.user_name(r[2].as_int().unwrap_or(-1))
            } else {
                "(anonymous)".to_owned()
            };
            let text = if self.policy_review_text(&r, viewer) {
                r[4].as_str().unwrap_or("?").to_owned()
            } else {
                "[review hidden]".to_owned()
            };
            // </policy>
            page.push_str(&format!("review by {reviewer}: score {} — {text}\n", r[3]));
        }
        page
    }

    /// View all users.
    pub fn all_users(&mut self, viewer: &Viewer) -> String {
        let users = self.db.all("user_profile").unwrap_or_default();
        let mut page = String::from("== Users ==\n");
        for u in users {
            // <policy>
            let email = if self.policy_email(&u, viewer) {
                u[4].as_str().unwrap_or("?").to_owned()
            } else {
                "[email withheld]".to_owned()
            };
            // </policy>
            page.push_str(&format!(
                "{} ({}) <{}>\n",
                u[1].as_str().unwrap_or("?"),
                u[3].as_str().unwrap_or("?"),
                email,
            ));
        }
        page
    }

    /// View one user.
    pub fn single_user(&mut self, viewer: &Viewer, user: i64) -> String {
        let Ok(Some(u)) = self.db.get("user_profile", user) else {
            return "no such user".to_owned();
        };
        // <policy>
        let email = if self.policy_email(&u, viewer) {
            u[4].as_str().unwrap_or("?").to_owned()
        } else {
            "[email withheld]".to_owned()
        };
        // </policy>
        format!(
            "{} ({}) <{}>\n",
            u[1].as_str().unwrap_or("?"),
            u[3].as_str().unwrap_or("?"),
            email,
        )
    }
}

impl Default for ConfVanilla {
    fn default() -> ConfVanilla {
        ConfVanilla::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (ConfVanilla, i64, i64, i64) {
        let mut app = ConfVanilla::new();
        app.set_phase(PHASE_REVIEW);
        let chair = app
            .db
            .insert(
                "user_profile",
                vec![
                    Value::from("carol chair"),
                    Value::from("chair"),
                    Value::from("CMU"),
                    Value::from("carol@cmu.edu"),
                ],
            )
            .unwrap();
        let author = app
            .db
            .insert(
                "user_profile",
                vec![
                    Value::from("alice author"),
                    Value::from("normal"),
                    Value::from("MIT"),
                    Value::from("alice@mit.edu"),
                ],
            )
            .unwrap();
        let paper = app.submit_paper(&Viewer::User(author), "Faceted Everything");
        (app, chair, author, paper)
    }

    #[test]
    fn baseline_enforces_same_policy_outcomes() {
        let (mut app, chair, author, _) = setup();
        let own = app.all_papers(&Viewer::User(author));
        assert!(own.contains("Faceted Everything"));
        let chairs = app.all_papers(&Viewer::User(chair));
        assert!(chairs.contains("alice author"));
        let anon = app.all_papers(&Viewer::Anonymous);
        assert!(anon.contains("(title hidden)"));
        assert!(anon.contains("(anonymous)"));
    }

    #[test]
    fn baseline_email_policy() {
        let (mut app, chair, author, _) = setup();
        assert!(app
            .single_user(&Viewer::User(author), author)
            .contains("alice@mit.edu"));
        assert!(app
            .single_user(&Viewer::User(chair), author)
            .contains("alice@mit.edu"));
        assert!(app
            .single_user(&Viewer::User(author), chair)
            .contains("[email withheld]"));
    }

    #[test]
    fn baseline_final_phase() {
        let (mut app, _, _, _) = setup();
        app.set_phase(PHASE_FINAL);
        let page = app.all_papers(&Viewer::Anonymous);
        assert!(page.contains("Faceted Everything"));
        assert!(page.contains("alice author"));
    }
}
