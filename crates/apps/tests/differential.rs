//! Differential testing: the Jacqueline (policy-agnostic) and the
//! hand-coded baseline implementations must render *identical* pages
//! for every viewer — the strongest end-to-end policy-compliance
//! check in the repository.

use apps::workload;
use jacqueline::Viewer;

#[test]
fn conference_all_pages_agree_for_every_viewer() {
    let w = workload::conference(12, 10);
    let app = w.app;
    let mut vanilla = w.vanilla;
    let viewers: Vec<Viewer> = std::iter::once(Viewer::Anonymous)
        .chain((1..=12).map(Viewer::User))
        .collect();
    for viewer in &viewers {
        assert_eq!(
            apps::conf::all_papers(&app, viewer),
            vanilla.all_papers(viewer),
            "all_papers for {viewer}"
        );
        assert_eq!(
            apps::conf::all_users(&app, viewer),
            vanilla.all_users(viewer),
            "all_users for {viewer}"
        );
        for paper in 1..=10 {
            assert_eq!(
                apps::conf::single_paper(&app, viewer, paper),
                vanilla.single_paper(viewer, paper),
                "single_paper {paper} for {viewer}"
            );
        }
        for user in 1..=12 {
            assert_eq!(
                apps::conf::single_user(&app, viewer, user),
                vanilla.single_user(viewer, user),
                "single_user {user} for {viewer}"
            );
        }
    }
}

#[test]
fn conference_final_phase_agrees() {
    let w = workload::conference(6, 5);
    let app = w.app;
    let mut vanilla = w.vanilla;
    apps::conf::set_phase(&app, apps::conf::PHASE_FINAL).unwrap();
    vanilla.set_phase(apps::conf::PHASE_FINAL);
    for viewer in [Viewer::Anonymous, Viewer::User(2), Viewer::User(6)] {
        assert_eq!(
            apps::conf::all_papers(&app, &viewer),
            vanilla.all_papers(&viewer),
            "final-phase all_papers for {viewer}"
        );
    }
}

#[test]
fn health_pages_agree_for_every_viewer() {
    let w = workload::health(15);
    let app = w.app;
    let mut vanilla = w.vanilla;
    let viewers: Vec<Viewer> = std::iter::once(Viewer::Anonymous)
        .chain((1..=15).map(Viewer::User))
        .collect();
    for viewer in &viewers {
        assert_eq!(
            apps::health::all_records_summary(&app, viewer),
            vanilla.all_records_summary(viewer),
            "all_records for {viewer}"
        );
    }
    let n_records = vanilla.db.all("health_record").unwrap().len() as i64;
    for viewer in &viewers {
        for rec in 1..=n_records {
            assert_eq!(
                apps::health::single_record(&app, viewer, rec),
                vanilla.single_record(viewer, rec),
                "record {rec} for {viewer}"
            );
        }
    }
}

#[test]
fn courses_pages_agree_for_every_viewer() {
    let w = workload::courses(8);
    let app = w.app;
    let mut vanilla = w.vanilla;
    let n_users = vanilla.db.all("cuser").unwrap().len() as i64;
    let viewers: Vec<Viewer> = std::iter::once(Viewer::Anonymous)
        .chain((1..=n_users).map(Viewer::User))
        .collect();
    for viewer in &viewers {
        assert_eq!(
            apps::courses::all_courses(&app, viewer),
            vanilla.all_courses(viewer),
            "all_courses for {viewer}"
        );
    }
}

#[test]
fn courses_pruned_and_unpruned_agree_with_baseline() {
    let w = workload::courses(6);
    let app = w.app;
    let mut vanilla = w.vanilla;
    for viewer in [
        Viewer::Anonymous,
        Viewer::User(w.student),
        Viewer::User(w.instructor),
    ] {
        let baseline = vanilla.all_courses(&viewer);
        assert_eq!(apps::courses::all_courses(&app, &viewer), baseline);
        assert_eq!(
            apps::courses::all_courses_no_pruning(&app, &viewer),
            baseline,
            "no-pruning page must agree for {viewer}"
        );
    }
}

/// Courses: *every* page (course list with and without pruning, every
/// submission view) for *every* viewer, with both graded and ungraded
/// submissions on the page — the same exhaustive coverage the
/// conference app gets in `conference_all_pages_agree_for_every_viewer`.
#[test]
fn courses_all_pages_agree_for_every_viewer() {
    use microdb::Value;
    let w = workload::courses(5);
    let app = w.app;
    let mut vanilla = w.vanilla;
    // One submission per assignment from the enrolled student; every
    // other submission is graded, so both states of the stateful
    // grade policy appear.
    let n_assignments = vanilla.db.all("assignment").unwrap().len() as i64;
    let mut submissions = Vec::new();
    for a in 1..=n_assignments {
        let row = vec![
            Value::Int(a),
            Value::Int(w.student),
            Value::from(format!("answer-{a}")),
            Value::Int(-1),
            Value::Bool(false),
        ];
        let sj = app.create("submission", row.clone()).unwrap();
        let sv = vanilla.db.insert("submission", row).unwrap();
        assert_eq!(sj, sv, "submission ids must line up");
        submissions.push(sj);
        if a % 2 == 0 {
            apps::courses::grade_submission(&app, sj, 80 + a).unwrap();
            vanilla
                .db
                .update(
                    "submission",
                    sv,
                    &[
                        ("grade".to_owned(), Value::Int(80 + a)),
                        ("graded".to_owned(), Value::Bool(true)),
                    ],
                )
                .unwrap();
        }
    }
    let n_users = vanilla.db.all("cuser").unwrap().len() as i64;
    let viewers: Vec<Viewer> = std::iter::once(Viewer::Anonymous)
        .chain((1..=n_users).map(Viewer::User))
        .collect();
    for viewer in &viewers {
        let baseline = vanilla.all_courses(viewer);
        assert_eq!(
            apps::courses::all_courses(&app, viewer),
            baseline,
            "all_courses for {viewer}"
        );
        assert_eq!(
            apps::courses::all_courses_no_pruning(&app, viewer),
            baseline,
            "all_courses_no_pruning for {viewer}"
        );
        for &s in &submissions {
            assert_eq!(
                apps::courses::view_submission(&app, viewer, s),
                vanilla.view_submission(viewer, s),
                "view_submission {s} for {viewer}"
            );
        }
    }
}

/// Health: every page for every viewer across a full waiver
/// lifecycle — grant to the insurer, grant to a stranger, add an
/// inactive waiver — exercising the output-time stateful policy.
#[test]
fn health_waiver_lifecycle_agrees_for_every_viewer() {
    use microdb::Value;
    let w = workload::health(12);
    let mut app = w.app;
    let mut vanilla = w.vanilla;
    let n_users = vanilla.db.all("individual").unwrap().len() as i64;
    let n_records = vanilla.db.all("health_record").unwrap().len() as i64;
    let viewers: Vec<Viewer> = std::iter::once(Viewer::Anonymous)
        .chain((1..=n_users).map(Viewer::User))
        .collect();

    let check_all_pages = |app: &mut jacqueline::App,
                           vanilla: &mut apps::health_vanilla::HealthVanilla,
                           stage: &str| {
        for viewer in &viewers {
            assert_eq!(
                apps::health::all_records_summary(app, viewer),
                vanilla.all_records_summary(viewer),
                "[{stage}] all_records for {viewer}"
            );
            for rec in 1..=n_records {
                assert_eq!(
                    apps::health::single_record(app, viewer, rec),
                    vanilla.single_record(viewer, rec),
                    "[{stage}] record {rec} for {viewer}"
                );
            }
        }
    };
    check_all_pages(&mut app, &mut vanilla, "initial");

    // Grant a genuine stranger to record 1 (neither its patient,
    // doctor, nor insurer) an active waiver — their view of the
    // record must flip from protected to visible in *both* worlds —
    // then add an *inactive* waiver for record 2, which must grant
    // nothing.
    let mirror_waiver = |app: &mut jacqueline::App,
                         vanilla: &mut apps::health_vanilla::HealthVanilla,
                         record: i64,
                         grantee: i64,
                         active: bool| {
        apps::health::set_waiver(app, record, grantee, active).unwrap();
        vanilla
            .db
            .insert(
                "waiver",
                vec![Value::Int(record), Value::Int(grantee), Value::Bool(active)],
            )
            .unwrap();
    };
    let record1 = vanilla.db.get("health_record", 1).unwrap().unwrap();
    let involved: Vec<i64> = record1[1..=3].iter().filter_map(|v| v.as_int()).collect();
    let stranger = (1..=n_users)
        .find(|u| !involved.contains(u))
        .expect("a stranger to record 1 exists");
    assert!(
        apps::health::single_record(&app, &Viewer::User(stranger), 1).contains("[protected]"),
        "the chosen stranger must start out locked out"
    );
    mirror_waiver(&mut app, &mut vanilla, 1, stranger, true);
    assert!(
        !apps::health::single_record(&app, &Viewer::User(stranger), 1).contains("[protected]"),
        "the active waiver must unlock record 1 for the stranger"
    );
    check_all_pages(&mut app, &mut vanilla, "after grant");
    if n_records >= 2 {
        mirror_waiver(&mut app, &mut vanilla, 2, w.patient, false);
        check_all_pages(&mut app, &mut vanilla, "after inactive waiver");
    }
}

#[test]
fn submissions_agree_after_grading() {
    let w = workload::courses(4);
    let app = w.app;
    let mut vanilla = w.vanilla;
    use microdb::Value;
    // Create the same submission in both worlds, grade only later.
    let subm_row = vec![
        Value::Int(1),
        Value::Int(w.student),
        Value::from("answer"),
        Value::Int(-1),
        Value::Bool(false),
    ];
    let sj = app.create("submission", subm_row.clone()).unwrap();
    let sv = vanilla.db.insert("submission", subm_row).unwrap();
    assert_eq!(sj, sv);
    for viewer in [
        Viewer::User(w.student),
        Viewer::User(w.instructor),
        Viewer::Anonymous,
    ] {
        assert_eq!(
            apps::courses::view_submission(&app, &viewer, sj),
            vanilla.view_submission(&viewer, sv),
            "pre-grading view for {viewer}"
        );
    }
    apps::courses::grade_submission(&app, sj, 88).unwrap();
    vanilla
        .db
        .update(
            "submission",
            sv,
            &[
                ("grade".to_owned(), Value::Int(88)),
                ("graded".to_owned(), Value::Bool(true)),
            ],
        )
        .unwrap();
    for viewer in [
        Viewer::User(w.student),
        Viewer::User(w.instructor),
        Viewer::Anonymous,
    ] {
        assert_eq!(
            apps::courses::view_submission(&app, &viewer, sj),
            vanilla.view_submission(&viewer, sv),
            "post-grading view for {viewer}"
        );
    }
}

/// Decode-cache differential: with the cache disabled, every page of
/// every app must render byte-identically for every viewer — pinning
/// that the generation-stamped decode cache is a pure optimization.
/// Pages are rendered twice per configuration so the second cached
/// pass is guaranteed to serve from a warm snapshot.
#[test]
fn decode_cache_differential_all_pages_all_viewers() {
    // Conference: all four pages.
    let w = workload::conference(10, 8);
    let mut app = w.app;
    let viewers: Vec<Viewer> = std::iter::once(Viewer::Anonymous)
        .chain((1..=10).map(Viewer::User))
        .collect();
    let render_conf = |app: &jacqueline::App| {
        let mut pages = Vec::new();
        for viewer in &viewers {
            pages.push(apps::conf::all_papers(app, viewer));
            pages.push(apps::conf::all_users(app, viewer));
            for paper in 1..=8 {
                pages.push(apps::conf::single_paper(app, viewer, paper));
            }
            for user in 1..=10 {
                pages.push(apps::conf::single_user(app, viewer, user));
            }
        }
        pages
    };
    let _warm = render_conf(&app);
    let cached = render_conf(&app);
    assert!(
        app.db.decode_cache_stats().hits > 0,
        "the warm pass must actually exercise the cache"
    );
    app.db.set_decode_cache(false);
    let uncached = render_conf(&app);
    assert_eq!(
        cached, uncached,
        "conference pages must not depend on the cache"
    );
    app.db.set_decode_cache(true);
    let hits_before = app.db.decode_cache_stats().hits;
    let again = render_conf(&app);
    assert_eq!(again, cached, "re-enabling the cache changes nothing");
    assert!(
        app.db.decode_cache_stats().hits > hits_before,
        "the re-enabled pass must serve from the cache again"
    );

    // Courses: both course pages and every submission view.
    let w = workload::courses(6);
    let mut app = w.app;
    let n_users = 1 + 6;
    let course_viewers: Vec<Viewer> = std::iter::once(Viewer::Anonymous)
        .chain((1..=n_users).map(Viewer::User))
        .collect();
    let render_courses = |app: &jacqueline::App| {
        let mut pages = Vec::new();
        for viewer in &course_viewers {
            pages.push(apps::courses::all_courses(app, viewer));
            pages.push(apps::courses::all_courses_no_pruning(app, viewer));
        }
        pages
    };
    let _warm = render_courses(&app);
    let cached = render_courses(&app);
    app.db.set_decode_cache(false);
    assert_eq!(render_courses(&app), cached, "courses pages differ");

    // Health: summary plus every record page.
    let w = workload::health(12);
    let mut app = w.app;
    let mut vanilla = w.vanilla;
    let n_records = vanilla.db.all("health_record").unwrap().len() as i64;
    let health_viewers: Vec<Viewer> = std::iter::once(Viewer::Anonymous)
        .chain((1..=12).map(Viewer::User))
        .collect();
    let render_health = |app: &jacqueline::App| {
        let mut pages = Vec::new();
        for viewer in &health_viewers {
            pages.push(apps::health::all_records_summary(app, viewer));
            for rec in 1..=n_records {
                pages.push(apps::health::single_record(app, viewer, rec));
            }
        }
        pages
    };
    let _warm = render_health(&app);
    let cached = render_health(&app);
    app.db.set_decode_cache(false);
    assert_eq!(render_health(&app), cached, "health pages differ");
}

/// Delta-maintenance differential: a deltas-on app and a deltas-off
/// twin (every stale slot pays a full re-decode) must render the full
/// all-pages × all-viewers conference grid byte-identically across an
/// interleaved write mix — inserts (papers, reviews), updates (phase,
/// review score), and a delete. Pins WAL-fed delta repair as a pure
/// optimization: same bytes, fewer decodes.
#[test]
fn delta_maintenance_differential_all_pages_under_writes() {
    use microdb::Value;
    let on = workload::conference(8, 6).app;
    let mut off = workload::conference(8, 6).app;
    assert!(
        off.db.set_delta_maintenance(false),
        "the ablation flag reports the previous (enabled) state"
    );
    let viewers: Vec<Viewer> = std::iter::once(Viewer::Anonymous)
        .chain((1..=8).map(Viewer::User))
        .collect();
    let render = |app: &jacqueline::App, papers: &[i64]| {
        let mut pages = Vec::new();
        for viewer in &viewers {
            pages.push(apps::conf::all_papers(app, viewer));
            pages.push(apps::conf::all_users(app, viewer));
            for paper in papers {
                pages.push(apps::conf::single_paper(app, viewer, *paper));
            }
            for user in 1..=8 {
                pages.push(apps::conf::single_user(app, viewer, user));
            }
        }
        pages
    };
    let mut papers: Vec<i64> = (1..=6).collect();
    let check = |on: &jacqueline::App, off: &jacqueline::App, papers: &[i64], when: &str| {
        assert_eq!(render(on, papers), render(off, papers), "grid {when}");
    };
    check(&on, &off, &papers, "before any write");

    // Insert: a new paper lands in both twins.
    let pa = apps::conf::submit_paper(&on, &Viewer::User(3), "Delta paper").unwrap();
    let pb = apps::conf::submit_paper(&off, &Viewer::User(3), "Delta paper").unwrap();
    assert_eq!(pa, pb);
    papers.push(pa);
    check(&on, &off, &papers, "after insert");

    // Insert + update: a review, then the phase flips to final.
    let ra = apps::conf::submit_review(&on, &Viewer::User(2), pa, 2, "ok").unwrap();
    let rb = apps::conf::submit_review(&off, &Viewer::User(2), pa, 2, "ok").unwrap();
    assert_eq!(ra, rb);
    apps::conf::set_phase(&on, apps::conf::PHASE_FINAL).unwrap();
    apps::conf::set_phase(&off, apps::conf::PHASE_FINAL).unwrap();
    check(&on, &off, &papers, "after review + phase flip");

    // Update: the review's score changes in place.
    on.update_fields("review", ra, &[(2, Value::Int(-1))], &Default::default())
        .unwrap();
    off.update_fields("review", rb, &[(2, Value::Int(-1))], &Default::default())
        .unwrap();
    check(&on, &off, &papers, "after review rescore");

    // Delete: the review is withdrawn from both twins.
    on.db.delete("review", ra, &Default::default()).unwrap();
    off.db.delete("review", rb, &Default::default()).unwrap();
    check(&on, &off, &papers, "after review delete");

    // The twins diverged only in *how* pages were produced.
    assert!(
        on.db.decode_cache_stats().delta_applies > 0,
        "the deltas-on twin must actually repair slots in place"
    );
    assert_eq!(
        off.db.decode_cache_stats().delta_applies,
        0,
        "the ablated twin never applies deltas"
    );
}

/// Render-cache differential + adversarial per-viewer key safety: the
/// full all-pages × all-viewers conference grid served through the
/// executor with the render cache ON must be byte-identical to a
/// cache-OFF twin *and* to the hand-coded vanilla baseline, across
/// interleaved writes (paper insert, review insert, phase flip). The
/// serving order is adversarial on purpose: by the time any viewer
/// requests a page, the cache is already warm with *other* viewers'
/// renders of that same page — a key that under-distinguished viewers
/// would serve one viewer's bytes to another and break the grid
/// against the baseline immediately.
#[test]
fn render_cache_differential_all_pages_all_viewers_under_writes() {
    use jacqueline::{Executor, Request};
    let on = workload::conference(10, 8);
    let off = workload::conference(10, 8);
    let app_on = on.app;
    let app_off = off.app;
    let app_norepair = workload::conference(10, 8).app;
    let mut vanilla = on.vanilla;
    assert!(
        app_off.set_render_cache(false),
        "the ablation flag reports the previous (enabled) state"
    );
    assert!(
        app_norepair.set_fragment_repair(false),
        "fragment repair defaults on; this leg ablates it (cache stays on)"
    );
    let router = apps::conf::router();
    let viewers: Vec<Viewer> = std::iter::once(Viewer::Anonymous)
        .chain((1..=10).map(Viewer::User))
        .collect();

    let grid = |app: &jacqueline::App, papers: &[i64]| -> Vec<String> {
        let mut requests = Vec::new();
        for viewer in &viewers {
            requests.push(Request::new("papers/all", viewer.clone()));
            requests.push(Request::new("users/all", viewer.clone()));
            for paper in papers {
                requests.push(
                    Request::new("papers/one", viewer.clone()).with_param("id", &paper.to_string()),
                );
            }
            for user in 1..=10 {
                requests.push(
                    Request::new("users/one", viewer.clone()).with_param("id", &user.to_string()),
                );
            }
        }
        Executor::sequential()
            .run(app, &router, &requests)
            .into_iter()
            .map(|r| {
                assert_eq!(r.status, 200);
                r.body
            })
            .collect()
    };
    let baseline = |vanilla: &mut apps::conf_vanilla::ConfVanilla,
                    viewers: &[Viewer],
                    papers: &[i64]|
     -> Vec<String> {
        let mut pages = Vec::new();
        for viewer in viewers {
            pages.push(vanilla.all_papers(viewer));
            pages.push(vanilla.all_users(viewer));
            for paper in papers {
                pages.push(vanilla.single_paper(viewer, *paper));
            }
            for user in 1..=10 {
                pages.push(vanilla.single_user(viewer, user));
            }
        }
        pages
    };

    let mut papers: Vec<i64> = (1..=8).collect();
    // Cold pass populates, warm pass must serve the same bytes back.
    let cold = grid(&app_on, &papers);
    let warm = grid(&app_on, &papers);
    assert_eq!(warm, cold, "hits must replay the rendered bytes exactly");
    let warm_stats = app_on.render_cache_stats();
    assert_eq!(
        warm_stats.hits as usize,
        cold.len(),
        "the second pass must be all hits"
    );
    assert_eq!(grid(&app_off, &papers), cold, "cache-off twin agrees");
    assert_eq!(grid(&app_norepair, &papers), cold, "repair-off twin agrees");
    assert_eq!(
        baseline(&mut vanilla, &viewers, &papers),
        cold,
        "hand-coded baseline agrees"
    );
    let off_stats = app_off.render_cache_stats();
    assert_eq!(
        (off_stats.hits, off_stats.misses),
        (0, 0),
        "the ablated twin never consults the cache"
    );

    // Interleaved writes, mirrored into all three worlds.
    let stages: Vec<&str> = vec!["after paper insert", "after review", "after phase flip"];
    for stage in stages {
        match stage {
            "after paper insert" => {
                let a = apps::conf::submit_paper(&app_on, &Viewer::User(3), "Cache paper").unwrap();
                let b =
                    apps::conf::submit_paper(&app_off, &Viewer::User(3), "Cache paper").unwrap();
                let n = apps::conf::submit_paper(&app_norepair, &Viewer::User(3), "Cache paper")
                    .unwrap();
                let v = vanilla.submit_paper(&Viewer::User(3), "Cache paper");
                assert_eq!((a, b, n), (v, v, v), "paper ids line up");
                papers.push(a);
            }
            "after review" => {
                let paper = *papers.last().unwrap();
                let a =
                    apps::conf::submit_review(&app_on, &Viewer::User(2), paper, 2, "ok").unwrap();
                let b =
                    apps::conf::submit_review(&app_off, &Viewer::User(2), paper, 2, "ok").unwrap();
                let n = apps::conf::submit_review(&app_norepair, &Viewer::User(2), paper, 2, "ok")
                    .unwrap();
                let v = vanilla.submit_review(&Viewer::User(2), paper, 2, "ok");
                assert_eq!((a, b, n), (v, v, v), "review ids line up");
            }
            "after phase flip" => {
                apps::conf::set_phase(&app_on, apps::conf::PHASE_FINAL).unwrap();
                apps::conf::set_phase(&app_off, apps::conf::PHASE_FINAL).unwrap();
                apps::conf::set_phase(&app_norepair, apps::conf::PHASE_FINAL).unwrap();
                vanilla.set_phase(apps::conf::PHASE_FINAL);
            }
            _ => unreachable!(),
        }
        // Double pass on the cached app: the first re-validates and
        // re-renders what the write invalidated, the second must hit —
        // and every byte must match the ablated twin and the baseline.
        let first = grid(&app_on, &papers);
        let second = grid(&app_on, &papers);
        assert_eq!(second, first, "{stage}: warm pass replays bytes");
        assert_eq!(grid(&app_off, &papers), first, "{stage}: cache-off twin");
        assert_eq!(
            grid(&app_norepair, &papers),
            first,
            "{stage}: repair-off twin"
        );
        assert_eq!(
            baseline(&mut vanilla, &viewers, &papers),
            first,
            "{stage}: baseline"
        );
    }
    let final_stats = app_on.render_cache_stats();
    assert!(
        final_stats.invalidated > 0,
        "the writes must actually invalidate stamped entries"
    );
    assert!(
        final_stats.hits > warm_stats.hits,
        "post-write passes must re-warm and hit again"
    );
    assert!(
        final_stats.repairs > 0,
        "the paper insert must repair the warm papers/all entries in place"
    );
    assert_eq!(
        app_norepair.render_cache_stats().repairs,
        0,
        "the repair-off twin never repairs — it pays full re-renders"
    );
}

/// Fragment-repair property test: over randomized interleavings of
/// paper inserts, in-place title updates, and deletes, the page grid
/// served for *every* viewer must stay byte-identical across three
/// worlds — fragments on (stale entries repaired from the journal),
/// fragments off (stale entries discarded, full re-render), and cache
/// off (ground truth) — after every single write. Seeds are pinned so
/// a failure replays deterministically; `users/all` rides along as
/// the no-fragment-spec control.
#[test]
fn fragment_repair_differential_randomized_interleavings() {
    use jacqueline::{Executor, Request};
    use microdb::Value;

    struct SplitMix64(u64);
    impl SplitMix64 {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    let router = apps::conf::router();
    let viewers: Vec<Viewer> = std::iter::once(Viewer::Anonymous)
        .chain((1..=6).map(Viewer::User))
        .collect();
    for seed in [1u64, 7, 42, 0xbeef] {
        let mut rng = SplitMix64(seed);
        let repairing = workload::conference(6, 4).app;
        let discarding = workload::conference(6, 4).app;
        let uncached = workload::conference(6, 4).app;
        assert!(discarding.set_fragment_repair(false));
        assert!(uncached.set_render_cache(false));
        let grid = |app: &jacqueline::App| -> Vec<String> {
            let requests: Vec<Request> = viewers
                .iter()
                .flat_map(|v| {
                    [
                        Request::new("papers/all", v.clone()),
                        Request::new("users/all", v.clone()),
                    ]
                })
                .collect();
            Executor::sequential()
                .run(app, &router, &requests)
                .into_iter()
                .map(|r| {
                    assert_eq!(r.status, 200);
                    r.body
                })
                .collect()
        };
        // Warm every world so the first write lands on stamped entries.
        let cold = grid(&repairing);
        assert_eq!(grid(&discarding), cold, "seed {seed}: warm-up");
        assert_eq!(grid(&uncached), cold, "seed {seed}: warm-up uncached");

        let mut papers: Vec<i64> = (1..=4).collect();
        for step in 0..24 {
            match rng.next() % 3 {
                0 => {
                    let author = 1 + (rng.next() % 6) as i64;
                    let title = format!("p{seed}-{step}");
                    let a = apps::conf::submit_paper(&repairing, &Viewer::User(author), &title)
                        .unwrap();
                    let b = apps::conf::submit_paper(&discarding, &Viewer::User(author), &title)
                        .unwrap();
                    let c =
                        apps::conf::submit_paper(&uncached, &Viewer::User(author), &title).unwrap();
                    assert_eq!((a, b), (c, c), "seed {seed} step {step}: ids line up");
                    papers.push(a);
                }
                1 => {
                    let jid = papers[(rng.next() as usize) % papers.len()];
                    let title = Value::from(format!("re{seed}-{step}"));
                    for app in [&repairing, &discarding, &uncached] {
                        app.update_fields("paper", jid, &[(0, title.clone())], &Default::default())
                            .unwrap();
                    }
                }
                _ => {
                    if papers.len() > 1 {
                        let ix = (rng.next() as usize) % papers.len();
                        let jid = papers.swap_remove(ix);
                        for app in [&repairing, &discarding, &uncached] {
                            app.db.delete("paper", jid, &Default::default()).unwrap();
                        }
                    }
                }
            }
            let now = grid(&repairing);
            assert_eq!(
                grid(&discarding),
                now,
                "seed {seed} step {step}: repair ≡ full re-render"
            );
            assert_eq!(
                grid(&uncached),
                now,
                "seed {seed} step {step}: repair ≡ uncached ground truth"
            );
        }
        let stats = repairing.render_cache_stats();
        assert!(
            stats.repairs > 0,
            "seed {seed}: the repairing world must exercise the repair path"
        );
        assert_eq!(
            discarding.render_cache_stats().repairs,
            0,
            "seed {seed}: the ablated world never repairs"
        );
    }
}

/// The O(1) claim, counter-pinned at scale: with 1024 papers on the
/// page, one `papers/submit` repairs exactly **one** fragment — the
/// `repaired_fragments` counter moves by 1, not by 1024 — and the
/// spliced page is byte-identical to a from-scratch faceted render.
#[test]
fn single_write_repairs_one_fragment_at_scale() {
    use jacqueline::{Executor, Request};
    let app = workload::conference(6, 4).app;
    let router = apps::conf::router();
    for i in 5..=1024i64 {
        let author = 1 + (i % 6);
        apps::conf::submit_paper(&app, &Viewer::User(author), &format!("bulk {i}")).unwrap();
    }
    let viewer = Viewer::User(2);
    let warm = Executor::sequential().run(
        &app,
        &router,
        &[
            Request::new("papers/all", viewer.clone()),
            Request::new("papers/all", viewer.clone()),
        ],
    );
    assert_eq!(warm[1].body, warm[0].body, "the second read is a hit");
    let before = app.render_cache_stats();

    apps::conf::submit_paper(&app, &Viewer::User(3), "the one new paper").unwrap();
    let repaired =
        Executor::sequential().run(&app, &router, &[Request::new("papers/all", viewer.clone())]);
    assert!(repaired[0].body.contains("the one new paper"));
    let after = app.render_cache_stats();
    assert_eq!(
        after.repairs - before.repairs,
        1,
        "the stale entry is repaired, not discarded"
    );
    assert_eq!(
        after.repaired_fragments - before.repaired_fragments,
        1,
        "one write to a 1024-row page re-renders one fragment, not a thousand"
    );
    assert_eq!(
        repaired[0].body,
        apps::conf::all_papers(&app, &viewer),
        "the spliced page equals a from-scratch render"
    );
}

/// Cache differential across *mutation*: pages rendered after a write
/// agree between cached and uncached apps (the cache must invalidate,
/// not serve stale facets).
#[test]
fn decode_cache_differential_survives_writes() {
    let cached = workload::conference(8, 6).app;
    let mut uncached = workload::conference(8, 6).app;
    uncached.db.set_decode_cache(false);
    let viewers: Vec<Viewer> = std::iter::once(Viewer::Anonymous)
        .chain((1..=8).map(Viewer::User))
        .collect();
    // Warm the cache, then mutate both apps identically.
    for viewer in &viewers {
        assert_eq!(
            apps::conf::all_papers(&cached, viewer),
            apps::conf::all_papers(&uncached, viewer)
        );
    }
    let pj = apps::conf::submit_paper(&cached, &Viewer::User(3), "Post-cache paper").unwrap();
    let pu = apps::conf::submit_paper(&uncached, &Viewer::User(3), "Post-cache paper").unwrap();
    assert_eq!(pj, pu);
    apps::conf::set_phase(&cached, apps::conf::PHASE_FINAL).unwrap();
    apps::conf::set_phase(&uncached, apps::conf::PHASE_FINAL).unwrap();
    for viewer in &viewers {
        assert_eq!(
            apps::conf::all_papers(&cached, viewer),
            apps::conf::all_papers(&uncached, viewer),
            "post-write page for {viewer}"
        );
        assert_eq!(
            apps::conf::single_paper(&cached, viewer, pj),
            apps::conf::single_paper(&uncached, viewer, pj),
            "new paper page for {viewer}"
        );
    }
}
