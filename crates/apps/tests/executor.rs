//! Concurrent-executor differential tests: the multi-threaded request
//! path must produce **byte-identical** page output to the sequential
//! path (and therefore, transitively through `differential.rs`, to the
//! hand-coded baselines) — the strongest check that sharing one
//! `Send + Sync` faceted database across worker threads changes
//! nothing observable.

use apps::workload;
use jacqueline::{App, Executor, Request, Router, Viewer};

/// All three apps now ship real routers (with declared footprints, so
/// in debug builds every dispatch below also runs the footprint
/// checker over the full differential grid).
fn courses_router() -> Router {
    apps::courses::router()
}

fn health_router() -> Router {
    apps::health::router()
}

/// Runs `requests` sequentially and at 2/4 threads, asserting the
/// responses (status *and* body bytes) are identical.
fn assert_concurrent_matches_sequential(
    app: App,
    router: &Router,
    requests: &[Request],
    context: &str,
) {
    let sequential = Executor::sequential().run(&app, router, requests);
    for threads in [2, 4] {
        let concurrent = Executor::with_threads(threads).run(&app, router, requests);
        assert_eq!(
            concurrent.len(),
            sequential.len(),
            "[{context}] response count at {threads} threads"
        );
        for (i, (c, s)) in concurrent.iter().zip(&sequential).enumerate() {
            assert_eq!(
                c, s,
                "[{context}] request {i} ({}) differs at {threads} threads",
                requests[i].path
            );
        }
    }
}

#[test]
fn conference_pages_identical_across_executors() {
    let w = workload::conference(12, 10);
    let router = apps::conf::router();
    // The full differential grid: every page for every viewer.
    let viewers: Vec<Viewer> = std::iter::once(Viewer::Anonymous)
        .chain((1..=12).map(Viewer::User))
        .collect();
    let mut requests = Vec::new();
    for viewer in &viewers {
        requests.push(Request::new("papers/all", viewer.clone()));
        requests.push(Request::new("users/all", viewer.clone()));
        for paper in 1..=10 {
            requests.push(
                Request::new("papers/one", viewer.clone()).with_param("id", &paper.to_string()),
            );
        }
        for user in 1..=12 {
            requests.push(
                Request::new("users/one", viewer.clone()).with_param("id", &user.to_string()),
            );
        }
    }
    assert_concurrent_matches_sequential(w.app, &router, &requests, "conference");
}

#[test]
fn conference_executor_matches_vanilla_baseline() {
    // Close the loop with the hand-coded implementation: pages served
    // by the 4-thread executor equal the baseline's renderings.
    let w = workload::conference(8, 6);
    let mut vanilla = w.vanilla;
    let router = apps::conf::router();
    let viewers: Vec<Viewer> = std::iter::once(Viewer::Anonymous)
        .chain((1..=8).map(Viewer::User))
        .collect();
    let requests: Vec<Request> = viewers
        .iter()
        .map(|v| Request::new("papers/all", v.clone()))
        .collect();
    let app = w.app;
    let responses = Executor::with_threads(4).run(&app, &router, &requests);
    for (viewer, response) in viewers.iter().zip(&responses) {
        assert_eq!(
            response.body,
            vanilla.all_papers(viewer),
            "executor page for {viewer} must match the baseline"
        );
    }
}

#[test]
fn courses_pages_identical_across_executors() {
    let w = workload::courses(8);
    let router = courses_router();
    let n_users = 1 + 8; // student + one instructor per course
    let viewers: Vec<Viewer> = std::iter::once(Viewer::Anonymous)
        .chain((1..=n_users).map(Viewer::User))
        .collect();
    let mut requests = Vec::new();
    for viewer in &viewers {
        requests.push(Request::new("courses/all", viewer.clone()));
        requests.push(Request::new("courses/all_unpruned", viewer.clone()));
    }
    assert_concurrent_matches_sequential(w.app, &router, &requests, "courses");
}

#[test]
fn health_pages_identical_across_executors() {
    let w = workload::health(12);
    let router = health_router();
    let viewers: Vec<Viewer> = std::iter::once(Viewer::Anonymous)
        .chain((1..=12).map(Viewer::User))
        .collect();
    let mut requests = Vec::new();
    for viewer in &viewers {
        requests.push(Request::new("records/all", viewer.clone()));
        for rec in 1..=6 {
            requests.push(
                Request::new("records/one", viewer.clone()).with_param("id", &rec.to_string()),
            );
        }
    }
    assert_concurrent_matches_sequential(w.app, &router, &requests, "health");
}

/// The stress test of the issue: N threads × M requests on the
/// conference workload; results must match the sequential executor
/// request-for-request. Sized to bite in release CI while staying
/// tractable in debug runs.
#[test]
fn concurrent_stress_matches_sequential() {
    let w = workload::conference(16, 24);
    let router = apps::conf::router();
    let requests = workload::conference_requests(192, 16, 24);
    let app = w.app;
    let sequential = Executor::sequential().run(&app, &router, &requests);
    assert!(sequential.iter().all(|r| r.status == 200));
    for threads in [2, 4, 8] {
        let concurrent = Executor::with_threads(threads).run(&app, &router, &requests);
        assert_eq!(concurrent, sequential, "{threads} threads");
    }
}

#[test]
fn executor_serializes_interleaved_writes() {
    // Reads and writes interleaved: every write must land exactly
    // once, and a full read afterwards sees all of them.
    let w = workload::conference(8, 4);
    let router = apps::conf::router();
    let app = w.app;
    let mut requests: Vec<Request> = (0..16)
        .map(|i| {
            Request::new("papers/submit", Viewer::User(1 + i % 8))
                .with_param("title", &format!("Stress paper {i}"))
        })
        .collect();
    requests.extend((0..16).map(|i| Request::new("papers/all", Viewer::User(1 + i % 8))));
    let responses = Executor::with_threads(4).run(&app, &router, &requests);
    assert!(responses.iter().all(|r| r.status == 200));
    let papers = app.all("paper").unwrap();
    let distinct_new: std::collections::BTreeSet<i64> = papers
        .iter()
        .filter(|(_, r)| {
            r.fields[0]
                .as_str()
                .is_some_and(|t| t.starts_with("Stress paper"))
        })
        .map(|(_, r)| r.jid)
        .collect();
    assert_eq!(distinct_new.len(), 16, "each submit landed exactly once");
}
