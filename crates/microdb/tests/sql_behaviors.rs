//! SQL-behaviour tests: NULL semantics, LIKE, multi-key ORDER BY,
//! aggregation over joins — the surface the FORM and the baselines
//! rely on.

use microdb::{
    Aggregate, ColumnDef, ColumnType, Database, Operand, Predicate, Query, Schema, SortOrder, Value,
};

fn staff_db() -> Database {
    let mut db = Database::new();
    db.create_table(
        "staff",
        Schema::new(vec![
            ColumnDef::new("id", ColumnType::Int).auto_increment(),
            ColumnDef::new("name", ColumnType::Str),
            ColumnDef::new("dept", ColumnType::Int).nullable(),
            ColumnDef::new("salary", ColumnType::Int),
        ]),
    )
    .unwrap();
    db.create_table(
        "dept",
        Schema::new(vec![
            ColumnDef::new("id", ColumnType::Int).auto_increment(),
            ColumnDef::new("name", ColumnType::Str),
        ]),
    )
    .unwrap();
    for d in ["eng", "ops"] {
        db.insert("dept", vec![Value::Null, d.into()]).unwrap();
    }
    for (n, d, s) in [
        ("ada", Some(1), 120),
        ("bob", Some(1), 100),
        ("cy", Some(2), 90),
        ("dee", None, 80),
        ("ada2", Some(2), 100),
    ] {
        db.insert(
            "staff",
            vec![
                Value::Null,
                n.into(),
                Value::from(d.map(i64::from)),
                Value::Int(s),
            ],
        )
        .unwrap();
    }
    db
}

#[test]
fn null_never_matches_comparisons() {
    let mut db = staff_db();
    // dept = 1 OR dept <> 1 still excludes the NULL row.
    let q = Query::from("staff").filter(
        Predicate::eq(Operand::col("dept"), Operand::lit(1i64))
            .or(Predicate::ne(Operand::col("dept"), Operand::lit(1i64))),
    );
    assert_eq!(q.execute(&mut db).unwrap().len(), 4);
    // IS NULL finds it.
    let nulls = Query::from("staff")
        .filter(Predicate::IsNull(Operand::col("dept")))
        .execute(&mut db)
        .unwrap();
    assert_eq!(nulls.len(), 1);
    assert_eq!(nulls[0][1], Value::from("dee"));
}

#[test]
fn like_patterns_filter_strings() {
    let mut db = staff_db();
    let ada_ish = Query::from("staff")
        .filter(Predicate::Like(Operand::col("name"), "ada%".to_owned()))
        .execute(&mut db)
        .unwrap();
    assert_eq!(ada_ish.len(), 2);
    let contains_o = Query::from("staff")
        .filter(Predicate::Like(Operand::col("name"), "%o%".to_owned()))
        .execute(&mut db)
        .unwrap();
    assert_eq!(contains_o.len(), 1, "only bob");
}

#[test]
fn multi_key_order_by_is_stable_within_groups() {
    let mut db = staff_db();
    let rows = Query::from("staff")
        .order_by("salary", SortOrder::Desc)
        .order_by("name", SortOrder::Asc)
        .execute(&mut db)
        .unwrap();
    let names: Vec<&str> = rows.iter().map(|r| r[1].as_str().unwrap()).collect();
    assert_eq!(names, vec!["ada", "ada2", "bob", "cy", "dee"]);
}

#[test]
fn aggregate_over_join_groups() {
    let mut db = staff_db();
    let rs = Query::from("staff")
        .join("dept", "dept", "id")
        .execute_full(&mut db)
        .unwrap();
    // NULL-dept rows drop out of the inner join.
    assert_eq!(rs.rows.len(), 4);
    let by_dept = rs
        .group_by("dept.name", Aggregate::Sum, "staff.salary")
        .unwrap();
    assert_eq!(
        by_dept,
        vec![
            (Value::from("eng"), Value::Int(220)),
            (Value::from("ops"), Value::Int(190)),
        ]
    );
    assert_eq!(
        rs.aggregate(Aggregate::Max, "staff.salary").unwrap(),
        Value::Int(120)
    );
}

#[test]
fn limit_applies_after_ordering() {
    let mut db = staff_db();
    let top2 = Query::from("staff")
        .order_by("salary", SortOrder::Desc)
        .limit(2)
        .execute(&mut db)
        .unwrap();
    assert_eq!(top2.len(), 2);
    assert_eq!(top2[0][1], Value::from("ada"));
}

#[test]
fn update_through_predicates_respects_types() {
    let mut db = staff_db();
    let n = db
        .update(
            "staff",
            &Predicate::ge(Operand::col("salary"), Operand::lit(100i64)),
            &[("salary".to_owned(), Value::Int(99))],
        )
        .unwrap();
    assert_eq!(n, 3);
    let rich = Query::from("staff")
        .filter(Predicate::ge(Operand::col("salary"), Operand::lit(100i64)))
        .execute(&mut db)
        .unwrap();
    assert!(rich.is_empty());
}

#[test]
fn distinct_on_projection_after_join() {
    let mut db = staff_db();
    let depts = Query::from("staff")
        .join("dept", "dept", "id")
        .select(&["dept.name"])
        .distinct()
        .execute(&mut db)
        .unwrap();
    assert_eq!(depts.len(), 2);
}
