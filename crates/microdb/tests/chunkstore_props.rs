//! Property tests for the content-addressed chunk store: round-trip
//! fixpoints, clean-chunk byte sharing across consecutive
//! checkpoints, and clean errors on corrupted chunk files.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use microdb::chunkstore::{
    load_rows, write_dirty_row_chunks, write_row_chunks, ChunkStore, DirtyRows, CHUNK_ROWS,
};
use microdb::{Row, RowDelta, Value};
use proptest::prelude::*;

fn temp_dir(tag: &str, case: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "microdb_chunk_props_{tag}_{}_{case}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn arb_row() -> impl Strategy<Value = Row> {
    proptest::collection::vec(
        prop_oneof![
            (-50i64..50).prop_map(Value::Int),
            "[a-d]{0,4}".prop_map(Value::from),
            Just(Value::Null),
        ],
        1..4,
    )
}

fn arb_rows() -> impl Strategy<Value = Vec<Row>> {
    proptest::collection::vec(arb_row(), 0..(CHUNK_ROWS * 3 + 7))
}

/// The on-disk chunk file names under `dir/chunks/`.
fn chunk_files(dir: &Path) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    if let Ok(entries) = std::fs::read_dir(dir.join("chunks")) {
        for entry in entries.flatten() {
            names.insert(entry.file_name().to_string_lossy().into_owned());
        }
    }
    names
}

proptest! {
    /// Export → import → export is a fixpoint: the second export
    /// produces byte-identical chunk refs and writes zero new files.
    #[test]
    fn chunk_round_trip_is_a_fixpoint(rows in arb_rows(), case in 0u64..u64::MAX) {
        let dir = temp_dir("fixpoint", case);
        let store = ChunkStore::open(&dir).unwrap();
        let (refs, _) = write_row_chunks(&store, &rows).unwrap();
        let loaded = load_rows(&store, &refs).unwrap();
        prop_assert_eq!(&loaded, &rows);
        let files_before = chunk_files(&dir);
        let (again, stats) = write_row_chunks(&store, &loaded).unwrap();
        prop_assert_eq!(&again, &refs, "re-export must produce identical chunk refs");
        prop_assert_eq!(stats.written, 0, "re-export of identical rows writes nothing");
        prop_assert_eq!(chunk_files(&dir), files_before);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// After rewriting a handful of rows, the incremental writer
    /// shares every clean chunk by hash with the previous checkpoint
    /// (non-empty hash-set intersection, dirty count bounded) and
    /// still loads back the mutated rows exactly.
    #[test]
    fn clean_chunks_are_byte_shared_across_checkpoints(
        rows in arb_rows(),
        touch in proptest::collection::vec(0usize..1024, 1..4),
        case in 0u64..u64::MAX,
    ) {
        prop_assume!(!rows.is_empty());
        let mut rows = rows;
        let dir = temp_dir("shared", case);
        let store = ChunkStore::open(&dir).unwrap();
        let (prev, _) = write_row_chunks(&store, &rows).unwrap();

        let mut dirty = DirtyRows::new(rows.len());
        let mut touched_chunks = BTreeSet::new();
        for t in &touch {
            let ix = t % rows.len();
            let old = rows[ix].clone();
            rows[ix] = vec![Value::Int(-999 - i64::try_from(*t).unwrap())];
            dirty.apply(&RowDelta::Rewrite(vec![(ix, old, rows[ix].clone())]));
            touched_chunks.insert(ix / CHUNK_ROWS);
        }
        let (next, stats) = write_dirty_row_chunks(&store, &rows, &prev, &dirty).unwrap();
        prop_assert!(
            stats.written <= touched_chunks.len(),
            "wrote {} chunks for {} touched",
            stats.written,
            touched_chunks.len()
        );
        let prev_hashes: BTreeSet<_> = prev.iter().map(|r| r.hash.clone()).collect();
        let next_hashes: BTreeSet<_> = next.iter().map(|r| r.hash.clone()).collect();
        prop_assert_eq!(
            prev_hashes.intersection(&next_hashes).count(),
            prev.len() - touched_chunks.len(),
            "every untouched chunk is carried over by content hash"
        );
        prop_assert_eq!(load_rows(&store, &next).unwrap(), rows);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A bit flip anywhere in any chunk file yields a clean error
    /// from the verifying read — never a panic, never silent
    /// acceptance — and leaves the store usable for intact chunks.
    #[test]
    fn bit_flipped_chunk_reads_error_cleanly(
        rows in arb_rows(),
        byte_seed in 0usize..4096,
        bit in 0u8..8,
        case in 0u64..u64::MAX,
    ) {
        prop_assume!(!rows.is_empty());
        let dir = temp_dir("bitflip", case);
        let store = ChunkStore::open(&dir).unwrap();
        let (refs, _) = write_row_chunks(&store, &rows).unwrap();
        let victim = &refs[byte_seed % refs.len()];
        let path = store.path(&victim.hash);
        let mut bytes = std::fs::read(&path).unwrap();
        let at = byte_seed % bytes.len();
        bytes[at] ^= 1 << bit;
        std::fs::write(&path, &bytes).unwrap();
        prop_assert!(
            store.read(&victim.hash).is_err(),
            "hash verification must reject the flipped chunk"
        );
        prop_assert!(load_rows(&store, &refs).is_err());
        // Intact chunks still read fine after the failure.
        for r in refs.iter().filter(|r| r.hash != victim.hash) {
            prop_assert!(store.read(&r.hash).is_ok());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
