//! Property tests: relational-algebra laws and index/scan agreement.

use microdb::{
    ColumnDef, ColumnType, Database, Operand, Predicate, Query, Schema, SortOrder, Value,
};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (0i64..10).prop_map(Value::Int),
        "[a-c]{1,3}".prop_map(Value::from),
    ]
}

fn arb_rows() -> impl Strategy<Value = Vec<(i64, Value)>> {
    proptest::collection::vec((0i64..10, arb_value()), 0..30)
}

fn build(rows: &[(i64, Value)]) -> Database {
    let mut db = Database::new();
    db.create_table(
        "t",
        Schema::new(vec![
            ColumnDef::new("k", ColumnType::Int),
            ColumnDef::new("v", ColumnType::Str).nullable(),
        ]),
    )
    .unwrap();
    for (k, v) in rows {
        let v = match v {
            Value::Int(i) => Value::Str(format!("s{i}")),
            other => other.clone(),
        };
        db.insert("t", vec![Value::Int(*k), v]).unwrap();
    }
    db
}

proptest! {
    /// σ_p(σ_q(T)) = σ_q(σ_p(T)) = σ_{p∧q}(T)
    #[test]
    fn selection_commutes(rows in arb_rows(), a in 0i64..10, b in 0i64..10) {
        let mut db = build(&rows);
        let p = Predicate::ge(Operand::col("k"), Operand::lit(a));
        let q = Predicate::lt(Operand::col("k"), Operand::lit(b));
        let pq = Query::from("t").filter(p.clone()).filter(q.clone()).execute(&mut db).unwrap();
        let qp = Query::from("t").filter(q.clone()).filter(p.clone()).execute(&mut db).unwrap();
        let both = Query::from("t").filter(p.and(q)).execute(&mut db).unwrap();
        prop_assert_eq!(&pq, &qp);
        prop_assert_eq!(&pq, &both);
    }

    /// Index probe and full scan return the same rows.
    #[test]
    fn index_equals_scan(rows in arb_rows(), key in 0i64..10) {
        let mut db = build(&rows);
        let q = Query::from("t").filter(Predicate::eq(Operand::col("k"), Operand::lit(key)));
        let scan = q.execute(&mut db).unwrap();
        db.table_mut("t").unwrap().create_index("k").unwrap();
        let probe = q.execute(&mut db).unwrap();
        prop_assert_eq!(scan, probe);
    }

    /// ORDER BY produces a sorted permutation.
    #[test]
    fn order_by_sorts_permutation(rows in arb_rows()) {
        let mut db = build(&rows);
        let plain = Query::from("t").execute(&mut db).unwrap();
        let sorted = Query::from("t").order_by("k", SortOrder::Asc).execute(&mut db).unwrap();
        prop_assert_eq!(plain.len(), sorted.len());
        for w in sorted.windows(2) {
            prop_assert!(w[0][0] <= w[1][0]);
        }
        let mut a = plain; a.sort();
        let mut b = sorted; b.sort();
        prop_assert_eq!(a, b);
    }

    /// Projection then selection = selection then projection (when the
    /// predicate only touches projected columns).
    #[test]
    fn project_select_commute(rows in arb_rows(), key in 0i64..10) {
        let mut db = build(&rows);
        let p = Predicate::eq(Operand::col("k"), Operand::lit(key));
        let a = Query::from("t").select(&["k"]).filter(p.clone()).execute(&mut db).unwrap();
        let b = Query::from("t").filter(p).select(&["k"]).execute(&mut db).unwrap();
        prop_assert_eq!(a, b);
    }

    /// DISTINCT is idempotent and never grows the result.
    #[test]
    fn distinct_laws(rows in arb_rows()) {
        let mut db = build(&rows);
        let once = Query::from("t").select(&["k"]).distinct().execute(&mut db).unwrap();
        let plain = Query::from("t").select(&["k"]).execute(&mut db).unwrap();
        prop_assert!(once.len() <= plain.len());
        let mut seen = std::collections::HashSet::new();
        for r in &once {
            prop_assert!(seen.insert(r.clone()), "distinct left a duplicate");
        }
    }

    /// Join with a 1-row key table equals a filter.
    #[test]
    fn join_singleton_is_filter(rows in arb_rows(), key in 0i64..10) {
        let mut db = build(&rows);
        db.create_table("keys", Schema::new(vec![ColumnDef::new("k", ColumnType::Int)])).unwrap();
        db.insert("keys", vec![Value::Int(key)]).unwrap();
        let joined = Query::from("t")
            .join("keys", "k", "k")
            .select(&["t.k", "t.v"])
            .execute(&mut db)
            .unwrap();
        let filtered = Query::from("t")
            .filter(Predicate::eq(Operand::col("k"), Operand::lit(key)))
            .execute(&mut db)
            .unwrap();
        let mut a = joined; a.sort();
        let mut b = filtered; b.sort();
        prop_assert_eq!(a, b);
    }
}
