//! `microdb` — a small in-memory relational database engine.
//!
//! This crate is the *storage substrate* of the Jacqueline
//! reproduction: the "existing relational database implementation"
//! that the paper's faceted object-relational mapping drives purely by
//! manipulating meta-data columns (§3 of Yang et al., PLDI 2016). It
//! supports exactly the relational surface the FORM needs — typed
//! columns, WHERE predicates, projection, inner equi-joins,
//! `ORDER BY`, `DISTINCT`, `LIMIT`, unions (insert-many), hash indexes
//! — plus the aggregates used by the non-faceted baseline
//! applications.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), microdb::DbError> {
//! use microdb::{ColumnDef, ColumnType, Database, Operand, Predicate, Query, Schema, SortOrder, Value};
//!
//! let mut db = Database::new();
//! db.create_table("users", Schema::new(vec![
//!     ColumnDef::new("id", ColumnType::Int).auto_increment(),
//!     ColumnDef::new("name", ColumnType::Str),
//! ]))?;
//! db.insert("users", vec![Value::Null, "alice".into()])?;
//! db.insert("users", vec![Value::Null, "bob".into()])?;
//!
//! let rows = Query::from("users")
//!     .filter(Predicate::eq(Operand::col("name"), Operand::lit("alice")))
//!     .execute(&mut db)?;
//! assert_eq!(rows.len(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aggregate;
pub mod chunkstore;
mod database;
mod error;
pub mod faults;
mod predicate;
mod query;
mod schema;
pub mod snapshot;
mod table;
mod value;
pub mod wal;

pub use aggregate::Aggregate;
pub use database::{Database, TableMut, TableRef};
pub use error::{DbError, DbResult};
pub use predicate::{resolve_column, CmpOp, Operand, Predicate};
pub use query::{ExecStats, Query, ResultSet, SortOrder};
pub use schema::{ColumnDef, Schema};
pub use snapshot::{Snapshot, TableSnapshot};
pub use table::{Row, RowDelta, Table};
pub use value::{ColumnType, Value};
pub use wal::{LineLog, LogRecord, ReplayStats, Statement, SyncPolicy, WriteLog};
