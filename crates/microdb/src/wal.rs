//! The append-only write log: row-level durability between
//! snapshots.
//!
//! A [`Snapshot`](crate::Snapshot) is a full copy; taking one per
//! write would be absurd. Instead a [`WriteLog`] can be attached to a
//! [`Database`] ([`Database::attach_wal`]): every successful
//! row-level statement appends one line — the statement itself plus
//! the table's generation stamp *after* applying it — and restore
//! becomes *load the last snapshot, then replay the log's suffix*.
//! The generation stamps make replay idempotent: a record whose stamp
//! is at or below the restored table's generation is already
//! reflected in the snapshot and is skipped, so the crash window
//! between "snapshot renamed into place" and "log truncated" cannot
//! double-apply anything.
//!
//! Two deliberate properties of the format:
//!
//! * **one line per record, appended and flushed before the statement
//!   returns** — a crash can lose at most the statement that was in
//!   flight, and a torn final line is detected and ignored by
//!   [`WriteLog::replay`];
//! * **logical statements, not page images** — predicates and
//!   assignments are serialized structurally (they are plain data in
//!   this engine), so the log is readable and the replay path goes
//!   through exactly the same code as the original writes.
//!
//! Writers append under the table's write lock, so per-table records
//! appear in generation order even with concurrent writers on other
//! tables.
//!
//! # Durability window
//!
//! `append_line` **flushes** each record to the OS but, under the
//! default [`SyncPolicy::Never`], does **not** fsync it. The window
//! this opens is precise: a *process* crash (panic, kill -9) loses
//! nothing — the bytes are in the kernel page cache and reach disk on
//! the OS's schedule — but a *power loss / kernel panic* can lose
//! every record appended since the last checkpoint's `sync_all`.
//! Checkpoints themselves are fsynced (file + directory), so the
//! exposure is exactly the WAL tail. [`SyncPolicy::EveryN`] bounds
//! that tail to N records; [`SyncPolicy::Always`] closes it at one
//! `fdatasync` per write.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::database::Database;
use crate::error::{DbError, DbResult};
use crate::faults::{self, FaultKind, FaultPoint};
use crate::predicate::{CmpOp, Operand, Predicate};
use crate::snapshot::{decode_value, encode_value, escape_token, unescape_token};
use crate::table::Row;
use crate::value::Value;

/// One logged row-level statement.
#[derive(Clone, Debug, PartialEq)]
pub enum Statement {
    /// A single-row insert (the row as stored, auto-increment columns
    /// already resolved — replay is deterministic).
    Insert {
        /// Target table.
        table: String,
        /// The stored row.
        row: Row,
    },
    /// A predicate update.
    Update {
        /// Target table.
        table: String,
        /// The WHERE clause.
        pred: Predicate,
        /// `column → value` assignments.
        assignments: Vec<(String, Value)>,
    },
    /// A predicate delete.
    Delete {
        /// Target table.
        table: String,
        /// The WHERE clause.
        pred: Predicate,
    },
}

impl Statement {
    /// The table this statement mutates.
    #[must_use]
    pub fn table(&self) -> &str {
        match self {
            Statement::Insert { table, .. }
            | Statement::Update { table, .. }
            | Statement::Delete { table, .. } => table,
        }
    }
}

// ---------------------------------------------------------------------
// Token-stream serialization. Every record is one line of whitespace-
// free tokens; strings go through the snapshot module's escaping.
// ---------------------------------------------------------------------

fn push_operand(out: &mut String, op: &Operand) {
    match op {
        Operand::Col(name) => {
            out.push_str("col ");
            out.push_str(&escape_token(name));
        }
        Operand::Lit(v) => {
            out.push_str("lit ");
            out.push_str(&encode_value(v));
        }
    }
}

fn push_predicate(out: &mut String, pred: &Predicate) {
    match pred {
        Predicate::True => out.push_str("true"),
        Predicate::Cmp(a, op, b) => {
            out.push_str("cmp ");
            push_operand(out, a);
            let sym = match op {
                CmpOp::Eq => " eq ",
                CmpOp::Ne => " ne ",
                CmpOp::Lt => " lt ",
                CmpOp::Le => " le ",
                CmpOp::Gt => " gt ",
                CmpOp::Ge => " ge ",
            };
            out.push_str(sym);
            push_operand(out, b);
        }
        Predicate::Like(a, pattern) => {
            out.push_str("like ");
            push_operand(out, a);
            out.push(' ');
            out.push_str(&escape_token(pattern));
        }
        Predicate::IsNull(a) => {
            out.push_str("isnull ");
            push_operand(out, a);
        }
        Predicate::And(a, b) => {
            out.push_str("and ");
            push_predicate(out, a);
            out.push(' ');
            push_predicate(out, b);
        }
        Predicate::Or(a, b) => {
            out.push_str("or ");
            push_predicate(out, a);
            out.push(' ');
            push_predicate(out, b);
        }
        Predicate::Not(a) => {
            out.push_str("not ");
            push_predicate(out, a);
        }
    }
}

fn parse_err(what: &str) -> DbError {
    DbError::Persist(format!("bad write-log record: {what}"))
}

fn next_token<'a>(tokens: &mut impl Iterator<Item = &'a str>, what: &str) -> DbResult<&'a str> {
    tokens
        .next()
        .ok_or_else(|| parse_err(&format!("truncated {what}")))
}

fn parse_operand<'a>(tokens: &mut impl Iterator<Item = &'a str>) -> DbResult<Operand> {
    match next_token(tokens, "operand")? {
        "col" => Ok(Operand::Col(unescape_token(next_token(tokens, "column")?)?)),
        "lit" => Ok(Operand::Lit(decode_value(next_token(tokens, "literal")?)?)),
        other => Err(parse_err(&format!("unknown operand kind {other:?}"))),
    }
}

fn parse_predicate<'a>(tokens: &mut impl Iterator<Item = &'a str>) -> DbResult<Predicate> {
    match next_token(tokens, "predicate")? {
        "true" => Ok(Predicate::True),
        "cmp" => {
            let a = parse_operand(tokens)?;
            let op = match next_token(tokens, "comparison")? {
                "eq" => CmpOp::Eq,
                "ne" => CmpOp::Ne,
                "lt" => CmpOp::Lt,
                "le" => CmpOp::Le,
                "gt" => CmpOp::Gt,
                "ge" => CmpOp::Ge,
                other => return Err(parse_err(&format!("unknown comparison {other:?}"))),
            };
            let b = parse_operand(tokens)?;
            Ok(Predicate::Cmp(a, op, b))
        }
        "like" => {
            let a = parse_operand(tokens)?;
            let pattern = unescape_token(next_token(tokens, "pattern")?)?;
            Ok(Predicate::Like(a, pattern))
        }
        "isnull" => Ok(Predicate::IsNull(parse_operand(tokens)?)),
        "and" => Ok(parse_predicate(tokens)?.and(parse_predicate(tokens)?)),
        "or" => Ok(parse_predicate(tokens)?.or(parse_predicate(tokens)?)),
        "not" => Ok(parse_predicate(tokens)?.not()),
        other => Err(parse_err(&format!("unknown predicate {other:?}"))),
    }
}

/// Renders `(statement, generation-after)` as one log line (no
/// trailing newline). Every record ends with a `.` terminator token:
/// a crash-truncated line could otherwise decode as a shorter but
/// still well-formed record (a string literal cut mid-way is still a
/// string), and the terminator turns that silent corruption into a
/// detected torn tail.
#[must_use]
pub fn encode_record(stmt: &Statement, generation: u64) -> String {
    let mut out = String::new();
    match stmt {
        Statement::Insert { table, row } => {
            out.push_str("ins ");
            out.push_str(&escape_token(table));
            out.push(' ');
            out.push_str(&generation.to_string());
            for v in row {
                out.push(' ');
                out.push_str(&encode_value(v));
            }
        }
        Statement::Update {
            table,
            pred,
            assignments,
        } => {
            out.push_str("upd ");
            out.push_str(&escape_token(table));
            out.push(' ');
            out.push_str(&generation.to_string());
            out.push(' ');
            out.push_str(&assignments.len().to_string());
            for (col, v) in assignments {
                out.push(' ');
                out.push_str(&escape_token(col));
                out.push(' ');
                out.push_str(&encode_value(v));
            }
            out.push(' ');
            push_predicate(&mut out, pred);
        }
        Statement::Delete { table, pred } => {
            out.push_str("del ");
            out.push_str(&escape_token(table));
            out.push(' ');
            out.push_str(&generation.to_string());
            out.push(' ');
            push_predicate(&mut out, pred);
        }
    }
    out.push_str(" .");
    out
}

/// Parses one log line back into `(statement, generation-after)`.
///
/// # Errors
///
/// [`DbError::Persist`] on any malformed record.
pub fn decode_record(line: &str) -> DbResult<(Statement, u64)> {
    let mut tokens = line.split_whitespace();
    let kind = next_token(&mut tokens, "record")?;
    let table = unescape_token(next_token(&mut tokens, "table")?)?;
    let generation: u64 = next_token(&mut tokens, "generation")?
        .parse()
        .map_err(|_| parse_err("bad generation"))?;
    let stmt = match kind {
        "ins" => {
            let mut row = Row::new();
            let mut terminated = false;
            for tok in tokens.by_ref() {
                if tok == "." {
                    terminated = true;
                    break;
                }
                row.push(decode_value(tok)?);
            }
            if !terminated {
                return Err(parse_err("missing record terminator"));
            }
            ensure_exhausted(&mut tokens)?;
            Statement::Insert { table, row }
        }
        "upd" => {
            let n: usize = next_token(&mut tokens, "assignment count")?
                .parse()
                .map_err(|_| parse_err("bad assignment count"))?;
            let mut assignments = Vec::with_capacity(n);
            for _ in 0..n {
                let col = unescape_token(next_token(&mut tokens, "assignment column")?)?;
                let v = decode_value(next_token(&mut tokens, "assignment value")?)?;
                assignments.push((col, v));
            }
            let pred = parse_predicate(&mut tokens)?;
            expect_terminator(&mut tokens)?;
            Statement::Update {
                table,
                pred,
                assignments,
            }
        }
        "del" => {
            let pred = parse_predicate(&mut tokens)?;
            expect_terminator(&mut tokens)?;
            Statement::Delete { table, pred }
        }
        other => return Err(parse_err(&format!("unknown statement {other:?}"))),
    };
    Ok((stmt, generation))
}

/// One decoded log line: a single statement or an atomic batch.
#[derive(Clone, Debug, PartialEq)]
pub enum LogRecord {
    /// A single statement with its generation-after stamp.
    Single(Statement, u64),
    /// An atomic multi-statement record over one table. All-or-
    /// nothing on disk by construction (one line), so a failed append
    /// leaves no partial object write in the log. The stamp is the
    /// table's generation after the *last* statement; snapshots are
    /// only taken at executor quiescence, so a checkpoint never lands
    /// mid-batch and the whole batch skips or replays as a unit.
    Batch {
        /// The single table every statement in the batch targets.
        table: String,
        /// The statements, in application order.
        stmts: Vec<Statement>,
        /// Table generation after the last statement.
        generation: u64,
    },
}

/// Renders an atomic batch of same-table statements as one log line
/// (kind `bat`). Panics in debug builds if a statement targets a
/// different table.
#[must_use]
pub fn encode_batch_record(table: &str, stmts: &[Statement], generation: u64) -> String {
    let mut out = String::new();
    out.push_str("bat ");
    out.push_str(&escape_token(table));
    out.push(' ');
    out.push_str(&generation.to_string());
    out.push(' ');
    out.push_str(&stmts.len().to_string());
    for stmt in stmts {
        debug_assert_eq!(stmt.table(), table, "batch statements share one table");
        match stmt {
            Statement::Insert { row, .. } => {
                out.push_str(" ins ");
                out.push_str(&row.len().to_string());
                for v in row {
                    out.push(' ');
                    out.push_str(&encode_value(v));
                }
            }
            Statement::Update {
                pred, assignments, ..
            } => {
                out.push_str(" upd ");
                out.push_str(&assignments.len().to_string());
                for (col, v) in assignments {
                    out.push(' ');
                    out.push_str(&escape_token(col));
                    out.push(' ');
                    out.push_str(&encode_value(v));
                }
                out.push(' ');
                push_predicate(&mut out, pred);
            }
            Statement::Delete { pred, .. } => {
                out.push_str(" del ");
                push_predicate(&mut out, pred);
            }
        }
    }
    out.push_str(" .");
    out
}

/// Parses one log line into a [`LogRecord`] — the entry point replay
/// uses, accepting both single-statement and batch records.
///
/// # Errors
///
/// [`DbError::Persist`] on any malformed record.
pub fn decode_line(line: &str) -> DbResult<LogRecord> {
    if line.split_whitespace().next() != Some("bat") {
        let (stmt, generation) = decode_record(line)?;
        return Ok(LogRecord::Single(stmt, generation));
    }
    let mut tokens = line.split_whitespace();
    let _ = tokens.next(); // "bat"
    let table = unescape_token(next_token(&mut tokens, "table")?)?;
    let generation: u64 = next_token(&mut tokens, "generation")?
        .parse()
        .map_err(|_| parse_err("bad generation"))?;
    let count: usize = next_token(&mut tokens, "batch count")?
        .parse()
        .map_err(|_| parse_err("bad batch count"))?;
    let mut stmts = Vec::with_capacity(count);
    for _ in 0..count {
        let stmt = match next_token(&mut tokens, "batch statement")? {
            "ins" => {
                let n: usize = next_token(&mut tokens, "row width")?
                    .parse()
                    .map_err(|_| parse_err("bad row width"))?;
                let mut row = Row::with_capacity(n);
                for _ in 0..n {
                    row.push(decode_value(next_token(&mut tokens, "row value")?)?);
                }
                Statement::Insert {
                    table: table.clone(),
                    row,
                }
            }
            "upd" => {
                let n: usize = next_token(&mut tokens, "assignment count")?
                    .parse()
                    .map_err(|_| parse_err("bad assignment count"))?;
                let mut assignments = Vec::with_capacity(n);
                for _ in 0..n {
                    let col = unescape_token(next_token(&mut tokens, "assignment column")?)?;
                    let v = decode_value(next_token(&mut tokens, "assignment value")?)?;
                    assignments.push((col, v));
                }
                let pred = parse_predicate(&mut tokens)?;
                Statement::Update {
                    table: table.clone(),
                    pred,
                    assignments,
                }
            }
            "del" => Statement::Delete {
                table: table.clone(),
                pred: parse_predicate(&mut tokens)?,
            },
            other => return Err(parse_err(&format!("unknown batch statement {other:?}"))),
        };
        stmts.push(stmt);
    }
    expect_terminator(&mut tokens)?;
    Ok(LogRecord::Batch {
        table,
        stmts,
        generation,
    })
}

fn ensure_exhausted<'a>(tokens: &mut impl Iterator<Item = &'a str>) -> DbResult<()> {
    match tokens.next() {
        None => Ok(()),
        Some(extra) => Err(parse_err(&format!("trailing tokens from {extra:?}"))),
    }
}

fn expect_terminator<'a>(tokens: &mut impl Iterator<Item = &'a str>) -> DbResult<()> {
    if next_token(tokens, "terminator")? != "." {
        return Err(parse_err("missing record terminator"));
    }
    ensure_exhausted(tokens)
}

/// What a replay did.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Records applied.
    pub applied: usize,
    /// Records skipped because the snapshot already contained them.
    pub skipped: usize,
    /// Whether a torn (crash-truncated) final line was discarded.
    pub torn_tail: bool,
}

/// When (if ever) an append is fsynced, not just flushed. See the
/// module-level *Durability window* note: the default trades power-
/// loss durability of the WAL tail for write latency, exactly like
/// `synchronous=NORMAL` databases.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Flush to the OS only (the historical behavior). Survives
    /// process crashes; a power loss can lose the whole WAL tail
    /// since the last checkpoint.
    Never,
    /// `fdatasync` every Nth append: bounds power-loss exposure to at
    /// most N-1 records. `EveryN(1)` is equivalent to [`Always`].
    ///
    /// [`Always`]: SyncPolicy::Always
    EveryN(u32),
    /// `fdatasync` every append: no durability window, one disk
    /// round-trip per write.
    Always,
}

/// The reusable append-only line-log machinery: open-append, one
/// flushed line per record, truncation after a checkpoint, and
/// torn-tail-aware reading. [`WriteLog`] layers the statement codec
/// on top; the application layer's metadata journal reuses it with
/// its own records, so fsync/torn-tail policy lives in exactly one
/// place.
pub struct LineLog {
    path: PathBuf,
    file: Mutex<BufWriter<File>>,
    policy: SyncPolicy,
    /// Appends since the last fsync (only tracked for `EveryN`).
    since_sync: AtomicU64,
    /// Total fsyncs issued — observability for tests and stats.
    syncs: AtomicU64,
    /// Records in the file — seeded from the file at open, bumped per
    /// append, reset by truncation/compaction. Drives checkpoint
    /// scheduling ("every N records") and observability.
    records: AtomicU64,
    /// Bytes in the file, maintained alongside `records`.
    bytes: AtomicU64,
}

impl fmt::Debug for LineLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LineLog").field("path", &self.path).finish()
    }
}

impl LineLog {
    /// Opens (creating if absent) the log at `path` for appending.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<LineLog> {
        LineLog::open_with_policy(path, SyncPolicy::Never)
    }

    /// Opens (creating if absent) the log at `path` with an explicit
    /// [`SyncPolicy`].
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn open_with_policy(
        path: impl AsRef<Path>,
        policy: SyncPolicy,
    ) -> std::io::Result<LineLog> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        // Seed the pressure counters from whatever the file already
        // holds, so scheduling thresholds account for a pre-existing
        // (e.g. post-restore) backlog.
        let (records, bytes) = match std::fs::read(&path) {
            Ok(existing) => (
                existing.iter().filter(|&&b| b == b'\n').count() as u64,
                existing.len() as u64,
            ),
            Err(_) => (0, 0),
        };
        Ok(LineLog {
            path,
            file: Mutex::new(BufWriter::new(file)),
            policy,
            since_sync: AtomicU64::new(0),
            syncs: AtomicU64::new(0),
            records: AtomicU64::new(records),
            bytes: AtomicU64::new(bytes),
        })
    }

    /// The log's file path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The log's fsync policy.
    #[must_use]
    pub fn sync_policy(&self) -> SyncPolicy {
        self.policy
    }

    /// Total fsyncs this log has issued (0 under
    /// [`SyncPolicy::Never`]).
    #[must_use]
    pub fn sync_count(&self) -> u64 {
        self.syncs.load(Ordering::Relaxed)
    }

    /// Records appended since the log was last truncated or compacted
    /// (seeded from the file at open). The checkpoint scheduler's
    /// "every N records" pressure gauge.
    #[must_use]
    pub fn records_since_truncate(&self) -> u64 {
        self.records.load(Ordering::Relaxed)
    }

    /// Bytes appended since the log was last truncated or compacted
    /// (seeded from the file at open).
    #[must_use]
    pub fn bytes_since_truncate(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Appends one line (no embedded newlines) and flushes it to the
    /// OS, so a *process* crash after the append returns cannot lose
    /// it; whether it also survives power loss is the [`SyncPolicy`]'s
    /// call (see the module-level *Durability window* note).
    ///
    /// This is the [`FaultPoint::WalAppend`] injection site: an armed
    /// [`FaultKind::Error`] fails before any byte is written (disk
    /// full); an armed [`FaultKind::ShortWrite`] leaves a torn,
    /// newline-less prefix in the file — exactly the tail shape
    /// [`WriteLog::replay`] must discard — then fails.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn append_line(&self, line: &str) -> std::io::Result<()> {
        debug_assert!(!line.contains('\n'), "records are single lines");
        let mut file = self.file.lock().expect("line log poisoned");
        match faults::check(FaultPoint::WalAppend, &self.path) {
            Some(FaultKind::Error) => return Err(faults::injected_err("append")),
            Some(FaultKind::ShortWrite) => {
                let cut = line.len() / 2;
                file.write_all(&line.as_bytes()[..cut])
                    .and_then(|()| file.flush())?;
                return Err(faults::injected_err("append torn mid-record"));
            }
            None => {}
        }
        writeln!(file, "{line}").and_then(|()| file.flush())?;
        let due = match self.policy {
            SyncPolicy::Never => false,
            SyncPolicy::Always => true,
            SyncPolicy::EveryN(n) => {
                let seen = self.since_sync.fetch_add(1, Ordering::Relaxed) + 1;
                if seen >= u64::from(n.max(1)) {
                    self.since_sync.store(0, Ordering::Relaxed);
                    true
                } else {
                    false
                }
            }
        };
        if due {
            file.get_ref().sync_data()?;
            self.syncs.fetch_add(1, Ordering::Relaxed);
        }
        self.records.fetch_add(1, Ordering::Relaxed);
        self.bytes
            .fetch_add(line.len() as u64 + 1, Ordering::Relaxed);
        Ok(())
    }

    /// Truncates the log — called right after a snapshot superseding
    /// every logged record has been renamed into place.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn truncate(&self) -> std::io::Result<()> {
        let mut file = self.file.lock().expect("line log poisoned");
        file.flush()?;
        let f = file.get_mut();
        f.set_len(0)?;
        f.seek(std::io::SeekFrom::Start(0))?;
        self.records.store(0, Ordering::Relaxed);
        self.bytes.store(0, Ordering::Relaxed);
        Ok(())
    }

    /// Compacts the log in place: keeps exactly the complete lines
    /// `keep` accepts, drops the rest (including any torn,
    /// newline-less tail — it was never a durable record). The whole
    /// rewrite happens under the append mutex, so no record can land
    /// between the read and the rewrite, and the result is fsynced
    /// before returning. Returns `(kept, dropped)` line counts.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors. On error the file may hold a prefix of
    /// the kept lines — every one a complete record that the keep
    /// predicate accepted, so replay is still sound.
    pub fn retain_lines(&self, mut keep: impl FnMut(&str) -> bool) -> std::io::Result<(u64, u64)> {
        let mut file = self.file.lock().expect("line log poisoned");
        file.flush()?;
        let mut text = String::new();
        File::open(&self.path)?.read_to_string(&mut text)?;
        let complete_tail = text.is_empty() || text.ends_with('\n');
        let all: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
        let n_complete = if complete_tail {
            all.len()
        } else {
            all.len().saturating_sub(1)
        };
        let mut kept = 0u64;
        let mut dropped = all.len() as u64 - n_complete as u64;
        let f = file.get_mut();
        f.set_len(0)?;
        f.seek(std::io::SeekFrom::Start(0))?;
        self.records.store(0, Ordering::Relaxed);
        self.bytes.store(0, Ordering::Relaxed);
        let mut bytes = 0u64;
        for line in &all[..n_complete] {
            if keep(line) {
                writeln!(f, "{line}")?;
                kept += 1;
                bytes += line.len() as u64 + 1;
            } else {
                dropped += 1;
            }
        }
        f.flush()?;
        f.sync_data()?;
        self.records.store(kept, Ordering::Relaxed);
        self.bytes.store(bytes, Ordering::Relaxed);
        Ok((kept, dropped))
    }

    /// Reads the non-empty lines at `path`, plus whether the file
    /// ended in a newline (`false` marks the last line as a torn-tail
    /// candidate: the crash was mid-append). `Ok(None)` when the file
    /// does not exist.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors other than not-found.
    pub fn read_lines(path: impl AsRef<Path>) -> std::io::Result<Option<(Vec<String>, bool)>> {
        let mut text = String::new();
        match File::open(path.as_ref()) {
            Ok(mut f) => f.read_to_string(&mut text)?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        let complete_tail = text.is_empty() || text.ends_with('\n');
        let lines = text
            .lines()
            .filter(|l| !l.trim().is_empty())
            .map(str::to_owned)
            .collect();
        Ok(Some((lines, complete_tail)))
    }
}

/// The append-only statement log. `Send + Sync`; appends serialize on
/// the underlying [`LineLog`]'s mutex (callers additionally hold the
/// target table's write lock, which is what orders records per
/// table).
#[derive(Debug)]
pub struct WriteLog {
    log: LineLog,
}

impl WriteLog {
    /// Opens (creating if absent) the log at `path` for appending.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<WriteLog> {
        Ok(WriteLog {
            log: LineLog::open(path)?,
        })
    }

    /// Opens the log with an explicit [`SyncPolicy`].
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn open_with_policy(
        path: impl AsRef<Path>,
        policy: SyncPolicy,
    ) -> std::io::Result<WriteLog> {
        Ok(WriteLog {
            log: LineLog::open_with_policy(path, policy)?,
        })
    }

    /// Total fsyncs the underlying log has issued.
    #[must_use]
    pub fn sync_count(&self) -> u64 {
        self.log.sync_count()
    }

    /// Records appended since the last truncation/compaction.
    #[must_use]
    pub fn records_since_truncate(&self) -> u64 {
        self.log.records_since_truncate()
    }

    /// Bytes appended since the last truncation/compaction.
    #[must_use]
    pub fn bytes_since_truncate(&self) -> u64 {
        self.log.bytes_since_truncate()
    }

    /// The log's file path.
    #[must_use]
    pub fn path(&self) -> &Path {
        self.log.path()
    }

    /// Appends one record and flushes it to the OS, so a process
    /// crash after a statement returns cannot lose it.
    ///
    /// # Errors
    ///
    /// [`DbError::Persist`] wrapping the I/O failure — callers treat
    /// an unloggable write as a failed write.
    pub fn append(&self, stmt: &Statement, generation: u64) -> DbResult<()> {
        self.log
            .append_line(&encode_record(stmt, generation))
            .map_err(|e| DbError::Persist(format!("write log append: {e}")))
    }

    /// Appends an atomic batch of same-table statements as one record
    /// (one line): either the whole object write is in the log or
    /// none of it is, so a failed append never leaves a torn object.
    /// `generation` is the table's generation after the last
    /// statement.
    ///
    /// # Errors
    ///
    /// [`DbError::Persist`] wrapping the I/O failure.
    pub fn append_batch(&self, table: &str, stmts: &[Statement], generation: u64) -> DbResult<()> {
        self.log
            .append_line(&encode_batch_record(table, stmts, generation))
            .map_err(|e| DbError::Persist(format!("write log append: {e}")))
    }

    /// Truncates the log — called right after a snapshot has been
    /// renamed into place, which supersedes every logged record.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn truncate(&self) -> std::io::Result<()> {
        self.log.truncate()
    }

    /// Compacts the log against a checkpoint's generation vector:
    /// keeps exactly the records *newer* than `floor[table]` (the
    /// generation the checkpoint captured for that table), drops
    /// records the checkpoint already reflects, records for tables the
    /// vector does not name (their tables are fully captured or gone),
    /// and any torn tail. At quiescence — when the vector matches the
    /// live generations — this degenerates to an empty file, like
    /// [`WriteLog::truncate`], but it is also safe against records
    /// that raced in after the floor was captured. Returns
    /// `(kept, dropped)`.
    ///
    /// # Errors
    ///
    /// [`DbError::Persist`] wrapping I/O failure; replay stays sound
    /// on a partial rewrite (see [`LineLog::retain_lines`]).
    pub fn compact(&self, floor: &std::collections::BTreeMap<String, u64>) -> DbResult<(u64, u64)> {
        self.log
            .retain_lines(|line| match decode_line(line) {
                Ok(LogRecord::Single(stmt, generation)) => floor
                    .get(stmt.table())
                    .is_some_and(|&captured| generation > captured),
                Ok(LogRecord::Batch {
                    table, generation, ..
                }) => floor
                    .get(&table)
                    .is_some_and(|&captured| generation > captured),
                // A line that does not decode is either a torn tail
                // (already excluded by retain_lines) or corruption the
                // checkpoint has superseded; keeping it would poison
                // the next replay.
                Err(_) => false,
            })
            .map_err(|e| DbError::Persist(format!("write log compact: {e}")))
    }

    /// Replays the log at `path` onto `db`: each record whose
    /// generation stamp exceeds the target table's current generation
    /// is applied (through the normal statement paths, *without*
    /// re-logging); records at or below it are already reflected in
    /// the restored snapshot and are skipped. A torn final line (the
    /// crash was mid-append) is discarded; a malformed line anywhere
    /// else is an error. A missing file replays nothing.
    ///
    /// # Errors
    ///
    /// [`DbError::Persist`] for unreadable/corrupt logs; statement
    /// errors if a record no longer applies (e.g. its table is gone).
    pub fn replay(path: impl AsRef<Path>, db: &mut Database) -> DbResult<ReplayStats> {
        let Some((lines, complete_tail)) = LineLog::read_lines(path)
            .map_err(|e| DbError::Persist(format!("write log read: {e}")))?
        else {
            return Ok(ReplayStats::default());
        };
        let mut stats = ReplayStats::default();
        for (i, line) in lines.iter().enumerate() {
            let record = match decode_line(line) {
                Ok(r) => r,
                Err(e) => {
                    if i + 1 == lines.len() && !complete_tail {
                        stats.torn_tail = true;
                        break;
                    }
                    return Err(e);
                }
            };
            match record {
                LogRecord::Single(stmt, generation) => {
                    if generation <= db.generation(stmt.table())? {
                        stats.skipped += 1;
                        continue;
                    }
                    db.apply_statement(&stmt)?;
                    stats.applied += 1;
                }
                LogRecord::Batch {
                    table,
                    stmts,
                    generation,
                } => {
                    // Snapshots are taken at quiescence, so the
                    // restored generation is never *inside* a batch:
                    // the whole batch skips or replays as a unit.
                    if generation <= db.generation(&table)? {
                        stats.skipped += 1;
                        continue;
                    }
                    for stmt in &stmts {
                        db.apply_statement(stmt)?;
                    }
                    stats.applied += 1;
                }
            }
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, Schema};
    use crate::value::ColumnType;
    use std::sync::Arc;

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("microdb_wal_{name}_{}", std::process::id()))
    }

    fn fresh_db() -> Database {
        let mut db = Database::new();
        db.create_table(
            "t",
            Schema::new(vec![
                ColumnDef::new("id", ColumnType::Int).auto_increment(),
                ColumnDef::new("x", ColumnType::Str),
            ]),
        )
        .unwrap();
        db
    }

    #[test]
    fn records_round_trip() {
        let statements = [
            Statement::Insert {
                table: "a table".into(),
                row: vec![Value::Int(1), Value::from("x y"), Value::Null],
            },
            // A web form can deliver any Unicode whitespace; the
            // record must survive the split_whitespace tokenizer.
            Statement::Insert {
                table: "t".into(),
                row: vec![Value::from("non\u{a0}breaking\u{2028}title")],
            },
            Statement::Update {
                table: "t".into(),
                pred: Predicate::eq(Operand::col("a b"), Operand::lit("c\td"))
                    .and(Predicate::Like(Operand::col("x"), "%z%".to_owned()))
                    .or(Predicate::IsNull(Operand::col("n")).not()),
                assignments: vec![
                    ("x".into(), Value::Float(2.5)),
                    ("y z".into(), Value::Bool(false)),
                ],
            },
            Statement::Delete {
                table: "t".into(),
                pred: Predicate::True,
            },
        ];
        for stmt in statements {
            let line = encode_record(&stmt, 17);
            assert!(!line.contains('\n'));
            let (back, generation) = decode_record(&line).unwrap();
            assert_eq!(back, stmt, "{line}");
            assert_eq!(generation, 17);
        }
        for bad in [
            "",
            "zzz t 1 .",
            "ins t notanumber .",
            "del t 1 nope .",
            "upd t 1 2 c i1 .",
            // A truncated-but-well-formed prefix: the terminator is
            // what rejects it.
            "ins t 2 i2 sto",
            "del t 1 true",
        ] {
            assert!(decode_record(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn attached_log_captures_and_replays_writes() {
        let path = temp_path("capture");
        let _ = std::fs::remove_file(&path);
        let mut db = fresh_db();
        let snapshot = db.snapshot(); // empty baseline
        db.attach_wal(Arc::new(WriteLog::open(&path).unwrap()));
        db.insert("t", vec![Value::Null, Value::from("one")])
            .unwrap();
        db.insert("t", vec![Value::Null, Value::from("two")])
            .unwrap();
        db.update(
            "t",
            &Predicate::eq(Operand::col("x"), Operand::lit("one")),
            &[("x".to_owned(), Value::from("ONE"))],
        )
        .unwrap();
        db.delete("t", &Predicate::eq(Operand::col("x"), Operand::lit("two")))
            .unwrap();

        let mut restored = Database::new();
        restored.restore(&snapshot).unwrap();
        let stats = WriteLog::replay(&path, &mut restored).unwrap();
        assert_eq!(stats.applied, 4);
        assert_eq!(stats.skipped, 0);
        assert!(!stats.torn_tail);
        assert_eq!(
            restored.table("t").unwrap().rows(),
            db.table("t").unwrap().rows()
        );
        assert_eq!(
            restored.generation("t").unwrap(),
            db.generation("t").unwrap()
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn replay_skips_records_the_snapshot_contains() {
        let path = temp_path("skip");
        let _ = std::fs::remove_file(&path);
        let mut db = fresh_db();
        db.attach_wal(Arc::new(WriteLog::open(&path).unwrap()));
        db.insert("t", vec![Value::Null, Value::from("pre")])
            .unwrap();
        // Snapshot taken *after* the first write; the log still holds
        // its record (the crash window between rename and truncate).
        let snapshot = db.snapshot();
        db.insert("t", vec![Value::Null, Value::from("post")])
            .unwrap();

        let mut restored = Database::new();
        restored.restore(&snapshot).unwrap();
        let stats = WriteLog::replay(&path, &mut restored).unwrap();
        assert_eq!((stats.applied, stats.skipped), (1, 1));
        assert_eq!(restored.table("t").unwrap().len(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn replayed_inserts_advance_the_auto_increment_cursor() {
        // The restore-then-insert hazard: WAL records store rows "as
        // stored" (auto-increment columns resolved), so a restore
        // whose cursor trailed the replayed rows would hand out
        // duplicate ids on the next insert.
        let path = temp_path("cursor");
        let _ = std::fs::remove_file(&path);
        let mut db = fresh_db();
        let snapshot = db.snapshot(); // cursor = 1 in the baseline
        db.attach_wal(Arc::new(WriteLog::open(&path).unwrap()));
        for s in ["one", "two", "three"] {
            db.insert("t", vec![Value::Null, Value::from(s)]).unwrap();
        }
        assert_eq!(db.table("t").unwrap().next_auto(), 4);

        let mut restored = Database::new();
        restored.restore(&snapshot).unwrap();
        WriteLog::replay(&path, &mut restored).unwrap();
        assert_eq!(
            restored.table("t").unwrap().next_auto(),
            4,
            "replayed explicit ids must advance the cursor"
        );
        // The next Null insert gets a fresh id, not a duplicate.
        let pos = restored
            .insert("t", vec![Value::Null, Value::from("four")])
            .unwrap();
        assert_eq!(restored.table("t").unwrap().rows()[pos][0], Value::Int(4));
        let ids: Vec<i64> = restored
            .table("t")
            .unwrap()
            .rows()
            .iter()
            .map(|r| r[0].as_int().unwrap())
            .collect();
        assert_eq!(ids, vec![1, 2, 3, 4], "no id collision after restore");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn no_op_updates_and_deletes_are_not_logged() {
        // A zero-row write does not bump the generation, so its record
        // would always be skipped on replay — the log must not grow.
        let path = temp_path("noop");
        let _ = std::fs::remove_file(&path);
        let mut db = fresh_db();
        db.attach_wal(Arc::new(WriteLog::open(&path).unwrap()));
        db.insert("t", vec![Value::Null, Value::from("row")])
            .unwrap();
        db.update(
            "t",
            &Predicate::eq(Operand::col("x"), Operand::lit("absent")),
            &[("x".to_owned(), Value::from("y"))],
        )
        .unwrap();
        db.delete(
            "t",
            &Predicate::eq(Operand::col("x"), Operand::lit("absent")),
        )
        .unwrap();
        let (lines, complete_tail) = LineLog::read_lines(&path).unwrap().unwrap();
        assert!(complete_tail);
        assert_eq!(lines.len(), 1, "only the insert was logged");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_discarded_but_midfile_corruption_is_an_error() {
        let path = temp_path("torn");
        std::fs::write(
            &path,
            format!(
                "{}\nins t 2 i2 sto",
                encode_record(
                    &Statement::Insert {
                        table: "t".into(),
                        row: vec![Value::Int(1), Value::from("whole")],
                    },
                    1,
                )
            ),
        )
        .unwrap();
        let mut db = fresh_db();
        let stats = WriteLog::replay(&path, &mut db).unwrap();
        assert!(stats.torn_tail);
        assert_eq!(stats.applied, 1);
        assert_eq!(db.table("t").unwrap().len(), 1);

        // The same broken record mid-file (newline-terminated, another
        // record after it) is corruption, not a torn tail.
        std::fs::write(&path, "zzz not-a-record .\nins t 1 i1 sok .\n").unwrap();
        let mut db2 = fresh_db();
        assert!(WriteLog::replay(&path, &mut db2).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncate_resets_the_log() {
        let path = temp_path("truncate");
        let _ = std::fs::remove_file(&path);
        let log = WriteLog::open(&path).unwrap();
        log.append(
            &Statement::Delete {
                table: "t".into(),
                pred: Predicate::True,
            },
            1,
        )
        .unwrap();
        assert!(std::fs::metadata(&path).unwrap().len() > 0);
        log.truncate().unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 0);
        // Appends continue after a truncate.
        log.append(
            &Statement::Delete {
                table: "t".into(),
                pred: Predicate::True,
            },
            2,
        )
        .unwrap();
        let mut db = fresh_db();
        let stats = WriteLog::replay(&path, &mut db).unwrap();
        assert_eq!(stats.applied + stats.skipped, 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_log_replays_nothing() {
        let mut db = fresh_db();
        let stats = WriteLog::replay(temp_path("never-created"), &mut db).unwrap();
        assert_eq!(stats, ReplayStats::default());
    }

    #[test]
    fn batch_records_round_trip() {
        let stmts = vec![
            Statement::Delete {
                table: "t".into(),
                pred: Predicate::eq(Operand::col("id"), Operand::lit(3i64)),
            },
            Statement::Insert {
                table: "t".into(),
                row: vec![Value::Int(3), Value::from("a b")],
            },
            Statement::Insert {
                table: "t".into(),
                row: vec![Value::Int(4), Value::Null],
            },
            Statement::Update {
                table: "t".into(),
                pred: Predicate::True,
                assignments: vec![("x".into(), Value::from("v"))],
            },
        ];
        let line = encode_batch_record("t", &stmts, 9);
        assert!(!line.contains('\n'));
        match decode_line(&line).unwrap() {
            LogRecord::Batch {
                table,
                stmts: back,
                generation,
            } => {
                assert_eq!(table, "t");
                assert_eq!(back, stmts);
                assert_eq!(generation, 9);
            }
            other => panic!("expected batch, got {other:?}"),
        }
        // Single records still decode through decode_line.
        let single = encode_record(&stmts[1], 5);
        assert!(matches!(
            decode_line(&single).unwrap(),
            LogRecord::Single(Statement::Insert { .. }, 5)
        ));
        // A truncated batch (no terminator) is rejected.
        assert!(decode_line(line.trim_end_matches(" .")).is_err());
        assert!(decode_line("bat t 1 2 ins 1 i1 .").is_err());
    }

    #[test]
    fn batch_replay_skips_or_applies_as_a_unit() {
        let path = temp_path("batch");
        let _ = std::fs::remove_file(&path);
        let db = fresh_db();
        let snapshot = db.snapshot();
        let log = WriteLog::open(&path).unwrap();
        // Simulate an object write: two inserts, one batch record,
        // stamped with the generation after the last statement.
        db.insert("t", vec![Value::Null, Value::from("r1")])
            .unwrap();
        db.insert("t", vec![Value::Null, Value::from("r2")])
            .unwrap();
        let stmts: Vec<Statement> = db
            .table("t")
            .unwrap()
            .rows()
            .iter()
            .map(|r| Statement::Insert {
                table: "t".into(),
                row: r.clone(),
            })
            .collect();
        log.append_batch("t", &stmts, db.generation("t").unwrap())
            .unwrap();

        let mut restored = Database::new();
        restored.restore(&snapshot).unwrap();
        let stats = WriteLog::replay(&path, &mut restored).unwrap();
        assert_eq!((stats.applied, stats.skipped), (1, 0));
        assert_eq!(
            restored.table("t").unwrap().rows(),
            db.table("t").unwrap().rows()
        );
        // Replaying onto the already-current database skips the batch.
        let stats2 = WriteLog::replay(&path, &mut restored).unwrap();
        assert_eq!((stats2.applied, stats2.skipped), (0, 1));
        assert_eq!(restored.table("t").unwrap().len(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn injected_short_write_leaves_a_replayable_torn_tail() {
        let path = temp_path("fault_short");
        let _ = std::fs::remove_file(&path);
        let log = WriteLog::open(&path).unwrap();
        let whole = Statement::Insert {
            table: "t".into(),
            row: vec![Value::Int(1), Value::from("whole")],
        };
        log.append(&whole, 1).unwrap();

        // Path-scoped so a parallel test's appends can't trip it; one-
        // shot so it is inert afterwards (no disarm needed, which
        // would clear other tests' plans).
        faults::arm_at(
            FaultPoint::WalAppend,
            0,
            FaultKind::ShortWrite,
            "fault_short",
        );
        let torn = Statement::Insert {
            table: "t".into(),
            row: vec![Value::Int(2), Value::from("torn")],
        };
        let err = log.append(&torn, 2).unwrap_err();
        assert!(format!("{err}").contains("injected"), "{err}");

        let mut db = fresh_db();
        let stats = WriteLog::replay(&path, &mut db).unwrap();
        assert!(stats.torn_tail, "{stats:?}");
        assert_eq!(stats.applied, 1);
        assert_eq!(db.table("t").unwrap().len(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sync_policy_every_n_counts_fsyncs() {
        let path = temp_path("sync_policy");
        let _ = std::fs::remove_file(&path);
        let log = LineLog::open_with_policy(&path, SyncPolicy::EveryN(2)).unwrap();
        assert_eq!(log.sync_policy(), SyncPolicy::EveryN(2));
        for i in 0..5 {
            log.append_line(&format!("line{i}")).unwrap();
        }
        assert_eq!(log.sync_count(), 2, "5 appends at EveryN(2) -> 2 syncs");

        let always = LineLog::open_with_policy(&path, SyncPolicy::Always).unwrap();
        always.append_line("x").unwrap();
        assert_eq!(always.sync_count(), 1);

        let never = LineLog::open_with_policy(&path, SyncPolicy::Never).unwrap();
        never.append_line("y").unwrap();
        assert_eq!(never.sync_count(), 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn pressure_counters_track_appends_and_survive_reopen() {
        let path = temp_path("pressure");
        let _ = std::fs::remove_file(&path);
        let log = LineLog::open(&path).unwrap();
        assert_eq!(log.records_since_truncate(), 0);
        log.append_line("one").unwrap();
        log.append_line("two").unwrap();
        assert_eq!(log.records_since_truncate(), 2);
        assert_eq!(log.bytes_since_truncate(), 8, "`one\\n` + `two\\n`");
        drop(log);

        // A reopen (restore path) seeds the gauges from the file.
        let log = LineLog::open(&path).unwrap();
        assert_eq!(log.records_since_truncate(), 2);
        assert_eq!(log.bytes_since_truncate(), 8);
        log.truncate().unwrap();
        assert_eq!(log.records_since_truncate(), 0);
        assert_eq!(log.bytes_since_truncate(), 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn compact_keeps_only_records_above_the_floor() {
        let path = temp_path("compact");
        let _ = std::fs::remove_file(&path);
        let log = Arc::new(WriteLog::open(&path).unwrap());
        let stmt = |x: &str| Statement::Insert {
            table: "t".into(),
            row: vec![Value::Null, Value::from(x)],
        };
        log.append(&stmt("a"), 1).unwrap();
        log.append(&stmt("b"), 2).unwrap();
        log.append(&stmt("c"), 3).unwrap();
        let other = Statement::Insert {
            table: "u".into(),
            row: vec![Value::Int(9)],
        };
        log.append(&other, 5).unwrap();

        // Checkpoint captured t@2; table u is not in the vector (fully
        // captured), so its records drop too.
        let floor: std::collections::BTreeMap<String, u64> = [("t".to_owned(), 2)].into();
        let (kept, dropped) = log.compact(&floor).unwrap();
        assert_eq!((kept, dropped), (1, 3));
        assert_eq!(log.records_since_truncate(), 1);

        let mut db = fresh_db();
        let stats = WriteLog::replay(&path, &mut db).unwrap();
        assert_eq!(stats.applied, 1, "only t@3 survives and replays");
        assert_eq!(db.table("t").unwrap().rows()[0][1], Value::from("c"));

        // At quiescence the vector matches live generations and the
        // file degenerates to empty.
        let floor: std::collections::BTreeMap<String, u64> = [("t".to_owned(), 3)].into();
        let (kept, _) = log.compact(&floor).unwrap();
        assert_eq!(kept, 0);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 0);
        let _ = std::fs::remove_file(&path);
    }
}
