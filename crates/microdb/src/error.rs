//! Error types for the relational engine.

use std::error::Error;
use std::fmt;

use crate::value::{ColumnType, Value};

/// Result alias for database operations.
pub type DbResult<T> = Result<T, DbError>;

/// Errors raised by the relational engine.
#[derive(Clone, Debug, PartialEq)]
pub enum DbError {
    /// The named table does not exist.
    NoSuchTable(String),
    /// A table with this name already exists.
    TableExists(String),
    /// The named column does not exist (in this table / result).
    NoSuchColumn(String),
    /// A column reference matched several columns of a join result.
    AmbiguousColumn(String),
    /// Row length does not match the schema.
    Arity {
        /// Number of columns the schema defines.
        expected: usize,
        /// Number of values supplied.
        got: usize,
    },
    /// A value does not fit its column type.
    TypeMismatch {
        /// Offending column.
        column: String,
        /// Type the schema requires.
        expected: ColumnType,
        /// Value that was supplied.
        got: Value,
    },
    /// A predicate or aggregate was applied to an unsupported operand.
    InvalidOperation(String),
    /// Persistence failure: a snapshot or write-log could not be
    /// written, read, or parsed (I/O errors are carried as text so
    /// `DbError` stays `Clone + PartialEq`).
    Persist(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::NoSuchTable(t) => write!(f, "no such table: {t}"),
            DbError::TableExists(t) => write!(f, "table already exists: {t}"),
            DbError::NoSuchColumn(c) => write!(f, "no such column: {c}"),
            DbError::AmbiguousColumn(c) => write!(f, "ambiguous column reference: {c}"),
            DbError::Arity { expected, got } => {
                write!(f, "row has {got} values but schema has {expected} columns")
            }
            DbError::TypeMismatch {
                column,
                expected,
                got,
            } => {
                write!(f, "column {column} expects {expected}, got {got}")
            }
            DbError::InvalidOperation(m) => write!(f, "invalid operation: {m}"),
            DbError::Persist(m) => write!(f, "persistence failure: {m}"),
        }
    }
}

impl Error for DbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DbError::TypeMismatch {
            column: "age".into(),
            expected: ColumnType::Int,
            got: Value::Str("x".into()),
        };
        let msg = e.to_string();
        assert!(msg.contains("age") && msg.contains("INT"));
        assert!(DbError::NoSuchTable("t".into()).to_string().contains('t'));
    }
}
