//! Aggregation: COUNT / SUM / MIN / MAX / AVG, optionally grouped.
//!
//! The paper's FORM deliberately does **not** push aggregates to the
//! database (§3.1.1: aggregating across facet rows would mix values
//! from different facets). These helpers exist for the *vanilla*
//! baseline applications and for the faceted runtime to aggregate
//! per-facet after unmarshalling.

use std::collections::BTreeMap;

use crate::error::{DbError, DbResult};
use crate::predicate::resolve_column;
use crate::query::ResultSet;
use crate::value::Value;

/// An aggregate function.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Aggregate {
    /// Row count (column is ignored).
    Count,
    /// Numeric sum.
    Sum,
    /// Minimum value.
    Min,
    /// Maximum value.
    Max,
    /// Numeric mean.
    Avg,
}

impl Aggregate {
    /// Applies the aggregate over a column of values. NULLs are
    /// skipped (SQL semantics); empty inputs yield `Null` except
    /// `Count`, which yields 0.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::InvalidOperation`] when summing or averaging
    /// non-numeric values.
    pub fn apply(self, values: &[Value]) -> DbResult<Value> {
        let non_null: Vec<&Value> = values.iter().filter(|v| !v.is_null()).collect();
        match self {
            Aggregate::Count => Ok(Value::Int(non_null.len() as i64)),
            Aggregate::Min => Ok(non_null.iter().min().map_or(Value::Null, |v| (*v).clone())),
            Aggregate::Max => Ok(non_null.iter().max().map_or(Value::Null, |v| (*v).clone())),
            Aggregate::Sum | Aggregate::Avg => {
                if non_null.is_empty() {
                    return Ok(Value::Null);
                }
                let mut all_int = true;
                let mut sum = 0.0f64;
                for v in &non_null {
                    match v {
                        Value::Int(i) => sum += *i as f64,
                        Value::Float(f) => {
                            all_int = false;
                            sum += *f;
                        }
                        other => {
                            return Err(DbError::InvalidOperation(format!(
                                "cannot sum non-numeric value {other}"
                            )))
                        }
                    }
                }
                if self == Aggregate::Avg {
                    Ok(Value::Float(sum / non_null.len() as f64))
                } else if all_int {
                    Ok(Value::Int(sum as i64))
                } else {
                    Ok(Value::Float(sum))
                }
            }
        }
    }
}

impl ResultSet {
    /// Aggregates one column of this result.
    ///
    /// # Errors
    ///
    /// Column resolution errors, or [`DbError::InvalidOperation`] for
    /// non-numeric SUM/AVG.
    pub fn aggregate(&self, agg: Aggregate, column: &str) -> DbResult<Value> {
        let values = self.column(column)?;
        agg.apply(&values)
    }

    /// Groups by `group_col` and aggregates `agg_col` within each
    /// group, returning `(group value, aggregate)` pairs in group
    /// order.
    ///
    /// # Errors
    ///
    /// Column resolution errors, or [`DbError::InvalidOperation`] for
    /// non-numeric SUM/AVG.
    pub fn group_by(
        &self,
        group_col: &str,
        agg: Aggregate,
        agg_col: &str,
    ) -> DbResult<Vec<(Value, Value)>> {
        let gix = resolve_column(&self.schema, group_col)?;
        let aix = resolve_column(&self.schema, agg_col)?;
        let mut groups: BTreeMap<Value, Vec<Value>> = BTreeMap::new();
        for r in &self.rows {
            groups
                .entry(r[gix].clone())
                .or_default()
                .push(r[aix].clone());
        }
        groups
            .into_iter()
            .map(|(k, vs)| Ok((k, agg.apply(&vs)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Database;
    use crate::query::Query;
    use crate::schema::{ColumnDef, Schema};
    use crate::value::ColumnType;

    fn scores() -> Database {
        let mut db = Database::new();
        db.create_table(
            "scores",
            Schema::new(vec![
                ColumnDef::new("student", ColumnType::Str),
                ColumnDef::new("points", ColumnType::Int).nullable(),
            ]),
        )
        .unwrap();
        for (s, p) in [
            ("alice", Some(10)),
            ("alice", Some(20)),
            ("bob", Some(5)),
            ("bob", None),
        ] {
            db.insert("scores", vec![s.into(), p.map_or(Value::Null, Value::Int)])
                .unwrap();
        }
        db
    }

    #[test]
    fn scalar_aggregates() {
        let mut db = scores();
        let rs = Query::from("scores").execute_full(&mut db).unwrap();
        assert_eq!(
            rs.aggregate(Aggregate::Count, "points").unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            rs.aggregate(Aggregate::Sum, "points").unwrap(),
            Value::Int(35)
        );
        assert_eq!(
            rs.aggregate(Aggregate::Min, "points").unwrap(),
            Value::Int(5)
        );
        assert_eq!(
            rs.aggregate(Aggregate::Max, "points").unwrap(),
            Value::Int(20)
        );
        assert_eq!(
            rs.aggregate(Aggregate::Avg, "points").unwrap(),
            Value::Float(35.0 / 3.0)
        );
    }

    #[test]
    fn group_by_partitions() {
        let mut db = scores();
        let rs = Query::from("scores").execute_full(&mut db).unwrap();
        let groups = rs.group_by("student", Aggregate::Sum, "points").unwrap();
        assert_eq!(
            groups,
            vec![
                (Value::from("alice"), Value::Int(30)),
                (Value::from("bob"), Value::Int(5)),
            ]
        );
    }

    #[test]
    fn empty_input_behaviour() {
        assert_eq!(Aggregate::Count.apply(&[]).unwrap(), Value::Int(0));
        assert_eq!(Aggregate::Sum.apply(&[]).unwrap(), Value::Null);
        assert_eq!(Aggregate::Min.apply(&[Value::Null]).unwrap(), Value::Null);
    }

    #[test]
    fn sum_rejects_strings() {
        assert!(Aggregate::Sum.apply(&[Value::from("x")]).is_err());
    }

    #[test]
    fn mixed_numeric_sum_is_float() {
        let v = Aggregate::Sum
            .apply(&[Value::Int(1), Value::Float(0.5)])
            .unwrap();
        assert_eq!(v, Value::Float(1.5));
    }
}
