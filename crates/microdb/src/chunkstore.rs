//! Content-addressed chunk store for incremental checkpoints.
//!
//! A checkpoint is split into *chunks* — blobs of canonical text —
//! each stored under a hash of its bytes in a `chunks/` directory next
//! to the root manifest. Because the file name *is* the content hash,
//! an unchanged chunk from the previous checkpoint is "written" by
//! simply noticing the file already exists: incremental checkpoint
//! cost is proportional to what changed, not to database size.
//!
//! Row data is chunked in fixed ranges of [`CHUNK_ROWS`] physical rows
//! per table. [`DirtyRows`] folds a table's [`RowDelta`] journal into
//! the set of dirty chunk indices so a single-row write re-encodes a
//! single chunk.
//!
//! Chunk reads verify the content hash and feed the
//! [`faults::RestoreRead`](crate::faults::FaultPoint::RestoreRead)
//! injection point, so corruption and I/O failure surface as clean
//! [`DbError::Persist`] errors through the same paths the whole-file
//! snapshot used.

use std::collections::BTreeSet;
use std::collections::HashSet;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::error::{DbError, DbResult};
use crate::faults::{self, FaultKind, FaultPoint};
use crate::snapshot::{decode_value, encode_value};
use crate::table::{Row, RowDelta};

/// Physical rows per row-range chunk. Small enough that a single-row
/// write dirties a small constant amount of bytes, large enough that
/// chunk-count overhead (one file + one manifest line each) stays
/// negligible at bench scale.
pub const CHUNK_ROWS: usize = 64;

/// Disambiguates concurrent tmp files from the same process: two
/// threads inserting the same content into the same store must not
/// collide on a pid-only tmp name.
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Content hash of a chunk: two independent FNV-1a 64-bit passes
/// (different offset bases) rendered as 32 lowercase hex characters.
/// Not cryptographic — this guards against corruption and provides
/// content addressing, not against an adversary crafting collisions.
#[must_use]
pub fn content_hash(bytes: &[u8]) -> String {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut a: u64 = 0xcbf2_9ce4_8422_2325;
    let mut b: u64 = 0x9e37_79b9_7f4a_7c15;
    for &byte in bytes {
        a = (a ^ u64::from(byte)).wrapping_mul(PRIME);
        b = (b ^ u64::from(byte)).wrapping_mul(PRIME);
    }
    // Mix the length in so prefix-preserving truncations shift both
    // words even when the dropped suffix hashed to a fixpoint.
    a ^= bytes.len() as u64;
    b = (b ^ bytes.len() as u64).wrapping_mul(PRIME);
    format!("{a:016x}{b:016x}")
}

/// Whether `s` is a well-formed chunk hash (32 lowercase hex chars).
/// Manifest-supplied hashes must pass this before being turned into
/// file paths.
#[must_use]
pub fn is_valid_hash(s: &str) -> bool {
    s.len() == 32
        && s.bytes()
            .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
}

/// One chunk of a table's row range as recorded in a manifest: the
/// content hash naming the chunk file, and how many rows it holds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChunkRef {
    /// Content hash; also the file name under `chunks/`.
    pub hash: String,
    /// Physical rows encoded in the chunk.
    pub rows: usize,
}

/// Counters for one chunked write pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChunkWriteStats {
    /// Chunk files physically written (content not already present).
    pub written: usize,
    /// Chunks satisfied by an existing file — either carried over from
    /// the previous manifest without re-encoding, or re-encoded to
    /// bytes already in the store.
    pub reused: usize,
}

impl ChunkWriteStats {
    /// Accumulates another pass's counters into this one.
    pub fn absorb(&mut self, other: ChunkWriteStats) {
        self.written += other.written;
        self.reused += other.reused;
    }
}

/// A directory of content-addressed chunk files.
#[derive(Clone, Debug)]
pub struct ChunkStore {
    dir: PathBuf,
}

impl ChunkStore {
    /// Opens (creating if necessary) the `chunks/` store under a
    /// checkpoint directory.
    ///
    /// # Errors
    ///
    /// [`DbError::Persist`] if the directory cannot be created.
    pub fn open(checkpoint_dir: &Path) -> DbResult<ChunkStore> {
        let dir = checkpoint_dir.join("chunks");
        fs::create_dir_all(&dir)
            .map_err(|e| DbError::Persist(format!("create {}: {e}", dir.display())))?;
        Ok(ChunkStore { dir })
    }

    /// The file path a hash maps to.
    #[must_use]
    pub fn path(&self, hash: &str) -> PathBuf {
        self.dir.join(hash)
    }

    /// Whether the store already holds content with this hash.
    #[must_use]
    pub fn contains(&self, hash: &str) -> bool {
        self.path(hash).is_file()
    }

    /// Inserts a chunk, returning its hash and whether a file was
    /// physically written. Content already present is skipped — that
    /// skip *is* the incremental win. New content goes through the
    /// tmp + `sync_all` + rename discipline so a crash never leaves a
    /// half-written file under a valid hash name.
    ///
    /// # Errors
    ///
    /// [`DbError::Persist`] on I/O failure.
    pub fn insert(&self, bytes: &[u8]) -> DbResult<(String, bool)> {
        let hash = content_hash(bytes);
        let path = self.path(&hash);
        if path.is_file() {
            return Ok((hash, false));
        }
        let tmp = self.dir.join(format!(
            "tmp.{}.{}",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let write = || -> std::io::Result<()> {
            let mut f = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
            fs::rename(&tmp, &path)
        };
        write().map_err(|e| {
            let _ = fs::remove_file(&tmp);
            DbError::Persist(format!("write chunk {hash}: {e}"))
        })?;
        Ok((hash, true))
    }

    /// Reads and verifies a chunk. The read passes through the
    /// [`RestoreRead`](FaultPoint::RestoreRead) fault point:
    /// [`FaultKind::Error`] fails the read outright, while
    /// [`FaultKind::ShortWrite`] physically truncates the file first so
    /// the corruption flows through the real verify path.
    ///
    /// # Errors
    ///
    /// [`DbError::Persist`] on a malformed hash, I/O failure, or a
    /// content-hash mismatch (bit rot, truncation, wrong file).
    pub fn read(&self, hash: &str) -> DbResult<Vec<u8>> {
        if !is_valid_hash(hash) {
            return Err(DbError::Persist(format!("malformed chunk hash {hash:?}")));
        }
        let path = self.path(hash);
        match faults::check(FaultPoint::RestoreRead, &path) {
            Some(FaultKind::Error) => {
                return Err(DbError::Persist(format!(
                    "read chunk {hash}: {}",
                    faults::injected_err("chunk read")
                )));
            }
            Some(FaultKind::ShortWrite) => {
                if let Ok(f) = File::options().write(true).open(&path) {
                    let len = f.metadata().map(|m| m.len()).unwrap_or(0);
                    let _ = f.set_len(len / 2);
                }
            }
            None => {}
        }
        let bytes =
            fs::read(&path).map_err(|e| DbError::Persist(format!("read chunk {hash}: {e}")))?;
        let actual = content_hash(&bytes);
        if actual != hash {
            return Err(DbError::Persist(format!(
                "chunk {hash} fails verification (content hashes to {actual})"
            )));
        }
        Ok(bytes)
    }

    /// Deletes every chunk file not named in `keep`, plus any stale
    /// tmp debris. Called after a new manifest has been renamed into
    /// place, so a crash mid-sweep only leaves unreferenced garbage —
    /// never dangling references.
    ///
    /// # Errors
    ///
    /// [`DbError::Persist`] if the directory cannot be listed; unlink
    /// failures on individual files are ignored (they will be retried
    /// by the next sweep).
    pub fn sweep(&self, keep: &HashSet<String>) -> DbResult<usize> {
        let entries = fs::read_dir(&self.dir)
            .map_err(|e| DbError::Persist(format!("list {}: {e}", self.dir.display())))?;
        let mut removed = 0;
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if keep.contains(name) {
                continue;
            }
            if fs::remove_file(entry.path()).is_ok() {
                removed += 1;
            }
        }
        Ok(removed)
    }
}

/// Encodes a run of rows into the canonical chunk text: one
/// `r <v>\t<v>...` line per row, using the snapshot value codec.
#[must_use]
pub fn encode_row_chunk(rows: &[Row]) -> Vec<u8> {
    let mut out = Vec::new();
    for row in rows {
        let encoded: Vec<String> = row.iter().map(encode_value).collect();
        out.extend_from_slice(b"r ");
        out.extend_from_slice(encoded.join("\t").as_bytes());
        out.push(b'\n');
    }
    out
}

/// Decodes a row chunk produced by [`encode_row_chunk`].
///
/// # Errors
///
/// [`DbError::Persist`] on framing or value-codec violations.
pub fn decode_row_chunk(bytes: &[u8]) -> DbResult<Vec<Row>> {
    let text = std::str::from_utf8(bytes)
        .map_err(|_| DbError::Persist("row chunk is not UTF-8".into()))?;
    let mut rows = Vec::new();
    for line in text.lines() {
        let payload = line
            .strip_prefix("r ")
            .ok_or_else(|| DbError::Persist(format!("bad row chunk line {line:?}")))?;
        let row: DbResult<Row> = payload.split('\t').map(decode_value).collect();
        rows.push(row?);
    }
    Ok(rows)
}

/// Number of row-range chunks covering `rows` physical rows.
#[must_use]
pub fn chunk_count(rows: usize) -> usize {
    rows.div_ceil(CHUNK_ROWS)
}

/// Folds a table's [`RowDelta`] journal into the set of dirty chunk
/// indices, starting from the row count recorded in the previous
/// manifest.
///
/// Appends and rewrites dirty the specific chunks they touch; a
/// removal shifts every later row down one slot, so everything from
/// the smallest removal index onward is dirty wholesale.
#[derive(Clone, Debug)]
pub struct DirtyRows {
    touched: BTreeSet<usize>,
    /// Everything at or after this physical index is dirty (set by
    /// removals, which shift the tail).
    dirty_from: Option<usize>,
    /// Running row count while folding deltas.
    len: usize,
}

impl DirtyRows {
    /// Starts folding from the previous checkpoint's row count.
    #[must_use]
    pub fn new(prev_rows: usize) -> DirtyRows {
        DirtyRows {
            touched: BTreeSet::new(),
            dirty_from: None,
            len: prev_rows,
        }
    }

    /// Folds one journal entry.
    pub fn apply(&mut self, delta: &RowDelta) {
        match delta {
            RowDelta::Append(_) => {
                self.touched.insert(self.len);
                self.len += 1;
            }
            RowDelta::Rewrite(edits) => {
                for (ix, _, _) in edits {
                    self.touched.insert(*ix);
                }
            }
            RowDelta::Remove(removals) => {
                if let Some((first, _)) = removals.first() {
                    let from = self.dirty_from.map_or(*first, |f| f.min(*first));
                    self.dirty_from = Some(from);
                }
                self.len = self.len.saturating_sub(removals.len());
            }
        }
    }

    /// Whether chunk `ix` (over the *current* row grid) must be
    /// re-encoded. `prev_chunks` is the previous manifest's chunk
    /// count: chunks past it did not exist before and are always
    /// dirty.
    #[must_use]
    pub fn chunk_is_dirty(&self, ix: usize, prev_chunks: usize) -> bool {
        if ix >= prev_chunks {
            return true;
        }
        let start = ix * CHUNK_ROWS;
        let end = start + CHUNK_ROWS;
        if self.dirty_from.is_some_and(|f| end > f) {
            return true;
        }
        self.touched.range(start..end).next().is_some()
    }
}

/// Chunks a full row slice into the store, reusing any chunk whose
/// content is already present. Used for the first checkpoint of a
/// table and whenever the delta journal cannot prove cleanliness.
///
/// # Errors
///
/// [`DbError::Persist`] on I/O failure.
pub fn write_row_chunks(
    store: &ChunkStore,
    rows: &[Row],
) -> DbResult<(Vec<ChunkRef>, ChunkWriteStats)> {
    let mut refs = Vec::with_capacity(chunk_count(rows.len()));
    let mut stats = ChunkWriteStats::default();
    for chunk in rows.chunks(CHUNK_ROWS) {
        let bytes = encode_row_chunk(chunk);
        let (hash, written) = store.insert(&bytes)?;
        if written {
            stats.written += 1;
        } else {
            stats.reused += 1;
        }
        refs.push(ChunkRef {
            hash,
            rows: chunk.len(),
        });
    }
    Ok((refs, stats))
}

/// Re-chunks only the dirty row ranges, carrying clean [`ChunkRef`]s
/// over from the previous manifest without touching their bytes. The
/// caller must have verified the delta journal actually covers the
/// window since `prev` was captured.
///
/// # Errors
///
/// [`DbError::Persist`] on I/O failure.
pub fn write_dirty_row_chunks(
    store: &ChunkStore,
    rows: &[Row],
    prev: &[ChunkRef],
    dirty: &DirtyRows,
) -> DbResult<(Vec<ChunkRef>, ChunkWriteStats)> {
    let n = chunk_count(rows.len());
    let mut refs = Vec::with_capacity(n);
    let mut stats = ChunkWriteStats::default();
    for ix in 0..n {
        let start = ix * CHUNK_ROWS;
        let end = (start + CHUNK_ROWS).min(rows.len());
        if dirty.chunk_is_dirty(ix, prev.len()) {
            let bytes = encode_row_chunk(&rows[start..end]);
            let (hash, written) = store.insert(&bytes)?;
            if written {
                stats.written += 1;
            } else {
                stats.reused += 1;
            }
            refs.push(ChunkRef {
                hash,
                rows: end - start,
            });
        } else {
            debug_assert_eq!(prev[ix].rows, end - start, "clean chunk changed size");
            stats.reused += 1;
            refs.push(prev[ix].clone());
        }
    }
    Ok((refs, stats))
}

/// Loads and concatenates a table's row chunks, verifying each chunk's
/// content hash and declared row count.
///
/// # Errors
///
/// [`DbError::Persist`] on read/verify failure or a row-count
/// mismatch between a chunk and its manifest entry.
pub fn load_rows(store: &ChunkStore, refs: &[ChunkRef]) -> DbResult<Vec<Row>> {
    let mut rows = Vec::with_capacity(refs.iter().map(|r| r.rows).sum());
    for r in refs {
        let bytes = store.read(&r.hash)?;
        let chunk = decode_row_chunk(&bytes)?;
        if chunk.len() != r.rows {
            return Err(DbError::Persist(format!(
                "chunk {} holds {} rows, manifest says {}",
                r.hash,
                chunk.len(),
                r.rows
            )));
        }
        rows.extend(chunk);
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn row(i: i64) -> Row {
        vec![Value::Int(i), Value::Str(format!("name-{i}"))]
    }

    fn rows(n: usize) -> Vec<Row> {
        (0..n as i64).map(row).collect()
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "microdb_chunk_{tag}_{}_{}",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn hash_is_stable_and_content_sensitive() {
        let a = content_hash(b"hello");
        assert_eq!(a, content_hash(b"hello"));
        assert_ne!(a, content_hash(b"hellp"));
        assert_ne!(a, content_hash(b"hell"));
        assert!(is_valid_hash(&a));
        assert!(!is_valid_hash("xyz"));
        assert!(!is_valid_hash(&a[..31]));
        assert!(!is_valid_hash(&a.to_uppercase()));
        assert!(!is_valid_hash("../../../../etc/passwd_aaaaaaaaaa"));
    }

    #[test]
    fn insert_read_round_trip_and_dedup() {
        let dir = temp_dir("roundtrip");
        let store = ChunkStore::open(&dir).unwrap();
        let (hash, written) = store.insert(b"payload").unwrap();
        assert!(written);
        let (hash2, written2) = store.insert(b"payload").unwrap();
        assert_eq!(hash, hash2);
        assert!(!written2, "second insert of same content must be a no-op");
        assert_eq!(store.read(&hash).unwrap(), b"payload");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn read_detects_bit_flip() {
        let dir = temp_dir("bitflip");
        let store = ChunkStore::open(&dir).unwrap();
        let (hash, _) = store.insert(b"precious bytes").unwrap();
        let mut bytes = fs::read(store.path(&hash)).unwrap();
        bytes[3] ^= 0x40;
        fs::write(store.path(&hash), &bytes).unwrap();
        let err = store.read(&hash).unwrap_err();
        assert!(matches!(err, DbError::Persist(_)), "got {err:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn sweep_removes_only_unreferenced() {
        let dir = temp_dir("sweep");
        let store = ChunkStore::open(&dir).unwrap();
        let (keep_hash, _) = store.insert(b"keep me").unwrap();
        let (drop_hash, _) = store.insert(b"drop me").unwrap();
        fs::write(store.path("tmp.999.0"), b"debris").unwrap();
        let keep: HashSet<String> = [keep_hash.clone()].into_iter().collect();
        let removed = store.sweep(&keep).unwrap();
        assert_eq!(removed, 2);
        assert!(store.contains(&keep_hash));
        assert!(!store.contains(&drop_hash));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn row_chunk_codec_round_trips() {
        let data = rows(5);
        let bytes = encode_row_chunk(&data);
        assert_eq!(decode_row_chunk(&bytes).unwrap(), data);
        assert!(decode_row_chunk(b"bogus line\n").is_err());
    }

    #[test]
    fn single_append_dirties_one_chunk() {
        let mut dirty = DirtyRows::new(CHUNK_ROWS * 3); // 3 full chunks
        dirty.apply(&RowDelta::Append(row(999)));
        let prev_chunks = 3;
        assert!(!dirty.chunk_is_dirty(0, prev_chunks));
        assert!(!dirty.chunk_is_dirty(1, prev_chunks));
        assert!(!dirty.chunk_is_dirty(2, prev_chunks));
        assert!(dirty.chunk_is_dirty(3, prev_chunks), "new tail chunk");
    }

    #[test]
    fn rewrite_dirties_containing_chunk_only() {
        let mut dirty = DirtyRows::new(CHUNK_ROWS * 4);
        dirty.apply(&RowDelta::Rewrite(vec![(CHUNK_ROWS + 1, row(1), row(2))]));
        assert!(!dirty.chunk_is_dirty(0, 4));
        assert!(dirty.chunk_is_dirty(1, 4));
        assert!(!dirty.chunk_is_dirty(2, 4));
        assert!(!dirty.chunk_is_dirty(3, 4));
    }

    #[test]
    fn remove_dirties_tail_wholesale() {
        let mut dirty = DirtyRows::new(CHUNK_ROWS * 4);
        dirty.apply(&RowDelta::Remove(vec![(CHUNK_ROWS * 2 + 5, row(0))]));
        assert!(!dirty.chunk_is_dirty(0, 4));
        assert!(!dirty.chunk_is_dirty(1, 4));
        assert!(dirty.chunk_is_dirty(2, 4));
        assert!(dirty.chunk_is_dirty(3, 4));
    }

    #[test]
    fn incremental_write_reuses_clean_chunks() {
        let dir = temp_dir("incremental");
        let store = ChunkStore::open(&dir).unwrap();
        let mut data = rows(CHUNK_ROWS * 3 + 10);
        let (prev, first_stats) = write_row_chunks(&store, &data).unwrap();
        assert_eq!(first_stats.written, 4);

        // Rewrite one row in chunk 1, then re-chunk incrementally.
        let mut dirty = DirtyRows::new(data.len());
        let old = data[CHUNK_ROWS + 2].clone();
        data[CHUNK_ROWS + 2] = row(-7);
        dirty.apply(&RowDelta::Rewrite(vec![(CHUNK_ROWS + 2, old, row(-7))]));
        let (next, stats) = write_dirty_row_chunks(&store, &data, &prev, &dirty).unwrap();
        assert_eq!(stats.written, 1, "only the dirty chunk is written");
        assert_eq!(stats.reused, 3);
        assert_eq!(next[0], prev[0]);
        assert_ne!(next[1], prev[1]);
        assert_eq!(next[2], prev[2]);
        assert_eq!(next[3], prev[3]);
        assert_eq!(load_rows(&store, &next).unwrap(), data);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_rows_rejects_row_count_mismatch() {
        let dir = temp_dir("count");
        let store = ChunkStore::open(&dir).unwrap();
        let (refs, _) = write_row_chunks(&store, &rows(3)).unwrap();
        let mut lying = refs.clone();
        lying[0].rows = 2;
        assert!(load_rows(&store, &lying).is_err());
        let _ = fs::remove_dir_all(&dir);
    }
}
