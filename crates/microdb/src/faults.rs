//! Deterministic storage fault injection.
//!
//! The persistence stack (WAL appends, checkpoint writes, restore
//! reads) has failure paths that ordinary tests never exercise: disk
//! full, a crash between the tmp write and the rename, a corrupted
//! snapshot. This module gives tests and the chaos harness a seam to
//! trigger those failures deterministically, without a filesystem
//! shim: each I/O site calls [`check`] with its [`FaultPoint`], and an
//! armed plan makes exactly one call fail in a prescribed way.
//!
//! The registry is process-global (WAL appends happen on executor
//! worker threads, so a thread-local seam would miss them) and gated
//! by a single relaxed atomic load: when nothing is armed — always, in
//! production — a fault check is one branch on an already-cached
//! cacheline. Plans are **one-shot**: a plan fires once, records the
//! hit, and never fires again until re-armed, so a recovery path
//! retrying the same operation observes success like a real transient
//! fault.
//!
//! Tests in different processes never interfere; tests in the same
//! process that arm faults must serialize themselves (the chaos
//! harness runs scenarios sequentially for exactly this reason).

use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// A named I/O site that can fail.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum FaultPoint {
    /// A [`LineLog::append_line`](crate::wal::LineLog::append_line)
    /// call — the WAL or the metadata journal.
    WalAppend,
    /// The checkpoint writer, *before* the tmp file is renamed into
    /// place: the previous snapshot must survive untouched.
    CheckpointPreRename,
    /// The checkpoint writer, *after* the rename but before the log
    /// truncation: replay idempotence must absorb the overlap.
    CheckpointPostRename,
    /// The restore path's snapshot read. [`FaultKind::Error`] fails
    /// the open outright; [`FaultKind::ShortWrite`] physically
    /// truncates the file before it is opened, so the corruption
    /// flows through the real parse paths.
    RestoreRead,
}

/// How an armed fault manifests.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The operation fails outright with an ENOSPC-style error.
    Error,
    /// A prefix of the payload reaches the file (no trailing
    /// newline — a torn tail), then the operation fails.
    ShortWrite,
}

struct Plan {
    point: FaultPoint,
    kind: FaultKind,
    /// Successful passes to allow before firing.
    skip: u64,
    /// Only fire at sites whose path contains this substring — the
    /// isolation handle that lets parallel tests (each on a unique
    /// temp directory) arm faults without tripping each other.
    path_filter: Option<String>,
    fired: bool,
}

static ARMED: AtomicBool = AtomicBool::new(false);
static PLANS: Mutex<Vec<Plan>> = Mutex::new(Vec::new());

/// Arms `point` to fail with `kind` on its `skip`-th subsequent call
/// (0 = the very next one), at any path. Re-arming a point replaces
/// its plan. One-shot: after firing, the point succeeds again until
/// re-armed.
pub fn arm(point: FaultPoint, skip: u64, kind: FaultKind) {
    arm_plan(point, skip, kind, None);
}

/// Like [`arm`], but the fault only fires at sites whose file path
/// contains `path_substr`. Tests that share a process (the default
/// cargo test runner) MUST use this with a unique temp-dir fragment,
/// or an armed fault can fire inside an unrelated test's I/O.
pub fn arm_at(point: FaultPoint, skip: u64, kind: FaultKind, path_substr: &str) {
    arm_plan(point, skip, kind, Some(path_substr.to_owned()));
}

fn arm_plan(point: FaultPoint, skip: u64, kind: FaultKind, path_filter: Option<String>) {
    let mut plans = PLANS.lock().expect("fault registry poisoned");
    plans.retain(|p| p.point != point);
    plans.push(Plan {
        point,
        kind,
        skip,
        path_filter,
        fired: false,
    });
    ARMED.store(true, Ordering::Release);
}

/// Clears every plan (fired or not). Call between scenarios.
pub fn disarm_all() {
    let mut plans = PLANS.lock().expect("fault registry poisoned");
    plans.clear();
    ARMED.store(false, Ordering::Release);
}

/// How many times `point` has fired since it was last armed.
#[must_use]
pub fn hits(point: FaultPoint) -> u64 {
    let plans = PLANS.lock().expect("fault registry poisoned");
    plans.iter().filter(|p| p.point == point && p.fired).count() as u64
}

/// Called at each fault site with the path being operated on:
/// `Some(kind)` exactly when an armed, unfired plan for `point`
/// (whose path filter, if any, matches) has exhausted its skip count.
/// The fast path (nothing armed) is a single atomic load.
#[must_use]
pub fn check(point: FaultPoint, path: &std::path::Path) -> Option<FaultKind> {
    if !ARMED.load(Ordering::Acquire) {
        return None;
    }
    let mut plans = PLANS.lock().expect("fault registry poisoned");
    let plan = plans.iter_mut().find(|p| {
        p.point == point
            && !p.fired
            && p.path_filter
                .as_deref()
                .is_none_or(|frag| path.to_string_lossy().contains(frag))
    })?;
    if plan.skip > 0 {
        plan.skip -= 1;
        return None;
    }
    plan.fired = true;
    Some(plan.kind)
}

/// The error an injected [`FaultKind::Error`] (or the failing half of
/// a [`FaultKind::ShortWrite`]) surfaces as. Tagged `(injected)` so a
/// test failure is never mistaken for a real disk problem.
#[must_use]
pub fn injected_err(what: &str) -> io::Error {
    io::Error::other(format!("{what}: no space left on device (injected)"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    // These tests mutate the process-global registry, so they use
    // point/path combinations no other test in this binary touches.

    #[test]
    fn plans_skip_then_fire_once() {
        let at = Path::new("/tmp/faults-unit-a/checkpoint.snap");
        arm_at(
            FaultPoint::CheckpointPreRename,
            2,
            FaultKind::Error,
            "faults-unit-a",
        );
        assert_eq!(check(FaultPoint::CheckpointPreRename, at), None);
        assert_eq!(check(FaultPoint::CheckpointPreRename, at), None);
        assert_eq!(
            check(FaultPoint::CheckpointPreRename, at),
            Some(FaultKind::Error)
        );
        // One-shot: the next pass succeeds.
        assert_eq!(check(FaultPoint::CheckpointPreRename, at), None);
        assert_eq!(hits(FaultPoint::CheckpointPreRename), 1);
    }

    #[test]
    fn path_filters_scope_plans() {
        let mine = Path::new("/tmp/faults-unit-b/wal.log");
        let other = Path::new("/tmp/elsewhere/wal.log");
        arm_at(
            FaultPoint::RestoreRead,
            0,
            FaultKind::Error,
            "faults-unit-b",
        );
        assert_eq!(check(FaultPoint::RestoreRead, other), None);
        assert_eq!(check(FaultPoint::RestoreRead, mine), Some(FaultKind::Error));
        assert_eq!(check(FaultPoint::RestoreRead, mine), None);
    }

    #[test]
    fn rearming_replaces_the_plan() {
        let at = Path::new("/tmp/faults-unit-c/wal.log");
        arm_at(
            FaultPoint::CheckpointPostRename,
            5,
            FaultKind::Error,
            "faults-unit-c",
        );
        arm_at(
            FaultPoint::CheckpointPostRename,
            0,
            FaultKind::ShortWrite,
            "faults-unit-c",
        );
        assert_eq!(
            check(FaultPoint::CheckpointPostRename, at),
            Some(FaultKind::ShortWrite)
        );
    }
}
