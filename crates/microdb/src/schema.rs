//! Table schemas: column definitions and row validation.

use std::collections::HashMap;
use std::fmt;

use crate::error::{DbError, DbResult};
use crate::value::{ColumnType, Value};

/// Definition of a single column.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ColumnDef {
    name: String,
    ty: ColumnType,
    nullable: bool,
    auto_increment: bool,
}

impl ColumnDef {
    /// A non-nullable column.
    #[must_use]
    pub fn new(name: &str, ty: ColumnType) -> ColumnDef {
        ColumnDef {
            name: name.to_owned(),
            ty,
            nullable: false,
            auto_increment: false,
        }
    }

    /// Marks the column nullable (builder style).
    #[must_use]
    pub fn nullable(mut self) -> ColumnDef {
        self.nullable = true;
        self
    }

    /// Marks an `Int` column auto-increment: inserting `Null` assigns
    /// the next unused id.
    ///
    /// # Panics
    ///
    /// Panics if the column type is not [`ColumnType::Int`].
    #[must_use]
    pub fn auto_increment(mut self) -> ColumnDef {
        assert_eq!(
            self.ty,
            ColumnType::Int,
            "auto-increment requires an INT column"
        );
        self.auto_increment = true;
        self
    }

    /// The column name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The column type.
    #[must_use]
    pub fn column_type(&self) -> ColumnType {
        self.ty
    }

    /// Whether NULL is accepted.
    #[must_use]
    pub fn is_nullable(&self) -> bool {
        self.nullable
    }

    /// Whether the column is auto-increment.
    #[must_use]
    pub fn is_auto_increment(&self) -> bool {
        self.auto_increment
    }

    /// Whether `value` may be stored in this column.
    #[must_use]
    pub fn accepts(&self, value: &Value) -> bool {
        match value.column_type() {
            None => self.nullable || self.auto_increment,
            Some(t) => t == self.ty || (self.ty == ColumnType::Float && t == ColumnType::Int),
        }
    }
}

/// An ordered list of columns with by-name lookup.
///
/// # Examples
///
/// ```
/// use microdb::{ColumnDef, ColumnType, Schema};
///
/// let schema = Schema::new(vec![
///     ColumnDef::new("id", ColumnType::Int).auto_increment(),
///     ColumnDef::new("name", ColumnType::Str),
/// ]);
/// assert_eq!(schema.column_index("name"), Some(1));
/// assert_eq!(schema.len(), 2);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Schema {
    columns: Vec<ColumnDef>,
    by_name: HashMap<String, usize>,
}

impl Schema {
    /// Builds a schema from column definitions.
    ///
    /// # Panics
    ///
    /// Panics if two columns share a name.
    #[must_use]
    pub fn new(columns: Vec<ColumnDef>) -> Schema {
        let mut by_name = HashMap::with_capacity(columns.len());
        for (i, c) in columns.iter().enumerate() {
            let prev = by_name.insert(c.name.clone(), i);
            assert!(prev.is_none(), "duplicate column name {:?}", c.name);
        }
        Schema { columns, by_name }
    }

    /// The columns in order.
    #[must_use]
    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    /// Number of columns.
    #[must_use]
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// Whether the schema has no columns.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Index of the named column.
    #[must_use]
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.by_name.get(name).copied()
    }

    /// Definition of the named column.
    #[must_use]
    pub fn column(&self, name: &str) -> Option<&ColumnDef> {
        self.column_index(name).map(|i| &self.columns[i])
    }

    /// Validates that `values` fits this schema.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Arity`] on length mismatch and
    /// [`DbError::TypeMismatch`] when a value does not fit its column.
    pub fn check_row(&self, values: &[Value]) -> DbResult<()> {
        if values.len() != self.columns.len() {
            return Err(DbError::Arity {
                expected: self.columns.len(),
                got: values.len(),
            });
        }
        for (c, v) in self.columns.iter().zip(values) {
            if !c.accepts(v) {
                return Err(DbError::TypeMismatch {
                    column: c.name.clone(),
                    expected: c.ty,
                    got: v.clone(),
                });
            }
        }
        Ok(())
    }

    /// Extends this schema with another, qualifying collisions — used
    /// to build join result schemas (`left.col`, `right.col`).
    #[must_use]
    pub fn join(&self, left_name: &str, other: &Schema, right_name: &str) -> Schema {
        let mut cols = Vec::with_capacity(self.len() + other.len());
        let qualify = |table: &str, c: &ColumnDef| {
            let mut c2 = c.clone();
            c2.name = format!("{table}.{}", c.name);
            c2
        };
        for c in &self.columns {
            cols.push(qualify(left_name, c));
        }
        for c in &other.columns {
            cols.push(qualify(right_name, c));
        }
        Schema::new(cols)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", c.name, c.ty)?;
            if c.nullable {
                write!(f, " NULL")?;
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            ColumnDef::new("id", ColumnType::Int).auto_increment(),
            ColumnDef::new("name", ColumnType::Str),
            ColumnDef::new("score", ColumnType::Float).nullable(),
        ])
    }

    #[test]
    fn lookup_by_name() {
        let s = schema();
        assert_eq!(s.column_index("id"), Some(0));
        assert_eq!(s.column_index("score"), Some(2));
        assert_eq!(s.column_index("missing"), None);
        assert_eq!(s.column("name").unwrap().column_type(), ColumnType::Str);
    }

    #[test]
    fn check_row_validates_arity_and_types() {
        let s = schema();
        assert!(s
            .check_row(&[Value::Int(1), Value::from("a"), Value::Float(0.5)])
            .is_ok());
        assert!(matches!(
            s.check_row(&[Value::Int(1)]),
            Err(DbError::Arity {
                expected: 3,
                got: 1
            })
        ));
        assert!(matches!(
            s.check_row(&[Value::Int(1), Value::Int(2), Value::Null]),
            Err(DbError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn nullable_and_auto_increment_accept_null() {
        let s = schema();
        assert!(s
            .check_row(&[Value::Null, Value::from("a"), Value::Null])
            .is_ok());
    }

    #[test]
    fn float_column_accepts_int() {
        let s = schema();
        assert!(s
            .check_row(&[Value::Int(1), Value::from("a"), Value::Int(3)])
            .is_ok());
    }

    #[test]
    fn join_qualifies_names() {
        let a = Schema::new(vec![ColumnDef::new("id", ColumnType::Int)]);
        let b = Schema::new(vec![ColumnDef::new("id", ColumnType::Int)]);
        let j = a.join("left", &b, "right");
        assert_eq!(j.column_index("left.id"), Some(0));
        assert_eq!(j.column_index("right.id"), Some(1));
    }

    #[test]
    #[should_panic(expected = "duplicate column name")]
    fn duplicate_columns_panic() {
        let _ = Schema::new(vec![
            ColumnDef::new("x", ColumnType::Int),
            ColumnDef::new("x", ColumnType::Str),
        ]);
    }
}
