//! WHERE-clause predicates.

use std::fmt;

use crate::error::{DbError, DbResult};
use crate::schema::Schema;
use crate::table::Row;
use crate::value::Value;

/// A scalar operand in a predicate: a column reference or a literal.
#[derive(Clone, Debug, PartialEq)]
pub enum Operand {
    /// A column, by (possibly qualified) name.
    Col(String),
    /// A literal value.
    Lit(Value),
}

impl Operand {
    /// Convenience constructor for a column reference.
    #[must_use]
    pub fn col(name: &str) -> Operand {
        Operand::Col(name.to_owned())
    }

    /// Convenience constructor for a literal.
    pub fn lit(v: impl Into<Value>) -> Operand {
        Operand::Lit(v.into())
    }

    fn eval<'a>(&'a self, schema: &Schema, row: &'a Row) -> DbResult<&'a Value> {
        match self {
            Operand::Lit(v) => Ok(v),
            Operand::Col(name) => {
                let ix = resolve_column(schema, name)?;
                Ok(&row[ix])
            }
        }
    }
}

/// Resolves a column reference against a (possibly join-qualified)
/// schema: exact match first, then unique suffix match on `.name`.
///
/// # Errors
///
/// [`DbError::NoSuchColumn`] if nothing matches,
/// [`DbError::AmbiguousColumn`] if several columns match.
pub fn resolve_column(schema: &Schema, name: &str) -> DbResult<usize> {
    if let Some(ix) = schema.column_index(name) {
        return Ok(ix);
    }
    let suffix = format!(".{name}");
    let mut found = None;
    for (i, c) in schema.columns().iter().enumerate() {
        if c.name().ends_with(&suffix) {
            if found.is_some() {
                return Err(DbError::AmbiguousColumn(name.to_owned()));
            }
            found = Some(i);
        }
    }
    found.ok_or_else(|| DbError::NoSuchColumn(name.to_owned()))
}

/// Comparison operators.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    fn test(self, a: &Value, b: &Value) -> bool {
        // SQL semantics: comparisons involving NULL are not satisfied
        // (three-valued logic collapsed to false at the row filter).
        if a.is_null() || b.is_null() {
            return false;
        }
        let ord = a.cmp(b);
        match self {
            CmpOp::Eq => ord.is_eq(),
            CmpOp::Ne => ord.is_ne(),
            CmpOp::Lt => ord.is_lt(),
            CmpOp::Le => ord.is_le(),
            CmpOp::Gt => ord.is_gt(),
            CmpOp::Ge => ord.is_ge(),
        }
    }
}

/// A WHERE-clause predicate tree.
///
/// # Examples
///
/// ```
/// use microdb::{Operand, Predicate};
///
/// // location = 'Schloss Dagstuhl' AND id >= 2
/// let p = Predicate::eq(Operand::col("location"), Operand::lit("Schloss Dagstuhl"))
///     .and(Predicate::ge(Operand::col("id"), Operand::lit(2i64)));
/// assert!(format!("{p}").contains("AND"));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub enum Predicate {
    /// Always true (`WHERE` absent).
    True,
    /// Binary comparison.
    Cmp(Operand, CmpOp, Operand),
    /// SQL `LIKE` with `%` wildcards.
    Like(Operand, String),
    /// `IS NULL`.
    IsNull(Operand),
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// `a = b`.
    #[must_use]
    pub fn eq(a: Operand, b: Operand) -> Predicate {
        Predicate::Cmp(a, CmpOp::Eq, b)
    }

    /// `a <> b`.
    #[must_use]
    pub fn ne(a: Operand, b: Operand) -> Predicate {
        Predicate::Cmp(a, CmpOp::Ne, b)
    }

    /// `a < b`.
    #[must_use]
    pub fn lt(a: Operand, b: Operand) -> Predicate {
        Predicate::Cmp(a, CmpOp::Lt, b)
    }

    /// `a <= b`.
    #[must_use]
    pub fn le(a: Operand, b: Operand) -> Predicate {
        Predicate::Cmp(a, CmpOp::Le, b)
    }

    /// `a > b`.
    #[must_use]
    pub fn gt(a: Operand, b: Operand) -> Predicate {
        Predicate::Cmp(a, CmpOp::Gt, b)
    }

    /// `a >= b`.
    #[must_use]
    pub fn ge(a: Operand, b: Operand) -> Predicate {
        Predicate::Cmp(a, CmpOp::Ge, b)
    }

    /// `self AND other`.
    #[must_use]
    pub fn and(self, other: Predicate) -> Predicate {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// `self OR other`.
    #[must_use]
    pub fn or(self, other: Predicate) -> Predicate {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    /// `NOT self`.
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Predicate {
        Predicate::Not(Box::new(self))
    }

    /// Evaluates the predicate on a row.
    ///
    /// # Errors
    ///
    /// Propagates column-resolution errors.
    pub fn eval(&self, schema: &Schema, row: &Row) -> DbResult<bool> {
        Ok(match self {
            Predicate::True => true,
            Predicate::Cmp(a, op, b) => op.test(a.eval(schema, row)?, b.eval(schema, row)?),
            Predicate::Like(a, pattern) => match a.eval(schema, row)? {
                Value::Str(s) => like_match(pattern, s),
                _ => false,
            },
            Predicate::IsNull(a) => a.eval(schema, row)?.is_null(),
            Predicate::And(a, b) => a.eval(schema, row)? && b.eval(schema, row)?,
            Predicate::Or(a, b) => a.eval(schema, row)? || b.eval(schema, row)?,
            Predicate::Not(a) => !a.eval(schema, row)?,
        })
    }

    /// If this predicate (possibly under conjunctions) pins `column = literal`
    /// for some column, returns `(column, literal)` — the planner uses
    /// it for index probes.
    #[must_use]
    pub fn index_candidate(&self) -> Option<(&str, &Value)> {
        match self {
            Predicate::Cmp(Operand::Col(c), CmpOp::Eq, Operand::Lit(v)) => Some((c, v)),
            Predicate::Cmp(Operand::Lit(v), CmpOp::Eq, Operand::Col(c)) => Some((c, v)),
            Predicate::And(a, b) => a.index_candidate().or_else(|| b.index_candidate()),
            _ => None,
        }
    }
}

/// SQL LIKE with `%` (any run) wildcards.
fn like_match(pattern: &str, s: &str) -> bool {
    fn rec(p: &[u8], s: &[u8]) -> bool {
        match p.first() {
            None => s.is_empty(),
            Some(b'%') => (0..=s.len()).any(|i| rec(&p[1..], &s[i..])),
            Some(&c) => s.first() == Some(&c) && rec(&p[1..], &s[1..]),
        }
    }
    rec(pattern.as_bytes(), s.as_bytes())
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::True => write!(f, "TRUE"),
            Predicate::Cmp(a, op, b) => {
                let sym = match op {
                    CmpOp::Eq => "=",
                    CmpOp::Ne => "<>",
                    CmpOp::Lt => "<",
                    CmpOp::Le => "<=",
                    CmpOp::Gt => ">",
                    CmpOp::Ge => ">=",
                };
                write!(f, "{a:?} {sym} {b:?}")
            }
            Predicate::Like(a, p) => write!(f, "{a:?} LIKE '{p}'"),
            Predicate::IsNull(a) => write!(f, "{a:?} IS NULL"),
            Predicate::And(a, b) => write!(f, "({a} AND {b})"),
            Predicate::Or(a, b) => write!(f, "({a} OR {b})"),
            Predicate::Not(a) => write!(f, "NOT ({a})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use crate::value::ColumnType;

    fn schema() -> Schema {
        Schema::new(vec![
            ColumnDef::new("id", ColumnType::Int),
            ColumnDef::new("name", ColumnType::Str),
            ColumnDef::new("age", ColumnType::Int).nullable(),
        ])
    }

    fn row() -> Row {
        vec![Value::Int(1), "alice".into(), Value::Null]
    }

    #[test]
    fn comparisons() {
        let s = schema();
        let r = row();
        assert!(Predicate::eq(Operand::col("name"), Operand::lit("alice"))
            .eval(&s, &r)
            .unwrap());
        assert!(Predicate::lt(Operand::col("id"), Operand::lit(5i64))
            .eval(&s, &r)
            .unwrap());
        assert!(!Predicate::gt(Operand::col("id"), Operand::lit(5i64))
            .eval(&s, &r)
            .unwrap());
    }

    #[test]
    fn null_comparisons_are_false() {
        let s = schema();
        let r = row();
        assert!(
            !Predicate::eq(Operand::col("age"), Operand::lit(Value::Null))
                .eval(&s, &r)
                .unwrap()
        );
        assert!(!Predicate::ne(Operand::col("age"), Operand::lit(1i64))
            .eval(&s, &r)
            .unwrap());
        assert!(Predicate::IsNull(Operand::col("age")).eval(&s, &r).unwrap());
    }

    #[test]
    fn boolean_connectives() {
        let s = schema();
        let r = row();
        let t = Predicate::True;
        let f = Predicate::True.not();
        assert!(t.clone().and(t.clone()).eval(&s, &r).unwrap());
        assert!(!t.clone().and(f.clone()).eval(&s, &r).unwrap());
        assert!(t.clone().or(f.clone()).eval(&s, &r).unwrap());
        assert!(!f.clone().or(f).eval(&s, &r).unwrap());
    }

    #[test]
    fn like_wildcards() {
        assert!(like_match("%", ""));
        assert!(like_match("a%", "alice"));
        assert!(like_match("%ice", "alice"));
        assert!(like_match("%li%", "alice"));
        assert!(!like_match("b%", "alice"));
        assert!(like_match("alice", "alice"));
        assert!(!like_match("", "x"));
    }

    #[test]
    fn unknown_column_errors() {
        let s = schema();
        let r = row();
        assert!(matches!(
            Predicate::eq(Operand::col("zzz"), Operand::lit(1i64)).eval(&s, &r),
            Err(DbError::NoSuchColumn(_))
        ));
    }

    #[test]
    fn suffix_resolution_and_ambiguity() {
        let joined = schema().join("a", &schema(), "b");
        assert!(resolve_column(&joined, "a.id").is_ok());
        assert!(matches!(
            resolve_column(&joined, "id"),
            Err(DbError::AmbiguousColumn(_))
        ));
    }

    #[test]
    fn index_candidate_extraction() {
        let p = Predicate::eq(Operand::col("name"), Operand::lit("x"))
            .and(Predicate::gt(Operand::col("id"), Operand::lit(0i64)));
        let (c, v) = p.index_candidate().unwrap();
        assert_eq!(c, "name");
        assert_eq!(v, &Value::from("x"));
        assert!(Predicate::True.index_candidate().is_none());
        let swapped = Predicate::eq(Operand::lit(3i64), Operand::col("id"));
        assert_eq!(swapped.index_candidate().unwrap().0, "id");
    }
}
